//! EVscript AST → bytecode compiler.
//!
//! Compiles a parsed program into a [`Chunk`]: numbers and strings are
//! interned into per-chunk constant tables, every variable reference is
//! resolved at compile time to a *scope slot* (locals by frame index,
//! globals by table index — the VM never does a name lookup at
//! runtime), and each function body becomes a [`Proto`] of fixed-width
//! [`Op`]s.
//!
//! # Step identity with the tree-walker
//!
//! The walker charges one step per statement executed, one per
//! expression node evaluated, and one per loop iteration, and errors
//! with "step limit exceeded" at the first tick past the budget. The
//! compiler reproduces this exactly by emitting an explicit
//! [`Op::Step`] at every walker tick point, coalescing *adjacent*
//! same-line charges (legal because nothing observable happens between
//! two adjacent ticks, and the error line is the same for both).
//! Coalescing never crosses a jump target: a label seals the pending
//! step so a back edge cannot skip (or double) a charge.
//!
//! # Scope model
//!
//! EVscript scoping is dynamic two-level: the innermost call frame,
//! then globals; *whether* a name is defined can depend on control flow
//! (`if c { let x = 1; } print(x);`). The compiler therefore collects
//! every name a scope *could* define (recursing through control-flow
//! blocks but not into nested `fn` literals) and assigns it a slot
//! holding `Option<Value>`; loads and stores check definedness at
//! runtime with the walker's exact local-then-global fallthrough.

use crate::ast::{BinOp, Expr, ExprKind, Stmt, StmtKind, UnOp};
use std::collections::HashMap;

/// "No slot" sentinel for [`Op`] local/global fields.
pub(crate) const NO_SLOT: u16 = u16::MAX;

/// Maximum call depth, matching the walker's `frames.len() >= 64`.
pub(crate) const MAX_CALL_DEPTH: usize = 64;

/// The builtin functions, mirrored from `interp::is_builtin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Builtin {
    Print,
    Len,
    Push,
    Str,
    Abs,
    Floor,
    Sqrt,
    Min,
    Max,
    Range,
    NodeCount,
    Nodes,
    Name,
    File,
    Line,
    Module,
    Parent,
    Children,
    Value,
    SetValue,
    AddMetric,
    Total,
    Metrics,
    Visit,
    Derive,
    MapNodes,
}

impl Builtin {
    fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "print" => Builtin::Print,
            "len" => Builtin::Len,
            "push" => Builtin::Push,
            "str" => Builtin::Str,
            "abs" => Builtin::Abs,
            "floor" => Builtin::Floor,
            "sqrt" => Builtin::Sqrt,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "range" => Builtin::Range,
            "node_count" => Builtin::NodeCount,
            "nodes" => Builtin::Nodes,
            "name" => Builtin::Name,
            "file" => Builtin::File,
            "line" => Builtin::Line,
            "module" => Builtin::Module,
            "parent" => Builtin::Parent,
            "children" => Builtin::Children,
            "value" => Builtin::Value,
            "set_value" => Builtin::SetValue,
            "add_metric" => Builtin::AddMetric,
            "total" => Builtin::Total,
            "metrics" => Builtin::Metrics,
            "visit" => Builtin::Visit,
            "derive" => Builtin::Derive,
            "map_nodes" => Builtin::MapNodes,
            _ => return None,
        })
    }

    /// The builtin's source-level name (disassembly).
    pub(crate) fn name(self) -> &'static str {
        match self {
            Builtin::Print => "print",
            Builtin::Len => "len",
            Builtin::Push => "push",
            Builtin::Str => "str",
            Builtin::Abs => "abs",
            Builtin::Floor => "floor",
            Builtin::Sqrt => "sqrt",
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::Range => "range",
            Builtin::NodeCount => "node_count",
            Builtin::Nodes => "nodes",
            Builtin::Name => "name",
            Builtin::File => "file",
            Builtin::Line => "line",
            Builtin::Module => "module",
            Builtin::Parent => "parent",
            Builtin::Children => "children",
            Builtin::Value => "value",
            Builtin::SetValue => "set_value",
            Builtin::AddMetric => "add_metric",
            Builtin::Total => "total",
            Builtin::Metrics => "metrics",
            Builtin::Visit => "visit",
            Builtin::Derive => "derive",
            Builtin::MapNodes => "map_nodes",
        }
    }

    /// Whether calling this builtin is free of observable side effects
    /// (profile writes, stdout) — the purity analysis whitelist.
    pub(crate) fn is_pure(self) -> bool {
        !matches!(
            self,
            Builtin::Print
                | Builtin::SetValue
                | Builtin::AddMetric
                | Builtin::Visit
                | Builtin::Derive
                | Builtin::MapNodes
        )
    }
}

/// A fixed-width bytecode instruction. `local`/`global` fields are slot
/// indices ([`NO_SLOT`] = the name has no slot in that scope); `to`/
/// `end` are absolute instruction indices within the proto.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Op {
    /// Charge `n` interpreter steps at `line` (errors "step limit
    /// exceeded" exactly where the walker's `tick` would).
    Step { n: u32, line: u32 },
    /// Push number constant.
    Num { idx: u16 },
    /// Push string constant.
    Str { idx: u16 },
    /// Push boolean.
    Bool { value: bool },
    /// Push nil.
    Nil,
    /// Pop `len` values, push them as a fresh list.
    MakeList { len: u16 },
    /// Push a variable: local slot if defined, else global slot if
    /// defined, else "undefined variable" (`name` for the message).
    Load { local: u16, global: u16, name: u16, line: u32 },
    /// Pop and assign: local slot if defined, else global slot if
    /// defined, else "assignment to undefined variable".
    Store { local: u16, global: u16, name: u16, line: u32 },
    /// Pop and define (unconditionally) into the one slot that is set.
    Define { local: u16, global: u16 },
    /// Pop and discard.
    Pop,
    /// Pop, apply unary op, push.
    Unary { op: UnOp, line: u32 },
    /// Pop rhs then lhs, apply non-short-circuit binary op, push.
    Bin { op: BinOp, line: u32 },
    /// Error unless the top of stack is a bool ("condition must be a
    /// bool"); leaves it in place.
    CheckBool { line: u32 },
    /// `&&`: pop; non-bool errors; `false` pushes `false` and jumps.
    AndShort { to: u32, line: u32 },
    /// `||`: pop; non-bool errors; `true` pushes `true` and jumps.
    OrShort { to: u32, line: u32 },
    /// Pop; non-bool errors; `false` jumps.
    JumpIfFalse { to: u32, line: u32 },
    /// Pop index then list, push element.
    Index { line: u32 },
    /// Pop index, list, value; store element.
    StoreIndex { line: u32 },
    /// Push a fresh function value for prototype `proto`.
    MakeFunc { proto: u16 },
    /// Pop `argc` args then the callee, call it, push the result.
    Call { argc: u16, line: u32 },
    /// Pop `argc` args, run the builtin, push the result.
    CallBuiltin { id: Builtin, argc: u16, line: u32 },
    /// Builtin-shadowing dispatch (`is_builtin(name)` but the name has
    /// a slot): if the name is *undefined* at runtime, push a builtin
    /// flag and jump to the shared argument code at `to`; otherwise
    /// push a callee flag and fall through to evaluate the variable.
    FlexEnter { local: u16, global: u16, to: u32, id: Builtin },
    /// Pop the innermost flex flag and dispatch: builtin call or value
    /// call of the already-evaluated callee under the args.
    FlexCall { argc: u16, line: u32 },
    /// Unconditional jump.
    Jump { to: u32 },
    /// Pop the iterable, error unless it is a list ("for expects a
    /// list"), push an iteration snapshot.
    ForPrep { line: u32 },
    /// Advance the innermost iteration: exhausted pops it and jumps to
    /// `end`; otherwise charge one step and define the loop variable.
    ForLoop { local: u16, global: u16, end: u32, line: u32 },
    /// Discard the innermost iteration state (`break` out of a `for`).
    IterPop,
    /// `break`/`continue` outside any loop: error at the call site (or
    /// line 0 at top level), like the walker's flow propagation.
    LoopErr,
    /// Return from the proto (`has_value` pops the result; otherwise
    /// the result is nil).
    Ret { has_value: bool },
    // ---- fused superinstructions (peephole pass) --------------------
    //
    // Dispatch — the indirect branch at the top of the VM loop — is the
    // dominant per-op cost, so the peephole pass merges the most common
    // adjacent pairs/triples into one instruction. Fusion never crosses
    // a jump target and never changes charge boundaries, error lines,
    // or evaluation order; it only removes dispatches.
    /// Fused `Step` + `Num`: charge, then push the number constant.
    StepNum { n: u16, idx: u16, line: u32 },
    /// Fused `Step` + `Str`: charge, then push the string constant.
    StepStr { n: u16, idx: u16, line: u32 },
    /// Fused `Step` + `Load`: charge, then load. Fused only when both
    /// halves carry the same line, so one field serves the step's
    /// exhaustion error and the load's "undefined variable".
    StepLoad { n: u16, local: u16, global: u16, name: u16, line: u32 },
    /// Fused `Step` + `Num` + `Bin`: charge, then apply `op` to the
    /// popped lhs with the number constant as rhs. Same same-line
    /// fusion rule as [`Op::StepLoad`].
    StepNumBin { n: u16, idx: u16, op: BinOp, line: u32 },
}

// Every op is fetched by value per dispatch, so the enum staying at
// two words is part of the VM's perf contract; fusion candidates that
// would widen it are skipped by the peephole pass instead.
const _: () = assert!(std::mem::size_of::<Op>() <= 16);

/// A compiled function body (proto 0 is the top level).
#[derive(Debug)]
pub(crate) struct Proto {
    pub(crate) code: Vec<Op>,
    pub(crate) arity: usize,
    /// Local slot for each declared parameter, in declaration order
    /// (duplicate parameter names share a slot; the last one wins).
    pub(crate) param_slots: Vec<u16>,
    pub(crate) n_locals: usize,
    /// String-table index of each local's name (disassembly).
    pub(crate) local_names: Vec<u16>,
    /// True when every op is side-effect free and touches no globals —
    /// the condition for fanning node callbacks out over `ev-par`.
    pub(crate) pure: bool,
}

/// A compiled program: prototypes plus shared constant tables. Owns no
/// interior mutability, so a `&Chunk` is shared freely across worker
/// threads.
#[derive(Debug)]
pub(crate) struct Chunk {
    pub(crate) protos: Vec<Proto>,
    pub(crate) numbers: Vec<f64>,
    pub(crate) strings: Vec<String>,
    /// String-table index of each global's name, in first-definition
    /// order (the global slot table).
    pub(crate) global_names: Vec<u16>,
}

/// Static tables overflowed their index width (u16 constants/slots,
/// u32 code offsets). The host falls back to the tree-walker, which
/// has no such limits, rather than failing a program that would run.
#[derive(Debug)]
pub(crate) struct Overflow;

/// Compiles a program. `Err(Overflow)` only for pathologically large
/// programs (more than 65534 distinct constants/globals/protos).
pub(crate) fn compile(program: &[Stmt]) -> Result<Chunk, Overflow> {
    let mut c = Compiler::default();
    let mut globals = Vec::new();
    collect_defs(program, &mut globals);
    for name in globals {
        let idx = c.intern_string(&name)?;
        if c.global_slots.len() >= NO_SLOT as usize {
            return Err(Overflow);
        }
        c.global_slots.insert(name, c.chunk_global_names.len() as u16);
        c.chunk_global_names.push(idx);
    }
    c.compile_proto(&[], program, true)?;
    Ok(Chunk {
        protos: c.protos,
        numbers: c.numbers,
        strings: c.strings,
        global_names: c.chunk_global_names,
    })
}

/// Names a statement list can define in its own scope: `let`, `fn`,
/// and `for` variables, recursing through control-flow blocks but not
/// into function literals (those define in their own frame).
fn collect_defs(stmts: &[Stmt], out: &mut Vec<String>) {
    let add = |name: &str, out: &mut Vec<String>| {
        if !out.iter().any(|n| n == name) {
            out.push(name.to_owned());
        }
    };
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Let(name, _) => add(name, out),
            StmtKind::FnDef(name, _, _) => add(name, out),
            StmtKind::For(var, _, body) => {
                add(var, out);
                collect_defs(body, out);
            }
            StmtKind::If(_, then, otherwise) => {
                collect_defs(then, out);
                collect_defs(otherwise, out);
            }
            StmtKind::While(_, body) => collect_defs(body, out),
            StmtKind::Assign(..)
            | StmtKind::Return(_)
            | StmtKind::Break
            | StmtKind::Continue
            | StmtKind::Expr(_) => {}
        }
    }
}

/// Per-loop compile state for `break`/`continue` resolution.
struct LoopCtx {
    /// Jump target for `continue` (the cond label or the `ForLoop` op).
    continue_to: u32,
    /// `Jump` op indices to patch to the loop end.
    break_jumps: Vec<usize>,
}

/// Compile state for one proto.
struct FnState {
    code: Vec<Op>,
    locals: Vec<String>,
    local_names: Vec<u16>,
    loops: Vec<LoopCtx>,
    /// Index of a trailing `Step` op still eligible for same-line
    /// coalescing; cleared by any other emission or by a label.
    open_step: Option<usize>,
    is_top: bool,
}

#[derive(Default)]
struct Compiler {
    protos: Vec<Proto>,
    numbers: Vec<f64>,
    number_slots: HashMap<u64, u16>,
    strings: Vec<String>,
    string_slots: HashMap<String, u16>,
    global_slots: HashMap<String, u16>,
    chunk_global_names: Vec<u16>,
}

impl Compiler {
    fn intern_number(&mut self, n: f64) -> Result<u16, Overflow> {
        if let Some(&idx) = self.number_slots.get(&n.to_bits()) {
            return Ok(idx);
        }
        let idx = u16::try_from(self.numbers.len()).map_err(|_| Overflow)?;
        if idx == NO_SLOT {
            return Err(Overflow);
        }
        self.number_slots.insert(n.to_bits(), idx);
        self.numbers.push(n);
        Ok(idx)
    }

    fn intern_string(&mut self, s: &str) -> Result<u16, Overflow> {
        if let Some(&idx) = self.string_slots.get(s) {
            return Ok(idx);
        }
        let idx = u16::try_from(self.strings.len()).map_err(|_| Overflow)?;
        if idx == NO_SLOT {
            return Err(Overflow);
        }
        self.string_slots.insert(s.to_owned(), idx);
        self.strings.push(s.to_owned());
        Ok(idx)
    }

    /// Compiles one function body (or the top level) to a proto,
    /// returning its index. Nested `fn` literals recurse.
    fn compile_proto(
        &mut self,
        params: &[String],
        body: &[Stmt],
        is_top: bool,
    ) -> Result<u16, Overflow> {
        let proto_idx = u16::try_from(self.protos.len()).map_err(|_| Overflow)?;
        if proto_idx == NO_SLOT {
            return Err(Overflow);
        }
        // Reserve the slot so nested protos number after this one.
        self.protos.push(Proto {
            code: Vec::new(),
            arity: params.len(),
            param_slots: Vec::new(),
            n_locals: 0,
            local_names: Vec::new(),
            pure: false,
        });

        let mut f = FnState {
            code: Vec::new(),
            locals: Vec::new(),
            local_names: Vec::new(),
            loops: Vec::new(),
            open_step: None,
            is_top,
        };
        if !is_top {
            let mut defs: Vec<String> = params.to_vec();
            defs.dedup_by(|a, b| a == b);
            // Params first (in declaration order), then body defines.
            let mut names: Vec<String> = Vec::new();
            for p in &defs {
                if !names.iter().any(|n| n == p) {
                    names.push(p.clone());
                }
            }
            collect_defs(body, &mut names);
            if names.len() >= NO_SLOT as usize {
                return Err(Overflow);
            }
            for name in names {
                f.local_names.push(self.intern_string(&name)?);
                f.locals.push(name);
            }
        }
        let param_slots: Vec<u16> = params
            .iter()
            .map(|p| f.locals.iter().position(|n| n == p).expect("param collected") as u16)
            .collect();

        for stmt in body {
            self.compile_stmt(&mut f, stmt)?;
        }
        self.emit(&mut f, Op::Ret { has_value: false });
        f.code = peephole(f.code);

        let pure = scan_purity(&f.code, &self.protos);
        let proto = &mut self.protos[proto_idx as usize];
        proto.code = f.code;
        proto.param_slots = param_slots;
        proto.n_locals = f.locals.len();
        proto.local_names = f.local_names;
        proto.pure = pure;
        Ok(proto_idx)
    }

    // ---- emission helpers -------------------------------------------

    fn emit(&mut self, f: &mut FnState, op: Op) {
        let _ = self;
        f.open_step = None;
        f.code.push(op);
    }

    /// Emits one walker tick, coalescing into an immediately preceding
    /// same-line `Step` when no label separates them.
    fn emit_step(&mut self, f: &mut FnState, line: usize) {
        let line = line_u32(line);
        if let Some(idx) = f.open_step {
            if let Op::Step { n, line: l } = &mut f.code[idx] {
                if *l == line {
                    *n += 1;
                    return;
                }
            }
        }
        f.code.push(Op::Step { n: 1, line });
        f.open_step = Some(f.code.len() - 1);
    }

    /// Current position as a jump target; seals step coalescing so a
    /// jump here cannot skip a charge merged across the label.
    fn label(&mut self, f: &mut FnState) -> u32 {
        let _ = self;
        f.open_step = None;
        f.code.len() as u32
    }

    /// Emits a placeholder jump-like op, returning its index to patch.
    fn emit_patch(&mut self, f: &mut FnState, op: Op) -> usize {
        self.emit(f, op);
        f.code.len() - 1
    }

    /// Points the pending jump at `op_idx` to the current position.
    fn patch_here(&mut self, f: &mut FnState, op_idx: usize) {
        let to = self.label(f);
        match &mut f.code[op_idx] {
            Op::Jump { to: t }
            | Op::JumpIfFalse { to: t, .. }
            | Op::AndShort { to: t, .. }
            | Op::OrShort { to: t, .. }
            | Op::FlexEnter { to: t, .. }
            | Op::ForLoop { end: t, .. } => *t = to,
            other => unreachable!("not a patchable op: {other:?}"),
        }
    }

    /// Slot resolution with the walker's lookup rule: the innermost
    /// frame's statically collected names, then the global table.
    fn resolve(&mut self, f: &FnState, name: &str) -> Result<(u16, u16, u16), Overflow> {
        let local = if f.is_top {
            NO_SLOT
        } else {
            f.locals
                .iter()
                .position(|n| n == name)
                .map_or(NO_SLOT, |i| i as u16)
        };
        let global = self.global_slots.get(name).copied().unwrap_or(NO_SLOT);
        let name_idx = self.intern_string(name)?;
        Ok((local, global, name_idx))
    }

    /// Slot for an unconditional define (`let`, `fn`, `for` var): the
    /// current frame in a function, the global table at top level.
    fn resolve_define(&mut self, f: &FnState, name: &str) -> (u16, u16) {
        if f.is_top {
            let global = *self.global_slots.get(name).expect("collected global");
            (NO_SLOT, global)
        } else {
            let local = f.locals.iter().position(|n| n == name).expect("collected local");
            (local as u16, NO_SLOT)
        }
    }

    // ---- statements -------------------------------------------------

    fn compile_stmt(&mut self, f: &mut FnState, stmt: &Stmt) -> Result<(), Overflow> {
        // The walker ticks once on statement entry.
        self.emit_step(f, stmt.line);
        match &stmt.kind {
            StmtKind::Let(name, expr) => {
                self.compile_expr(f, expr)?;
                let (local, global) = self.resolve_define(f, name);
                self.emit(f, Op::Define { local, global });
            }
            StmtKind::Assign(target, expr) => match &target.kind {
                ExprKind::Ident(name) => {
                    self.compile_expr(f, expr)?;
                    let (local, global, name_idx) = self.resolve(f, name)?;
                    self.emit(
                        f,
                        Op::Store {
                            local,
                            global,
                            name: name_idx,
                            line: line_u32(stmt.line),
                        },
                    );
                }
                ExprKind::Index(list, index) => {
                    // Walker order: value, then list, then index.
                    self.compile_expr(f, expr)?;
                    self.compile_expr(f, list)?;
                    self.compile_expr(f, index)?;
                    self.emit(f, Op::StoreIndex { line: line_u32(stmt.line) });
                }
                _ => unreachable!("parser rejects other targets"),
            },
            StmtKind::If(cond, then, otherwise) => {
                self.compile_expr(f, cond)?;
                let to_else =
                    self.emit_patch(f, Op::JumpIfFalse { to: 0, line: line_u32(cond.line) });
                for s in then {
                    self.compile_stmt(f, s)?;
                }
                if otherwise.is_empty() {
                    self.patch_here(f, to_else);
                } else {
                    let to_end = self.emit_patch(f, Op::Jump { to: 0 });
                    self.patch_here(f, to_else);
                    for s in otherwise {
                        self.compile_stmt(f, s)?;
                    }
                    self.patch_here(f, to_end);
                }
            }
            StmtKind::While(cond, body) => {
                let cond_label = self.label(f);
                self.compile_expr(f, cond)?;
                let to_end =
                    self.emit_patch(f, Op::JumpIfFalse { to: 0, line: line_u32(cond.line) });
                // The walker ticks once more per iteration, after the
                // condition passes and before the body runs.
                self.emit_step(f, stmt.line);
                f.loops.push(LoopCtx {
                    continue_to: cond_label,
                    break_jumps: Vec::new(),
                });
                for s in body {
                    self.compile_stmt(f, s)?;
                }
                self.emit(f, Op::Jump { to: cond_label });
                let ctx = f.loops.pop().expect("loop ctx");
                for jump in ctx.break_jumps {
                    self.patch_here(f, jump);
                }
                self.patch_here(f, to_end);
            }
            StmtKind::For(var, iterable, body) => {
                self.compile_expr(f, iterable)?;
                self.emit(f, Op::ForPrep { line: line_u32(stmt.line) });
                let head = self.label(f);
                let (local, global) = self.resolve_define(f, var);
                let for_op = self.emit_patch(
                    f,
                    Op::ForLoop { local, global, end: 0, line: line_u32(stmt.line) },
                );
                f.loops.push(LoopCtx {
                    continue_to: head,
                    break_jumps: Vec::new(),
                });
                for s in body {
                    self.compile_stmt(f, s)?;
                }
                self.emit(f, Op::Jump { to: head });
                let ctx = f.loops.pop().expect("loop ctx");
                // `ForLoop` pops the iteration state on natural
                // exhaustion; `break` jumps land after an `IterPop`.
                self.patch_here(f, for_op);
                if !ctx.break_jumps.is_empty() {
                    let to_end = self.emit_patch(f, Op::Jump { to: 0 });
                    for jump in ctx.break_jumps {
                        self.patch_here(f, jump);
                    }
                    self.emit(f, Op::IterPop);
                    self.patch_here(f, to_end);
                }
            }
            StmtKind::FnDef(name, params, body) => {
                let proto = self.compile_proto(params, body, false)?;
                self.emit(f, Op::MakeFunc { proto });
                let (local, global) = self.resolve_define(f, name);
                self.emit(f, Op::Define { local, global });
            }
            StmtKind::Break => {
                if f.loops.is_empty() {
                    self.emit(f, Op::LoopErr);
                } else {
                    // For `for` loops the break target runs IterPop
                    // before falling through to the loop end.
                    let jump = self.emit_patch(f, Op::Jump { to: 0 });
                    f.loops.last_mut().expect("loop ctx").break_jumps.push(jump);
                }
            }
            StmtKind::Continue => match f.loops.last() {
                Some(ctx) => {
                    let to = ctx.continue_to;
                    self.emit(f, Op::Jump { to });
                }
                None => self.emit(f, Op::LoopErr),
            },
            StmtKind::Return(expr) => {
                let has_value = expr.is_some();
                if let Some(e) = expr {
                    self.compile_expr(f, e)?;
                }
                self.emit(f, Op::Ret { has_value });
            }
            StmtKind::Expr(expr) => {
                self.compile_expr(f, expr)?;
                self.emit(f, Op::Pop);
            }
        }
        Ok(())
    }

    // ---- expressions ------------------------------------------------

    fn compile_expr(&mut self, f: &mut FnState, expr: &Expr) -> Result<(), Overflow> {
        // The walker ticks once on every expression node.
        self.emit_step(f, expr.line);
        match &expr.kind {
            ExprKind::Number(n) => {
                let idx = self.intern_number(*n)?;
                self.emit(f, Op::Num { idx });
            }
            ExprKind::Str(s) => {
                let idx = self.intern_string(s)?;
                self.emit(f, Op::Str { idx });
            }
            ExprKind::Bool(b) => self.emit(f, Op::Bool { value: *b }),
            ExprKind::Nil => self.emit(f, Op::Nil),
            ExprKind::Ident(name) => {
                let (local, global, name_idx) = self.resolve(f, name)?;
                self.emit(
                    f,
                    Op::Load { local, global, name: name_idx, line: line_u32(expr.line) },
                );
            }
            ExprKind::List(items) => {
                if items.len() >= NO_SLOT as usize {
                    return Err(Overflow);
                }
                for item in items {
                    self.compile_expr(f, item)?;
                }
                self.emit(f, Op::MakeList { len: items.len() as u16 });
            }
            ExprKind::Unary(op, operand) => {
                self.compile_expr(f, operand)?;
                self.emit(f, Op::Unary { op: *op, line: line_u32(expr.line) });
            }
            ExprKind::Binary(op, lhs, rhs) => match op {
                BinOp::And => {
                    self.compile_expr(f, lhs)?;
                    let short =
                        self.emit_patch(f, Op::AndShort { to: 0, line: line_u32(lhs.line) });
                    self.compile_expr(f, rhs)?;
                    self.emit(f, Op::CheckBool { line: line_u32(rhs.line) });
                    self.patch_here(f, short);
                }
                BinOp::Or => {
                    self.compile_expr(f, lhs)?;
                    let short =
                        self.emit_patch(f, Op::OrShort { to: 0, line: line_u32(lhs.line) });
                    self.compile_expr(f, rhs)?;
                    self.emit(f, Op::CheckBool { line: line_u32(rhs.line) });
                    self.patch_here(f, short);
                }
                _ => {
                    self.compile_expr(f, lhs)?;
                    self.compile_expr(f, rhs)?;
                    self.emit(f, Op::Bin { op: *op, line: line_u32(expr.line) });
                }
            },
            ExprKind::Index(list, index) => {
                self.compile_expr(f, list)?;
                self.compile_expr(f, index)?;
                self.emit(f, Op::Index { line: line_u32(expr.line) });
            }
            ExprKind::Function(params, body) => {
                let proto = self.compile_proto(params, body, false)?;
                self.emit(f, Op::MakeFunc { proto });
            }
            ExprKind::Call(callee, args) => {
                if args.len() >= NO_SLOT as usize {
                    return Err(Overflow);
                }
                let argc = args.len() as u16;
                let line = line_u32(expr.line);
                if let ExprKind::Ident(name) = &callee.kind {
                    if let Some(id) = Builtin::from_name(name) {
                        let (local, global, _) = self.resolve(f, name)?;
                        if local == NO_SLOT && global == NO_SLOT {
                            // Never definable: always the builtin.
                            for arg in args {
                                self.compile_expr(f, arg)?;
                            }
                            self.emit(f, Op::CallBuiltin { id, argc, line });
                            return Ok(());
                        }
                        // Shadowable: dispatch on runtime definedness,
                        // sharing the argument code between both paths.
                        let enter =
                            self.emit_patch(f, Op::FlexEnter { local, global, to: 0, id });
                        self.compile_expr(f, callee)?;
                        self.patch_here(f, enter);
                        for arg in args {
                            self.compile_expr(f, arg)?;
                        }
                        self.emit(f, Op::FlexCall { argc, line });
                        return Ok(());
                    }
                }
                self.compile_expr(f, callee)?;
                for arg in args {
                    self.compile_expr(f, arg)?;
                }
                self.emit(f, Op::Call { argc, line });
            }
        }
        Ok(())
    }
}

fn line_u32(line: usize) -> u32 {
    u32::try_from(line).unwrap_or(u32::MAX)
}

/// Peephole superinstruction fusion: merges `Step`+`Num`(+`Bin`),
/// `Step`+`Str`, and `Step`+`Load` into single fused ops, then remaps
/// every jump target through the old→new pc table. An op that is the
/// target of any jump is never absorbed as the *second* (or third)
/// element of a fusion, so control transfers always land on an
/// instruction boundary that still exists.
fn peephole(code: Vec<Op>) -> Vec<Op> {
    let mut is_target = vec![false; code.len() + 1];
    for op in &code {
        match op {
            Op::Jump { to }
            | Op::JumpIfFalse { to, .. }
            | Op::AndShort { to, .. }
            | Op::OrShort { to, .. }
            | Op::FlexEnter { to, .. }
            | Op::ForLoop { end: to, .. } => is_target[*to as usize] = true,
            _ => {}
        }
    }
    let mut new_code = Vec::with_capacity(code.len());
    let mut map = vec![0u32; code.len() + 1];
    let mut i = 0;
    while i < code.len() {
        map[i] = new_code.len() as u32;
        let fused = match code[i] {
            Op::Step { n, line } if n <= u16::MAX as u32 => {
                let n = n as u16;
                match code.get(i + 1) {
                    Some(&Op::Num { idx }) if !is_target[i + 1] => match code.get(i + 2) {
                        Some(&Op::Bin { op, line: bin_line })
                            if !is_target[i + 2] && bin_line == line =>
                        {
                            Some((Op::StepNumBin { n, idx, op, line }, 3))
                        }
                        _ => Some((Op::StepNum { n, idx, line }, 2)),
                    },
                    Some(&Op::Str { idx }) if !is_target[i + 1] => {
                        Some((Op::StepStr { n, idx, line }, 2))
                    }
                    Some(&Op::Load { local, global, name, line: load_line })
                        if !is_target[i + 1] && load_line == line =>
                    {
                        Some((Op::StepLoad { n, local, global, name, line }, 2))
                    }
                    _ => None,
                }
            }
            _ => None,
        };
        match fused {
            Some((op, width)) => {
                for k in 1..width {
                    map[i + k] = new_code.len() as u32;
                }
                new_code.push(op);
                i += width;
            }
            None => {
                new_code.push(code[i]);
                i += 1;
            }
        }
    }
    map[code.len()] = new_code.len() as u32;
    for op in &mut new_code {
        match op {
            Op::Jump { to }
            | Op::JumpIfFalse { to, .. }
            | Op::AndShort { to, .. }
            | Op::OrShort { to, .. }
            | Op::FlexEnter { to, .. }
            | Op::ForLoop { end: to, .. } => *to = map[*to as usize],
            _ => {}
        }
    }
    new_code
}

/// A proto is pure when no op can write globals, stdout, or the
/// profile: then a per-node callback can run on any thread against a
/// read-only profile view with no observable difference.
///
/// Function definition and application are allowed as long as every
/// proto reachable through `MakeFunc` is itself pure. That closes the
/// analysis over helper functions a callback defines locally: the only
/// function values a pure frame can ever hold come from its own
/// (transitively pure) `MakeFunc`s — its parameters are node handles,
/// constants are never functions, and no pure builtin returns one — so
/// a blessed `Call` can only ever enter pure code. `FlexEnter` /
/// `FlexCall` stay impure: their builtin-shadowing dispatch reads
/// global definedness at runtime. Nested protos finish compiling
/// before their parent is scanned (compilation recurses into `fn`
/// literals), so `protos[target].pure` is already final here.
fn scan_purity(code: &[Op], protos: &[Proto]) -> bool {
    code.iter().all(|op| match op {
        Op::Load { local, global, .. }
        | Op::StepLoad { local, global, .. }
        | Op::Store { local, global, .. } => *global == NO_SLOT && *local != NO_SLOT,
        Op::Define { global, .. } | Op::ForLoop { global, .. } => *global == NO_SLOT,
        Op::MakeFunc { proto } => protos[*proto as usize].pure,
        Op::FlexEnter { .. } | Op::FlexCall { .. } => false,
        Op::CallBuiltin { id, .. } => id.is_pure(),
        // `Call` included: per the invariant above, any callee is pure.
        _ => true,
    })
}

/// Renders a chunk as stable, human-readable text (golden fixtures).
pub(crate) fn disassemble(chunk: &Chunk) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, proto) in chunk.protos.iter().enumerate() {
        let kind = if i == 0 { " (main)" } else { "" };
        let _ = writeln!(
            out,
            "proto {i}{kind}: arity={} locals={} pure={}",
            proto.arity, proto.n_locals, proto.pure
        );
        if !proto.local_names.is_empty() {
            let names: Vec<&str> = proto
                .local_names
                .iter()
                .map(|&n| chunk.strings[n as usize].as_str())
                .collect();
            let _ = writeln!(out, "  locals: {}", names.join(", "));
        }
        for (pc, op) in proto.code.iter().enumerate() {
            let _ = write!(out, "  {pc:04}  ");
            let slot = |local: u16, global: u16| -> String {
                match (local, global) {
                    (NO_SLOT, NO_SLOT) => "none".to_owned(),
                    (l, NO_SLOT) => format!("local {l}"),
                    (NO_SLOT, g) => format!("global {g}"),
                    (l, g) => format!("local {l} | global {g}"),
                }
            };
            let line = match op {
                Op::Step { line, .. }
                | Op::StepNum { line, .. }
                | Op::StepStr { line, .. }
                | Op::StepLoad { line, .. }
                | Op::StepNumBin { line, .. }
                | Op::Load { line, .. }
                | Op::Store { line, .. }
                | Op::Unary { line, .. }
                | Op::Bin { line, .. }
                | Op::CheckBool { line }
                | Op::AndShort { line, .. }
                | Op::OrShort { line, .. }
                | Op::JumpIfFalse { line, .. }
                | Op::Index { line }
                | Op::StoreIndex { line }
                | Op::Call { line, .. }
                | Op::CallBuiltin { line, .. }
                | Op::FlexCall { line, .. }
                | Op::ForPrep { line }
                | Op::ForLoop { line, .. } => Some(*line),
                _ => None,
            };
            let text = match op {
                Op::Step { n, .. } => format!("step        n={n}"),
                Op::Num { idx } => {
                    format!("num         {}", chunk.numbers[*idx as usize])
                }
                Op::Str { idx } => {
                    format!("str         {:?}", chunk.strings[*idx as usize])
                }
                Op::Bool { value } => format!("bool        {value}"),
                Op::Nil => "nil".to_owned(),
                Op::MakeList { len } => format!("make_list   len={len}"),
                Op::Load { local, global, name, .. } => format!(
                    "load        {} ({})",
                    slot(*local, *global),
                    chunk.strings[*name as usize]
                ),
                Op::Store { local, global, name, .. } => format!(
                    "store       {} ({})",
                    slot(*local, *global),
                    chunk.strings[*name as usize]
                ),
                Op::Define { local, global } => {
                    format!("define      {}", slot(*local, *global))
                }
                Op::Pop => "pop".to_owned(),
                Op::Unary { op, .. } => format!("unary       {op:?}"),
                Op::Bin { op, .. } => format!("bin         {op:?}"),
                Op::CheckBool { .. } => "check_bool".to_owned(),
                Op::AndShort { to, .. } => format!("and_short   -> {to:04}"),
                Op::OrShort { to, .. } => format!("or_short    -> {to:04}"),
                Op::JumpIfFalse { to, .. } => format!("jump_false  -> {to:04}"),
                Op::Index { .. } => "index".to_owned(),
                Op::StoreIndex { .. } => "store_index".to_owned(),
                Op::MakeFunc { proto } => format!("make_func   proto {proto}"),
                Op::Call { argc, .. } => format!("call        argc={argc}"),
                Op::CallBuiltin { id, argc, .. } => {
                    format!("builtin     {} argc={argc}", id.name())
                }
                Op::FlexEnter { local, global, to, id } => format!(
                    "flex_enter  {} {} -> {to:04}",
                    id.name(),
                    slot(*local, *global)
                ),
                Op::FlexCall { argc, .. } => format!("flex_call   argc={argc}"),
                Op::Jump { to } => format!("jump        -> {to:04}"),
                Op::ForPrep { .. } => "for_prep".to_owned(),
                Op::ForLoop { local, global, end, .. } => {
                    format!("for_loop    {} end -> {end:04}", slot(*local, *global))
                }
                Op::IterPop => "iter_pop".to_owned(),
                Op::LoopErr => "loop_err".to_owned(),
                Op::Ret { has_value } => format!("ret         value={has_value}"),
                Op::StepNum { n, idx, .. } => {
                    format!("step.num    n={n} {}", chunk.numbers[*idx as usize])
                }
                Op::StepStr { n, idx, .. } => {
                    format!("step.str    n={n} {:?}", chunk.strings[*idx as usize])
                }
                Op::StepLoad { n, local, global, name, .. } => format!(
                    "step.load   n={n} {} ({})",
                    slot(*local, *global),
                    chunk.strings[*name as usize]
                ),
                Op::StepNumBin { n, idx, op, .. } => format!(
                    "step.numbin n={n} {} {op:?}",
                    chunk.numbers[*idx as usize]
                ),
            };
            match line {
                Some(l) => {
                    let _ = writeln!(out, "{text}  ; line {l}");
                }
                None => {
                    let _ = writeln!(out, "{text}");
                }
            }
        }
    }
    out
}

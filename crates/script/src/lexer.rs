//! The EVscript lexer.

use crate::ScriptError;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers.
    Number(f64),
    Str(String),
    Ident(String),
    // Keywords.
    Let,
    Fn,
    If,
    Else,
    While,
    For,
    Break,
    Continue,
    In,
    Return,
    True,
    False,
    Nil,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    // Operators.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

/// Tokenizes EVscript source.
///
/// # Errors
///
/// Fails on unterminated strings, malformed numbers, or bytes that
/// start no token. `#` comments run to end of line.
pub fn lex(source: &str) -> Result<Vec<Token>, ScriptError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    let mut line = 1usize;

    macro_rules! push {
        ($kind:expr) => {
            tokens.push(Token { kind: $kind, line })
        };
    }

    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b'\n' => {
                line += 1;
                pos += 1;
            }
            b' ' | b'\t' | b'\r' => pos += 1,
            b'#' => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'(' => {
                push!(TokenKind::LParen);
                pos += 1;
            }
            b')' => {
                push!(TokenKind::RParen);
                pos += 1;
            }
            b'{' => {
                push!(TokenKind::LBrace);
                pos += 1;
            }
            b'}' => {
                push!(TokenKind::RBrace);
                pos += 1;
            }
            b'[' => {
                push!(TokenKind::LBracket);
                pos += 1;
            }
            b']' => {
                push!(TokenKind::RBracket);
                pos += 1;
            }
            b',' => {
                push!(TokenKind::Comma);
                pos += 1;
            }
            b';' => {
                push!(TokenKind::Semicolon);
                pos += 1;
            }
            b'+' => {
                push!(TokenKind::Plus);
                pos += 1;
            }
            b'-' => {
                push!(TokenKind::Minus);
                pos += 1;
            }
            b'*' => {
                push!(TokenKind::Star);
                pos += 1;
            }
            b'/' => {
                push!(TokenKind::Slash);
                pos += 1;
            }
            b'%' => {
                push!(TokenKind::Percent);
                pos += 1;
            }
            b'=' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::Eq);
                    pos += 2;
                } else {
                    push!(TokenKind::Assign);
                    pos += 1;
                }
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::NotEq);
                    pos += 2;
                } else {
                    push!(TokenKind::Bang);
                    pos += 1;
                }
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::LtEq);
                    pos += 2;
                } else {
                    push!(TokenKind::Lt);
                    pos += 1;
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::GtEq);
                    pos += 2;
                } else {
                    push!(TokenKind::Gt);
                    pos += 1;
                }
            }
            b'&' => {
                if bytes.get(pos + 1) == Some(&b'&') {
                    push!(TokenKind::AndAnd);
                    pos += 2;
                } else {
                    return Err(ScriptError::new("expected '&&'", line));
                }
            }
            b'|' => {
                if bytes.get(pos + 1) == Some(&b'|') {
                    push!(TokenKind::OrOr);
                    pos += 2;
                } else {
                    return Err(ScriptError::new("expected '||'", line));
                }
            }
            b'"' => {
                pos += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(pos) {
                        None | Some(b'\n') => {
                            return Err(ScriptError::new("unterminated string", line))
                        }
                        Some(b'"') => {
                            pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            match bytes.get(pos + 1) {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                _ => return Err(ScriptError::new("bad escape", line)),
                            }
                            pos += 2;
                        }
                        Some(&byte) => {
                            // Collect a full UTF-8 sequence.
                            let ch_len = match byte {
                                0x00..=0x7f => 1,
                                0xc0..=0xdf => 2,
                                0xe0..=0xef => 3,
                                _ => 4,
                            };
                            let end = (pos + ch_len).min(bytes.len());
                            s.push_str(
                                std::str::from_utf8(&bytes[pos..end])
                                    .map_err(|_| ScriptError::new("bad utf-8", line))?,
                            );
                            pos = end;
                        }
                    }
                }
                push!(TokenKind::Str(s));
            }
            b'0'..=b'9' => {
                let start = pos;
                while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
                    pos += 1;
                }
                if bytes.get(pos) == Some(&b'.')
                    && matches!(bytes.get(pos + 1), Some(b'0'..=b'9'))
                {
                    pos += 1;
                    while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
                        pos += 1;
                    }
                }
                if matches!(bytes.get(pos), Some(b'e' | b'E')) {
                    let mut p = pos + 1;
                    if matches!(bytes.get(p), Some(b'+' | b'-')) {
                        p += 1;
                    }
                    if matches!(bytes.get(p), Some(b'0'..=b'9')) {
                        pos = p;
                        while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
                            pos += 1;
                        }
                    }
                }
                let text = std::str::from_utf8(&bytes[start..pos]).expect("ascii");
                let value: f64 = text
                    .parse()
                    .map_err(|_| ScriptError::new(format!("bad number {text:?}"), line))?;
                push!(TokenKind::Number(value));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = pos;
                while matches!(
                    bytes.get(pos),
                    Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
                ) {
                    pos += 1;
                }
                let word = std::str::from_utf8(&bytes[start..pos]).expect("ascii");
                let kind = match word {
                    "let" => TokenKind::Let,
                    "fn" => TokenKind::Fn,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "while" => TokenKind::While,
                    "break" => TokenKind::Break,
                    "continue" => TokenKind::Continue,
                    "for" => TokenKind::For,
                    "in" => TokenKind::In,
                    "return" => TokenKind::Return,
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    "nil" => TokenKind::Nil,
                    _ => TokenKind::Ident(word.to_owned()),
                };
                push!(kind);
            }
            other => {
                return Err(ScriptError::new(
                    format!("unexpected character {:?}", other as char),
                    line,
                ))
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            kinds("let x = fn_name"),
            vec![
                TokenKind::Let,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Ident("fn_name".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("1 2.5 1e3 2E-2"), vec![
            TokenKind::Number(1.0),
            TokenKind::Number(2.5),
            TokenKind::Number(1000.0),
            TokenKind::Number(0.02),
            TokenKind::Eof,
        ]);
    }

    #[test]
    fn operators_two_char() {
        assert_eq!(
            kinds("== != <= >= && || ! = < >"),
            vec![
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::LtEq,
                TokenKind::GtEq,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Assign,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\nb\"c\\d""#),
            vec![TokenKind::Str("a\nb\"c\\d".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            kinds("\"héllo→\""),
            vec![TokenKind::Str("héllo→".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_skipped_lines_counted() {
        let tokens = lex("# comment\nlet x = 1 # trailing\nx").unwrap();
        assert_eq!(tokens[0].line, 2);
        assert_eq!(tokens.last().unwrap().kind, TokenKind::Eof);
        assert_eq!(tokens[4].line, 3);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("@").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("\"bad\\qescape\"").is_err());
    }

    #[test]
    fn error_carries_line() {
        let err = lex("ok\nok\n@").unwrap_err();
        assert_eq!(err.line, 3);
    }
}

//! `ev-script` — **EVscript**, EasyView's embedded customization
//! language (paper §V-B).
//!
//! The paper lets users customize profile analysis by writing code in a
//! programming pane, executed in-process with no extra installation
//! (the original uses Python compiled to WebAssembly). This crate is the
//! equivalent substrate: a small dynamically-typed language with a
//! lexer, Pratt parser, and tree-walking interpreter, plus host bindings
//! that expose the two callback classes the paper defines:
//!
//! * **callbacks at node visit** — [`ScriptHost::run`] scripts call
//!   `visit(fn)` to run a function at every node during tree traversal
//!   (merge nodes, elide nodes, collect statistics);
//! * **callbacks at metric computation** — scripts call
//!   `derive(name, fn)` to compute a new metric from a formula at every
//!   node (CPI, MPKI, memory-scaling ratios, …).
//!
//! # Language
//!
//! ```text
//! let threshold = total("cpu") * 0.01;
//! let hot = 0;
//! visit(fn(n) {
//!     if value(n, "cpu") > threshold { hot = hot + 1; }
//! });
//! derive("cpi", fn(n) { value(n, "cycles") / value(n, "instructions") });
//! print("hot nodes:", hot);
//! ```
//!
//! Values: numbers (f64), strings, booleans, `nil`, lists, and
//! functions. Statements: `let`, assignment, `if`/`else`, `while`,
//! `for x in list`, `fn`, `return`, blocks, expression statements.
//!
//! # Examples
//!
//! ```
//! use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit, Profile};
//! use ev_script::ScriptHost;
//!
//! let mut p = Profile::new("demo");
//! let m = p.add_metric(MetricDescriptor::new(
//!     "cpu",
//!     MetricUnit::Count,
//!     MetricKind::Exclusive,
//! ));
//! p.add_sample(&[Frame::function("main")], &[(m, 10.0)]);
//!
//! let mut host = ScriptHost::new(&mut p);
//! let out = host.run("print(\"total:\", total(\"cpu\"));").unwrap();
//! assert_eq!(out.stdout, "total: 10\n");
//! ```

mod ast;
mod compile;
mod host;
mod interp;
mod lexer;
mod parser;
mod vm;

pub use host::{disassemble_source, ScriptEngine, ScriptHost, ScriptOutput};
pub use interp::{Value, DEFAULT_STEP_LIMIT};

use std::error::Error;
use std::fmt;

/// An EVscript compile- or run-time error, with the 1-based source line
/// where it occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line (0 when unknown).
    pub line: usize,
}

impl ScriptError {
    pub(crate) fn new(message: impl Into<String>, line: usize) -> ScriptError {
        ScriptError {
            message: message.into(),
            line,
        }
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "script error: {}", self.message)
        } else {
            write!(f, "script error at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ScriptError {}

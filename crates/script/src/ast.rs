//! The EVscript abstract syntax tree.

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// An expression, annotated with its source line for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: usize,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    Number(f64),
    Str(String),
    Bool(bool),
    Nil,
    Ident(String),
    List(Vec<Expr>),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Call(Box<Expr>, Vec<Expr>),
    Index(Box<Expr>, Box<Expr>),
    /// Anonymous function literal: `fn(a, b) { ... }`.
    Function(Vec<String>, Vec<Stmt>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub line: usize,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let name = expr;`
    Let(String, Expr),
    /// `name = expr;` or `list[i] = expr;`
    Assign(Expr, Expr),
    /// `if cond { ... } else { ... }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while cond { ... }`
    While(Expr, Vec<Stmt>),
    /// `for x in expr { ... }`
    For(String, Expr, Vec<Stmt>),
    /// `fn name(params) { ... }` — sugar for `let name = fn(...) {...}`.
    FnDef(String, Vec<String>, Vec<Stmt>),
    /// `return expr;` / `return;`
    Return(Option<Expr>),
    /// `break;` — exit the innermost loop.
    Break,
    /// `continue;` — next iteration of the innermost loop.
    Continue,
    /// Bare expression statement.
    Expr(Expr),
}

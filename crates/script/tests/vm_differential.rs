//! Differential conformance: the bytecode VM against the tree-walking
//! reference interpreter.
//!
//! Every program here — handcrafted corpus, generated programs, and the
//! step-limit regressions — must produce the *same observable run* on
//! both engines: identical `Result<ScriptOutput, ScriptError>`,
//! identical step accounting (including on the error path), identical
//! partial stdout, and an identical final `Profile`. The bytecode
//! engine is additionally pinned at `--threads 1/2/8` so parallel
//! callback fan-out stays bit-identical to the sequential run.

use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit, Profile};
use ev_par::ExecPolicy;
use ev_script::{ScriptEngine, ScriptHost, ScriptOutput, ScriptError, DEFAULT_STEP_LIMIT};
use ev_test::Rng;

// ---- harness -------------------------------------------------------

/// Six-node fixture: root → {main → {hot(hot.c:9) → inner, cold},
/// util}, with metrics "cpu" and "alloc".
fn fixture() -> Profile {
    let mut p = Profile::new("diff");
    let cpu = p.add_metric(MetricDescriptor::new(
        "cpu",
        MetricUnit::Count,
        MetricKind::Exclusive,
    ));
    let alloc = p.add_metric(MetricDescriptor::new(
        "alloc",
        MetricUnit::Bytes,
        MetricKind::Exclusive,
    ));
    p.add_sample(
        &[Frame::function("main"), Frame::function("hot").with_source("hot.c", 9)],
        &[(cpu, 90.0), (alloc, 4096.0)],
    );
    p.add_sample(&[Frame::function("main"), Frame::function("cold")], &[(cpu, 10.0)]);
    p.add_sample(
        &[
            Frame::function("main"),
            Frame::function("hot").with_source("hot.c", 9),
            Frame::function("inner"),
        ],
        &[(cpu, 5.0)],
    );
    p.add_sample(&[Frame::function("util")], &[(alloc, 512.0)]);
    p
}

struct RunResult {
    outcome: Result<ScriptOutput, ScriptError>,
    steps: u64,
    stdout: String,
    profile: Profile,
}

fn exec(src: &str, engine: ScriptEngine, threads: Option<usize>, limit: u64) -> RunResult {
    let mut profile = fixture();
    let mut host = ScriptHost::new(&mut profile)
        .with_engine(engine)
        .with_step_limit(limit);
    if let Some(t) = threads {
        host = host.with_policy(ExecPolicy::with_threads(t));
    }
    let outcome = host.run(src);
    let steps = host.last_steps();
    let stdout = host.last_stdout().to_owned();
    drop(host);
    RunResult {
        outcome,
        steps,
        stdout,
        profile,
    }
}

fn compare(label: &str, src: &str, reference: &RunResult, candidate: &RunResult) {
    assert_eq!(
        reference.outcome, candidate.outcome,
        "outcome diverged ({label})\n--- program ---\n{src}"
    );
    assert_eq!(
        reference.steps, candidate.steps,
        "step count diverged ({label})\n--- program ---\n{src}"
    );
    assert_eq!(
        reference.stdout, candidate.stdout,
        "stdout diverged ({label})\n--- program ---\n{src}"
    );
    assert_eq!(
        reference.profile, candidate.profile,
        "profile diverged ({label})\n--- program ---\n{src}"
    );
}

/// Pins Bytecode == Reference, then Bytecode at 1/2/8 threads ==
/// Reference, for one program under one step budget.
fn assert_equivalent_with_limit(src: &str, limit: u64) {
    let reference = exec(src, ScriptEngine::Reference, None, limit);
    let vm = exec(src, ScriptEngine::Bytecode, None, limit);
    compare("bytecode", src, &reference, &vm);
    for threads in [1usize, 2, 8] {
        let par = exec(src, ScriptEngine::Bytecode, Some(threads), limit);
        compare(&format!("bytecode, {threads} threads"), src, &reference, &par);
    }
}

fn assert_equivalent(src: &str) {
    assert_equivalent_with_limit(src, 100_000);
}

// ---- handcrafted corpus --------------------------------------------

/// Every program in the corpus must run identically on both engines —
/// successes and failures alike. Grouped by what they pin down.
const CORPUS: &[&str] = &[
    // arithmetic, comparison, logic
    "print(1 + 2 * 3 - 4 / 8 % 3);",
    "print(-5, - -5, !true, !false);",
    "print(1 == 1.0, \"a\" == \"a\", [1, 2] == [1, 2], nil == nil, true != false);",
    "print([1] == [1, 2], [1, \"a\"] == [1, \"a\"], nil == 0, 1 == \"1\");",
    "print(\"a\" + \"b\", \"a\" < \"b\", \"b\" <= \"a\", \"z\" > \"a\", \"a\" >= \"a\");",
    "print(1 < 2 && 2 < 3 || false);",
    "print(true || undefined_var, false && undefined_var);",
    "print(1 / 0);",
    "print(1 % 0);",
    "print(1 + true);",
    "print(\"a\" - \"b\");",
    "print([1] * 2);",
    "print(nil + 1);",
    "print(-\"x\");",
    "print(!0);",
    "print(1 < \"a\");",
    // variables and the two-level dynamic scope
    "let a = 1; a = a + 1; { let a = 5; } print(a);",
    "print(missing);",
    "missing = 3;",
    "let g = 1; fn f() { return g; } fn h() { let g = 2; return f(); } print(h());",
    "let x = 10; fn f() { let x = 2; return x; } print(f(), x);",
    "let y = 5; fn f(c) { if c { let y = 9; } return y; } print(f(true), f(false));",
    // functions
    "fn fib(n) { if n < 2 { return n; } return fib(n - 1) + fib(n - 2); } print(fib(12));",
    "fn f(a) { return a; } f(1, 2);",
    "let f = 1; f();",
    "fn f(n) { return f(n + 1); } f(0);",
    "fn f(a, a) { return a; } print(f(1, 2));",
    "let add = fn(a, b) { return a + b; }; print(add(3, 4));",
    "fn f() { return 1; } let g = f; print(g(), g == f, f == fib);",
    "fn f() { return; } print(f());",
    "fn f() { 1 + 1; } print(f());",
    "fn f() { for i in range(10) { if i == 3 { return i; } } return -1; } print(f());",
    // control flow
    "let c = []; for i in range(10) { if i % 2 == 0 { continue; } if i > 6 { break; } push(c, i); } print(c);",
    "break;",
    "continue;",
    "fn f() { break; } for i in range(3) { f(); }",
    "fn f() { continue; } while true { f(); }",
    "let s = 0; for i in range(3) { for j in range(3) { if j == 2 { break; } s = s + i * 10 + j; } } print(s);",
    "let i = 0; let s = 0; while i < 10 { i = i + 1; if i % 2 == 0 { continue; } s = s + i; } print(s, i);",
    "if 1 { }",
    "while \"x\" { }",
    "if nil { } else { print(\"else\"); }",
    "for x in 5 { }",
    "for x in \"abc\" { }",
    "let xs = [1, 2, 3]; for x in xs { push(xs, x * 10); } print(xs);",
    "for i in range(3) { } print(i);",
    "for x in [] { print(\"no\"); } print(\"done\");",
    // lists and indexing
    "let xs = [10, 20, 30]; xs[1] = 25; push(xs, 40); print(xs, len(xs), xs[3]);",
    "let xs = [1]; print(xs[5]);",
    "let xs = [1]; print(xs[-1]);",
    "let xs = [1]; print(xs[\"a\"]);",
    "print(1[0]);",
    "print(\"abc\"[0]);",
    "let xs = [1]; xs[9] = 0;",
    "let n = 1; n[0] = 2;",
    "let m = [[1, 2], [3, 4]]; m[1][0] = 30; print(m, m[1][0]);",
    // builtins
    "print(len([1, 2]), len(\"abc\"));",
    "print(len(1));",
    "print(str(1), str(true) + str(nil), str([1, \"a\"]));",
    "print(abs(-2), floor(2.7), sqrt(9), min(3, 1), max(3, 1));",
    "print(sqrt(\"x\"));",
    "print(abs(true));",
    "print(range(0), range(1), len(range(5)), range(2, 5));",
    "print(range(20000001));",
    "let xs = []; push(xs, 1); print(xs);",
    "print(push(1, 2));",
    // profile host calls
    "print(node_count(), total(\"cpu\"), total(\"alloc\"), metrics());",
    "visit(fn(n) { print(n, name(n), file(n), line(n), value(n, \"cpu\")); });",
    "print(name(2), parent(2), children(1), module(0));",
    "print(value(0, \"nope\"));",
    "print(value(999, \"cpu\"));",
    "print(name(99));",
    "print(total(\"nope\"));",
    "add_metric(\"doubled\"); visit(fn(n) { set_value(n, \"doubled\", value(n, \"cpu\") * 2); }); print(total(\"doubled\"));",
    // derive / map_nodes / visit edges
    "derive(\"share\", fn(n) { return value(n, \"cpu\") / total(\"cpu\"); }); print(total(\"share\"));",
    "derive(\"bad\", fn(n) { if n == 2 { return \"x\" + 1; } return 1; }); print(\"unreached\");",
    "derive(\"bad\", fn(n) { return \"s\"; });",
    "visit(1);",
    "derive(\"m\", 2);",
    "map_nodes(nil);",
    "visit(fn() { return 1; });",
    "let v = map_nodes(fn(n) { return value(n, \"cpu\") * 2; }); print(v);",
    "map_nodes(fn(n) { print(n); return n; });",
    "fn deep(k) { let v = []; while k > 0 { v = [v]; k = k - 1; } return v; }\nlet v = map_nodes(fn(n) { return deep(70); });",
    "map_nodes(fn(n) { if n == 3 { return 1 / 0; } return n; });",
    "let k = 2; let v = map_nodes(fn(n) { return n * k; }); print(v);",
    "let v = map_nodes(fn(n) { return [name(n), value(n, \"cpu\")]; }); print(v);",
    // builtin shadowing
    "fn len(x) { return 99; } print(len([1, 2, 3]));",
    "let len = 5; print(len + 1);",
    "let str = 1; str(2);",
    "if node_count() > 100 { let len = 7; } print(len([1, 2]));",
    "if node_count() < 100 { let len = 7; } print(len);",
    "print(len);",
    // strings
    "let s = \"\"; for i in range(3) { s = s + str(i) + \",\"; } print(s);",
];

#[test]
fn handcrafted_corpus_is_engine_identical() {
    for src in CORPUS {
        assert_equivalent(src);
    }
}

// ---- step-limit identity -------------------------------------------

#[test]
fn step_limit_exhaustion_is_identical_under_small_budgets() {
    // Exhaustion inside every construct that charges steps: plain
    // statements, while iterations, for iterations, recursive calls,
    // and parallel-eligible callbacks (where the budget check must
    // force the inline fallback, not a divergent partial result).
    let programs = [
        "while true { }",
        "let i = 0; while i < 100000 { i = i + 1; }",
        "for i in range(100000) { let x = i * 2; }",
        "fn f(n) { if n == 0 { return 0; } return f(n - 1); } let i = 0; while true { f(60); i = i + 1; }",
        "map_nodes(fn(n) { let s = 0; for i in range(5000) { s = s + i; } return s; });",
        "let i = 0; while i < 1000 { i = i + 1; print(i); }",
    ];
    for src in &programs {
        for limit in [50u64, 100, 500, 5_000] {
            assert_equivalent_with_limit(src, limit);
        }
    }
}

#[test]
fn default_step_limit_exhaustion_is_identical() {
    // Regression for the unified accounting: a program that exhausts
    // DEFAULT_STEP_LIMIT must die with the same ScriptError at the same
    // step count (exactly limit + 1) in both engines.
    let src = "while true { }";
    let reference = exec(src, ScriptEngine::Reference, None, DEFAULT_STEP_LIMIT);
    let vm = exec(src, ScriptEngine::Bytecode, None, DEFAULT_STEP_LIMIT);
    let err_ref = reference.outcome.clone().unwrap_err();
    let err_vm = vm.outcome.clone().unwrap_err();
    assert_eq!(err_ref, err_vm);
    assert_eq!(err_vm.message, "step limit exceeded");
    assert_eq!(err_vm.line, 1);
    assert_eq!(reference.steps, DEFAULT_STEP_LIMIT + 1);
    assert_eq!(vm.steps, DEFAULT_STEP_LIMIT + 1);
}

// ---- generated programs --------------------------------------------
//
// A deterministic program generator: syntactically valid by
// construction, semantically unconstrained — runtime errors, step-limit
// exhaustion, and host mutations are all fair game, because the claim
// under test is *run identity*, not success.

struct Gen {
    rng: Rng,
    out: String,
    vars: Vec<String>,
    funcs: Vec<(String, usize)>,
    next_var: usize,
}

const STR_POOL: &[&str] = &["a", "b", "x,y", "hot", "cpu", ""];
const BIN_OPS: &[&str] = &["+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"];

impl Gen {
    fn new(rng: Rng) -> Gen {
        Gen {
            rng,
            out: String::new(),
            vars: Vec::new(),
            funcs: Vec::new(),
            next_var: 0,
        }
    }

    fn fresh_var(&mut self) -> String {
        let name = format!("v{}", self.next_var);
        self.next_var += 1;
        name
    }

    fn expr(&mut self, depth: usize) -> String {
        let leaf = depth == 0 || self.rng.gen_bool(0.3);
        if leaf {
            match self.rng.gen_range(0..10u32) {
                0 => format!("{}", self.rng.gen_range(-3i64..=10)),
                1 => format!("{}.5", self.rng.gen_range(0i64..=4)),
                2 => format!("{:?}", STR_POOL[self.rng.gen_range(0..STR_POOL.len())]),
                3 => (if self.rng.gen_bool(0.5) { "true" } else { "false" }).to_owned(),
                4 => "nil".to_owned(),
                5 => "node_count()".to_owned(),
                6 => "total(\"cpu\")".to_owned(),
                7 | 8 => {
                    if self.vars.is_empty() {
                        "0".to_owned()
                    } else {
                        self.vars[self.rng.gen_range(0..self.vars.len())].clone()
                    }
                }
                _ => {
                    // occasionally an undefined name, for the error path
                    if self.rng.gen_bool(0.3) {
                        "zz_undefined".to_owned()
                    } else {
                        "1".to_owned()
                    }
                }
            }
        } else {
            match self.rng.gen_range(0..12u32) {
                0..=3 => {
                    let op = BIN_OPS[self.rng.gen_range(0..BIN_OPS.len())];
                    format!("({} {} {})", self.expr(depth - 1), op, self.expr(depth - 1))
                }
                4 => format!("(-{})", self.expr(depth - 1)),
                5 => format!("(!{})", self.expr(depth - 1)),
                6 => format!("[{}, {}]", self.expr(depth - 1), self.expr(depth - 1)),
                7 => format!(
                    "[{}, {}][{}]",
                    self.expr(depth - 1),
                    self.expr(depth - 1),
                    self.expr(depth - 1)
                ),
                8 => {
                    let f = ["len", "str", "abs", "floor", "sqrt"]
                        [self.rng.gen_range(0..5usize)];
                    format!("{f}({})", self.expr(depth - 1))
                }
                9 => {
                    let f = ["min", "max"][self.rng.gen_range(0..2usize)];
                    format!("{f}({}, {})", self.expr(depth - 1), self.expr(depth - 1))
                }
                10 => match self.rng.gen_range(0..4u32) {
                    0 => format!("value({}, \"cpu\")", self.rng.gen_range(0i64..=7)),
                    1 => format!("name({})", self.rng.gen_range(0i64..=7)),
                    2 => format!("children({})", self.rng.gen_range(0i64..=7)),
                    _ => format!("parent({})", self.rng.gen_range(0i64..=7)),
                },
                _ => {
                    if self.funcs.is_empty() {
                        format!("str({})", self.expr(depth - 1))
                    } else {
                        let (name, arity) =
                            self.funcs[self.rng.gen_range(0..self.funcs.len())].clone();
                        // sometimes the wrong arity, for the error path
                        let argc = if self.rng.gen_bool(0.85) {
                            arity
                        } else {
                            self.rng.gen_range(0..=3usize)
                        };
                        let args: Vec<String> =
                            (0..argc).map(|_| self.expr(depth - 1)).collect();
                        format!("{name}({})", args.join(", "))
                    }
                }
            }
        }
    }

    /// A condition: usually comparison-shaped, sometimes arbitrary
    /// (exercising the non-bool-condition error on both engines).
    fn cond(&mut self, depth: usize) -> String {
        if self.rng.gen_bool(0.85) {
            let op = ["<", "<=", ">", ">=", "==", "!="][self.rng.gen_range(0..6usize)];
            format!("({} {} {})", self.expr(depth), op, self.expr(depth))
        } else {
            self.expr(depth)
        }
    }

    fn callback(&mut self) -> String {
        match self.rng.gen_range(0..4u32) {
            0 => "fn(n) { return value(n, \"cpu\") * 2; }".to_owned(),
            1 => format!("fn(n) {{ return (n + {}); }}", self.expr(1)),
            2 => "fn(n) { return [n, name(n)]; }".to_owned(),
            _ => format!("fn(n) {{ if (n > {}) {{ return n; }} return 0; }}", self.rng.gen_range(0i64..=5)),
        }
    }

    fn block(&mut self, depth: usize, in_loop: bool) {
        let n = self.rng.gen_range(1..=3usize);
        let vars_before = self.vars.len();
        for _ in 0..n {
            self.stmt(depth, in_loop);
        }
        // Names defined in a block stay live (two-level scoping), but
        // conditionally-defined names make generated programs mostly
        // die of "undefined variable" noise — keep later statements
        // referencing only unconditionally-defined names.
        self.vars.truncate(vars_before);
    }

    fn stmt(&mut self, depth: usize, in_loop: bool) {
        match self.rng.gen_range(0..20u32) {
            0..=3 => {
                let name = self.fresh_var();
                let init = self.expr(2);
                self.out.push_str(&format!("let {name} = {init};\n"));
                self.vars.push(name);
            }
            4 | 5 => {
                if let Some(name) = self.pick_var() {
                    let value = self.expr(2);
                    self.out.push_str(&format!("{name} = {value};\n"));
                }
            }
            6 | 7 => {
                let c = self.cond(1);
                self.out.push_str(&format!("if {c} {{\n"));
                if depth > 0 {
                    self.block(depth - 1, in_loop);
                }
                if self.rng.gen_bool(0.4) {
                    self.out.push_str("} else {\n");
                    if depth > 0 {
                        self.block(depth - 1, in_loop);
                    }
                }
                self.out.push_str("}\n");
            }
            8 | 9 => {
                let counter = self.fresh_var();
                let bound = self.rng.gen_range(0i64..=6);
                self.out
                    .push_str(&format!("let {counter} = 0;\nwhile {counter} < {bound} {{\n{counter} = {counter} + 1;\n"));
                if depth > 0 {
                    self.block(depth - 1, true);
                }
                self.out.push_str("}\n");
            }
            10 | 11 => {
                let var = self.fresh_var();
                let iter = match self.rng.gen_range(0..3u32) {
                    0 => format!("range({})", self.rng.gen_range(0i64..=5)),
                    1 => format!("[{}, {}]", self.expr(1), self.expr(1)),
                    _ => "children(0)".to_owned(),
                };
                self.out.push_str(&format!("for {var} in {iter} {{\n"));
                self.vars.push(var);
                if depth > 0 {
                    self.block(depth - 1, true);
                }
                self.vars.pop();
                self.out.push_str("}\n");
            }
            12 => {
                // break/continue — occasionally outside a loop, which
                // must error identically.
                if in_loop || self.rng.gen_bool(0.1) {
                    let kw = if self.rng.gen_bool(0.5) { "break" } else { "continue" };
                    self.out.push_str(&format!("{kw};\n"));
                }
            }
            13 | 14 => {
                let a = self.expr(2);
                let b = self.expr(1);
                self.out.push_str(&format!("print({a}, {b});\n"));
            }
            15 => {
                let cb = self.callback();
                self.out.push_str(&format!("visit({cb});\n"));
            }
            16 => {
                let cb = self.callback();
                let name = self.fresh_var();
                self.out
                    .push_str(&format!("let {name} = map_nodes({cb});\n"));
                self.vars.push(name);
            }
            17 => {
                let cb = self.callback();
                let metric = format!("m{}", self.rng.gen_range(0..3u32));
                self.out
                    .push_str(&format!("derive(\"{metric}\", {cb});\n"));
            }
            _ => {
                let e = self.expr(2);
                self.out.push_str(&format!("{e};\n"));
            }
        }
    }

    fn pick_var(&mut self) -> Option<String> {
        if self.vars.is_empty() {
            None
        } else {
            Some(self.vars[self.rng.gen_range(0..self.vars.len())].clone())
        }
    }

    fn fn_def(&mut self, i: usize) {
        let arity = self.rng.gen_range(0..=2usize);
        let params: Vec<String> = (0..arity).map(|p| format!("p{p}")).collect();
        let name = format!("fx{i}");
        self.out
            .push_str(&format!("fn {name}({}) {{\n", params.join(", ")));
        let saved = std::mem::replace(&mut self.vars, params);
        let body = self.rng.gen_range(1..=2usize);
        for _ in 0..body {
            self.stmt(1, false);
        }
        let ret = self.expr(1);
        self.out.push_str(&format!("return {ret};\n}}\n"));
        self.vars = saved;
        self.funcs.push((name, arity));
    }

    fn program(mut self) -> String {
        for i in 0..self.rng.gen_range(0..=2usize) {
            self.fn_def(i);
        }
        let n = self.rng.gen_range(2..=7usize);
        for _ in 0..n {
            self.stmt(2, false);
        }
        // Force every surviving binding into stdout so latent state
        // differences become output differences.
        let vars = self.vars.clone();
        for v in vars {
            self.out.push_str(&format!("print({v});\n"));
        }
        self.out
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

#[test]
fn generated_programs_are_engine_identical() {
    let seed = env_u64("EV_TEST_SEED").unwrap_or(0xE55C_21F7_0D1F_F00D);
    let cases = env_u64("EV_TEST_CASES").unwrap_or(300);
    let mut root = Rng::new(seed);
    for case in 0..cases {
        let src = Gen::new(root.split()).program();
        // A small budget keeps generated runaway loops cheap while
        // still exercising exhaustion on both engines.
        let reference = exec(&src, ScriptEngine::Reference, None, 20_000);
        let vm = exec(&src, ScriptEngine::Bytecode, None, 20_000);
        let header = format!(
            "generated case {case} (replay with EV_TEST_SEED={seed:#018x})"
        );
        compare(&format!("{header}, bytecode"), &src, &reference, &vm);
        for threads in [2usize, 8] {
            let par = exec(&src, ScriptEngine::Bytecode, Some(threads), 20_000);
            compare(
                &format!("{header}, bytecode {threads} threads"),
                &src,
                &reference,
                &par,
            );
        }
    }
}

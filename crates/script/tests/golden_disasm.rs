//! Pinned bytecode disassembly for three representative scripts.
//!
//! These goldens freeze the compiler's output shape — op selection,
//! step coalescing, slot assignment, and constant interning. A diff
//! here means codegen changed: if intentional, regenerate with
//! `EV_UPDATE_GOLDEN=1 cargo test -p ev-script --test golden_disasm`
//! and review the new listing like any other code change.

use ev_script::disassemble_source;
use std::path::PathBuf;

const SCRIPTS: &[(&str, &str)] = &[
    // The paper's hot-node example: interned constants, a visit
    // callback, and global/local slot resolution.
    (
        "hot_threshold",
        r#"let threshold = total("cpu") * 0.01;
let hot = 0;
visit(fn(n) {
    if value(n, "cpu") > threshold { hot = hot + 1; }
});
print("hot nodes:", hot);
"#,
    ),
    // Loops and functions: step batching across straight-line code,
    // back edges sealing the batches, break/continue patching.
    (
        "control_flow",
        r#"fn clamp(v, lo, hi) {
    if v < lo { return lo; }
    if v > hi { return hi; }
    return v;
}
let sum = 0;
for i in range(10) {
    if i % 2 == 0 { continue; }
    if i > 6 { break; }
    sum = sum + clamp(i, 1, 5);
}
while sum > 0 { sum = sum - 3; }
"#,
    ),
    // Host callbacks and flexible builtin dispatch: derive/map_nodes
    // (never definable, direct CallBuiltin) against a shadowed `len`
    // (FlexEnter/FlexCall runtime dispatch).
    (
        "derive_map",
        r#"fn len(x) { return 99; }
derive("cpi", fn(n) {
    let i = value(n, "instructions");
    if i == 0 { return 0; }
    return value(n, "cycles") / i;
});
let sizes = map_nodes(fn(n) { return len(children(n)); });
print(sizes);
"#,
    ),
];

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.disasm"))
}

#[test]
fn disassembly_matches_golden_fixtures() {
    let update = std::env::var("EV_UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0");
    for (name, source) in SCRIPTS {
        let listing = disassemble_source(source)
            .expect("fixture script must parse")
            .expect("fixture script must fit the bytecode's static tables");
        let path = fixture_path(name);
        if update {
            std::fs::write(&path, &listing).expect("write golden");
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        assert_eq!(
            listing,
            want,
            "disassembly of {name} drifted from {}",
            path.display()
        );
    }
}

//! Hand-rolled argument parsing (no dependencies), fully unit-tested.

use crate::CliError;

/// The flame-graph/table shape to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Shape {
    /// Callers above callees (the default).
    #[default]
    TopDown,
    /// Hot leaves first, callers below.
    BottomUp,
    /// Module → file → function.
    Flat,
}

/// Options shared by the analysis commands.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Metric name; `None` = the profile's first metric.
    pub metric: Option<String>,
    /// View shape.
    pub shape: Shape,
    /// ANSI width in columns.
    pub width: usize,
    /// Tree-table expansion depth.
    pub depth: usize,
    /// Optional SVG output path.
    pub svg: Option<String>,
    /// Force colors.
    pub color: bool,
    /// Prune threshold (fraction of total).
    pub threshold: f64,
    /// Worker threads for the analysis engine; 0 = all hardware
    /// threads, 1 = sequential.
    pub threads: usize,
    /// Print view-cache hit/miss counters after the command.
    pub cache_stats: bool,
    /// Machine-readable JSON output (`stats --json`): the full metrics
    /// registry as one JSON document instead of the text dump.
    pub json: bool,
    /// Force the bounded-memory streaming ingest path regardless of
    /// input size (`--stream`). Off by default: small inputs auto-route
    /// to the buffered decoder, GB-scale gzip'd pprof streams anyway.
    pub stream: bool,
    /// Streaming chunk size in bytes (`--chunk-size`); `None` = the
    /// flate default. Only meaningful with [`Options::stream`].
    pub chunk_size: Option<usize>,
    /// EVscript file to run inside `stats`' traced window
    /// (`stats <profile> --script <file.evs>`), so the script-engine
    /// counters (`script.vm_ops`, `script.chunks_compiled`,
    /// `script.par_visits`) appear in the metrics dump.
    pub script: Option<String>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            metric: None,
            shape: Shape::TopDown,
            width: 100,
            depth: 4,
            svg: None,
            color: false,
            threshold: 0.0,
            threads: 0,
            cache_stats: false,
            json: false,
            stream: false,
            chunk_size: None,
            script: None,
        }
    }
}

/// Export format for `--trace-out`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// EasyView's own profile format (render it with `easyview flame`).
    #[default]
    EasyView,
    /// Chrome trace-event JSON (open in `chrome://tracing` / Perfetto).
    Chrome,
}

/// Self-profiling options shared by every command.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceOptions {
    /// Where to write the recorded trace; `None` = tracing disabled.
    pub out: Option<String>,
    /// Export format for the trace file.
    pub format: TraceFormat,
}

/// A fully parsed command line: the command plus cross-cutting
/// self-profiling options.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The command to run.
    pub command: Command,
    /// `--trace-out` / `--trace-format`.
    pub trace: TraceOptions,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `easyview help`.
    Help,
    /// `easyview info <profile>`.
    Info { input: String },
    /// `easyview view <profile>` (alias: `flame`).
    View { input: String, options: Options },
    /// `easyview table <profile>`.
    Table { input: String, options: Options },
    /// `easyview diff <before> <after>`.
    Diff {
        before: String,
        after: String,
        options: Options,
    },
    /// `easyview aggregate <profile>...`.
    Aggregate {
        inputs: Vec<String>,
        options: Options,
    },
    /// `easyview search <profile> <query>`.
    Search { input: String, query: String },
    /// `easyview script <profile> <file.evs>`.
    Script {
        input: String,
        script: String,
        options: Options,
    },
    /// `easyview convert <input> <output>`.
    Convert { input: String, output: String },
    /// `easyview stats [profile]` — run a view if a profile is given,
    /// then print the process metrics (view cache, pipeline counters).
    Stats {
        input: Option<String>,
        options: Options,
    },
    /// `easyview serve-smoke [--threads N]` — replay deterministic
    /// editor sessions against one shared in-process EVP server and
    /// print per-session response digests (thread-count invariant).
    ServeSmoke { options: Options },
}

/// Parses `argv` (without the program name), dropping the cross-cutting
/// trace options. Kept for callers that predate [`parse_cli`].
///
/// # Errors
///
/// Returns a formatted message on unknown commands/flags, missing
/// operands, or unparsable flag values.
pub fn parse_args(argv: &[String]) -> Result<Command, CliError> {
    parse_cli(argv).map(|cli| cli.command)
}

/// Parses `argv` (without the program name).
///
/// # Errors
///
/// Returns a formatted message on unknown commands/flags, missing
/// operands, or unparsable flag values.
pub fn parse_cli(argv: &[String]) -> Result<Cli, CliError> {
    let mut positional: Vec<String> = Vec::new();
    let mut options = Options::default();
    let mut trace = TraceOptions::default();
    let mut iter = argv.iter().peekable();

    let command = match iter.next() {
        None => {
            return Ok(Cli {
                command: Command::Help,
                trace,
            })
        }
        Some(c) => c.clone(),
    };
    if command == "help" || command == "--help" || command == "-h" {
        return Ok(Cli {
            command: Command::Help,
            trace,
        });
    }

    let take_value = |iter: &mut std::iter::Peekable<std::slice::Iter<String>>,
                          flag: &str|
     -> Result<String, CliError> {
        iter.next()
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} requires a value")))
    };

    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--metric" => options.metric = Some(take_value(&mut iter, "--metric")?),
            "--shape" => {
                options.shape = match take_value(&mut iter, "--shape")?.as_str() {
                    "topdown" => Shape::TopDown,
                    "bottomup" => Shape::BottomUp,
                    "flat" => Shape::Flat,
                    other => {
                        return Err(CliError(format!(
                            "unknown shape {other:?} (topdown|bottomup|flat)"
                        )))
                    }
                }
            }
            "--width" => {
                options.width = take_value(&mut iter, "--width")?
                    .parse()
                    .map_err(|_| CliError("--width expects an integer".to_owned()))?;
                if options.width < 8 {
                    return Err(CliError("--width must be at least 8".to_owned()));
                }
            }
            "--depth" => {
                options.depth = take_value(&mut iter, "--depth")?
                    .parse()
                    .map_err(|_| CliError("--depth expects an integer".to_owned()))?;
            }
            "--svg" => options.svg = Some(take_value(&mut iter, "--svg")?),
            "--color" => options.color = true,
            "--threshold" => {
                options.threshold = take_value(&mut iter, "--threshold")?
                    .parse()
                    .map_err(|_| CliError("--threshold expects a number".to_owned()))?;
                if !(0.0..=1.0).contains(&options.threshold) {
                    return Err(CliError("--threshold must be in [0, 1]".to_owned()));
                }
            }
            "--threads" => {
                options.threads = take_value(&mut iter, "--threads")?
                    .parse()
                    .map_err(|_| CliError("--threads expects an integer".to_owned()))?;
                if options.threads > 1024 {
                    return Err(CliError("--threads must be at most 1024".to_owned()));
                }
            }
            "--script" => options.script = Some(take_value(&mut iter, "--script")?),
            "--cache-stats" => options.cache_stats = true,
            "--json" => options.json = true,
            "--stream" => options.stream = true,
            "--chunk-size" => {
                let chunk: usize = take_value(&mut iter, "--chunk-size")?
                    .parse()
                    .map_err(|_| CliError("--chunk-size expects an integer".to_owned()))?;
                if chunk == 0 {
                    return Err(CliError("--chunk-size must be at least 1".to_owned()));
                }
                options.chunk_size = Some(chunk);
            }
            "--trace-out" => trace.out = Some(take_value(&mut iter, "--trace-out")?),
            "--trace-format" => {
                trace.format = match take_value(&mut iter, "--trace-format")?.as_str() {
                    "easyview" => TraceFormat::EasyView,
                    "chrome" => TraceFormat::Chrome,
                    other => {
                        return Err(CliError(format!(
                            "unknown trace format {other:?} (easyview|chrome)"
                        )))
                    }
                }
            }
            flag if flag.starts_with("--") => {
                return Err(CliError(format!("unknown option {flag}")))
            }
            _ => positional.push(arg.clone()),
        }
    }

    if options.chunk_size.is_some() && !options.stream {
        return Err(CliError("--chunk-size requires --stream".to_owned()));
    }

    let need = |n: usize| -> Result<(), CliError> {
        if positional.len() != n {
            Err(CliError(format!(
                "{command} expects {n} argument(s), got {}",
                positional.len()
            )))
        } else {
            Ok(())
        }
    };

    let parsed = match command.as_str() {
        "info" => {
            need(1)?;
            Command::Info {
                input: positional.remove(0),
            }
        }
        "view" | "flame" => {
            need(1)?;
            Command::View {
                input: positional.remove(0),
                options,
            }
        }
        "table" => {
            need(1)?;
            Command::Table {
                input: positional.remove(0),
                options,
            }
        }
        "diff" => {
            need(2)?;
            let before = positional.remove(0);
            let after = positional.remove(0);
            Command::Diff {
                before,
                after,
                options,
            }
        }
        "aggregate" => {
            if positional.is_empty() {
                return Err(CliError("aggregate expects at least one profile".to_owned()));
            }
            Command::Aggregate {
                inputs: positional,
                options,
            }
        }
        "search" => {
            need(2)?;
            let input = positional.remove(0);
            let query = positional.remove(0);
            Command::Search { input, query }
        }
        "script" => {
            need(2)?;
            let input = positional.remove(0);
            let script = positional.remove(0);
            Command::Script {
                input,
                script,
                options,
            }
        }
        "convert" => {
            need(2)?;
            let input = positional.remove(0);
            let output = positional.remove(0);
            Command::Convert { input, output }
        }
        "serve-smoke" => {
            need(0)?;
            Command::ServeSmoke { options }
        }
        "stats" => {
            if positional.len() > 1 {
                return Err(CliError(format!(
                    "stats expects at most 1 argument, got {}",
                    positional.len()
                )));
            }
            Command::Stats {
                input: positional.pop(),
                options,
            }
        }
        other => {
            return Err(CliError(format!(
                "unknown command {other:?} (try `easyview help`)"
            )))
        }
    };
    Ok(Cli {
        command: parsed,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, CliError> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&argv)
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn view_with_options() {
        let cmd = parse(&[
            "view", "p.pprof", "--metric", "cpu", "--shape", "bottomup", "--width", "80",
            "--svg", "out.svg", "--color", "--threshold", "0.01",
        ])
        .unwrap();
        let Command::View { input, options } = cmd else { panic!() };
        assert_eq!(input, "p.pprof");
        assert_eq!(options.metric.as_deref(), Some("cpu"));
        assert_eq!(options.shape, Shape::BottomUp);
        assert_eq!(options.width, 80);
        assert_eq!(options.svg.as_deref(), Some("out.svg"));
        assert!(options.color);
        assert_eq!(options.threshold, 0.01);
    }

    #[test]
    fn options_may_interleave_positionals() {
        let cmd = parse(&["diff", "--metric", "cpu", "a.pprof", "b.pprof"]).unwrap();
        let Command::Diff { before, after, options } = cmd else { panic!() };
        assert_eq!(before, "a.pprof");
        assert_eq!(after, "b.pprof");
        assert_eq!(options.metric.as_deref(), Some("cpu"));
    }

    #[test]
    fn aggregate_takes_many_inputs() {
        let cmd = parse(&["aggregate", "a", "b", "c", "--metric", "inuse"]).unwrap();
        let Command::Aggregate { inputs, .. } = cmd else { panic!() };
        assert_eq!(inputs, ["a", "b", "c"]);
    }

    #[test]
    fn arity_errors() {
        assert!(parse(&["info"]).is_err());
        assert!(parse(&["view", "a", "b"]).is_err());
        assert!(parse(&["diff", "only-one"]).is_err());
        assert!(parse(&["aggregate"]).is_err());
        assert!(parse(&["search", "p"]).is_err());
        assert!(parse(&["convert", "in"]).is_err());
    }

    #[test]
    fn threads_and_cache_stats_flags() {
        let cmd = parse(&["view", "p", "--threads", "4", "--cache-stats"]).unwrap();
        let Command::View { options, .. } = cmd else { panic!() };
        assert_eq!(options.threads, 4);
        assert!(options.cache_stats);
        // Defaults: auto parallelism, no stats.
        let cmd = parse(&["view", "p"]).unwrap();
        let Command::View { options, .. } = cmd else { panic!() };
        assert_eq!(options.threads, 0);
        assert!(!options.cache_stats);
        assert!(parse(&["view", "p", "--threads", "many"]).is_err());
        assert!(parse(&["view", "p", "--threads", "9999"]).is_err());
    }

    #[test]
    fn stream_flags_parse() {
        let cmd = parse(&["stats", "p", "--stream"]).unwrap();
        let Command::Stats { options, .. } = cmd else { panic!() };
        assert!(options.stream);
        assert_eq!(options.chunk_size, None);

        let cmd = parse(&["view", "p", "--stream", "--chunk-size", "4096"]).unwrap();
        let Command::View { options, .. } = cmd else { panic!() };
        assert!(options.stream);
        assert_eq!(options.chunk_size, Some(4096));

        // Defaults: buffered auto-routing.
        let cmd = parse(&["view", "p"]).unwrap();
        let Command::View { options, .. } = cmd else { panic!() };
        assert!(!options.stream);
        assert_eq!(options.chunk_size, None);

        assert!(parse(&["view", "p", "--chunk-size", "4096"]).is_err());
        assert!(parse(&["view", "p", "--stream", "--chunk-size", "0"]).is_err());
        assert!(parse(&["view", "p", "--stream", "--chunk-size", "lots"]).is_err());
    }

    #[test]
    fn flame_is_a_view_alias() {
        assert_eq!(parse(&["flame", "p"]).unwrap(), parse(&["view", "p"]).unwrap());
    }

    #[test]
    fn trace_flags_parse() {
        let argv: Vec<String> = ["flame", "p", "--trace-out", "self.evpf"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cli = parse_cli(&argv).unwrap();
        assert_eq!(cli.trace.out.as_deref(), Some("self.evpf"));
        assert_eq!(cli.trace.format, TraceFormat::EasyView);

        let argv: Vec<String> = ["view", "p", "--trace-out", "t.json", "--trace-format", "chrome"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cli = parse_cli(&argv).unwrap();
        assert_eq!(cli.trace.format, TraceFormat::Chrome);

        assert!(parse(&["view", "p", "--trace-out"]).is_err());
        assert!(parse(&["view", "p", "--trace-format", "svg"]).is_err());
    }

    #[test]
    fn stats_takes_optional_profile() {
        assert_eq!(
            parse(&["stats"]).unwrap(),
            Command::Stats {
                input: None,
                options: Options::default()
            }
        );
        let cmd = parse(&["stats", "p.evpf", "--threads", "2"]).unwrap();
        let Command::Stats { input, options } = cmd else { panic!() };
        assert_eq!(input.as_deref(), Some("p.evpf"));
        assert_eq!(options.threads, 2);
        assert!(parse(&["stats", "a", "b"]).is_err());
    }

    #[test]
    fn stats_script_flag() {
        let cmd = parse(&["stats", "p.pprof", "--script", "a.evs"]).unwrap();
        let Command::Stats { input, options } = cmd else { panic!() };
        assert_eq!(input.as_deref(), Some("p.pprof"));
        assert_eq!(options.script.as_deref(), Some("a.evs"));
        assert!(parse(&["stats", "p.pprof", "--script"]).is_err());
    }

    #[test]
    fn script_takes_threads() {
        let cmd = parse(&["script", "p.pprof", "a.evs", "--threads", "2"]).unwrap();
        let Command::Script {
            input,
            script,
            options,
        } = cmd
        else {
            panic!()
        };
        assert_eq!(input, "p.pprof");
        assert_eq!(script, "a.evs");
        assert_eq!(options.threads, 2);
    }

    #[test]
    fn serve_smoke_parses() {
        let cmd = parse(&["serve-smoke", "--threads", "8"]).unwrap();
        let Command::ServeSmoke { options } = cmd else { panic!() };
        assert_eq!(options.threads, 8);
        let cmd = parse(&["serve-smoke"]).unwrap();
        let Command::ServeSmoke { options } = cmd else { panic!() };
        assert_eq!(options.threads, 0);
        assert!(parse(&["serve-smoke", "extra"]).is_err());
    }

    #[test]
    fn stats_json_flag() {
        let cmd = parse(&["stats", "--json"]).unwrap();
        let Command::Stats { input, options } = cmd else { panic!() };
        assert_eq!(input, None);
        assert!(options.json);
        // Default stays the human-readable dump.
        let Command::Stats { options, .. } = parse(&["stats"]).unwrap() else { panic!() };
        assert!(!options.json);
    }

    #[test]
    fn flag_errors() {
        assert!(parse(&["view", "p", "--metric"]).is_err());
        assert!(parse(&["view", "p", "--shape", "sideways"]).is_err());
        assert!(parse(&["view", "p", "--width", "four"]).is_err());
        assert!(parse(&["view", "p", "--width", "2"]).is_err());
        assert!(parse(&["view", "p", "--threshold", "2.0"]).is_err());
        assert!(parse(&["view", "p", "--bogus"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
    }
}

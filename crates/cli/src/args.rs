//! Hand-rolled argument parsing (no dependencies), fully unit-tested.

use crate::CliError;

/// The flame-graph/table shape to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Shape {
    /// Callers above callees (the default).
    #[default]
    TopDown,
    /// Hot leaves first, callers below.
    BottomUp,
    /// Module → file → function.
    Flat,
}

/// Options shared by the analysis commands.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Metric name; `None` = the profile's first metric.
    pub metric: Option<String>,
    /// View shape.
    pub shape: Shape,
    /// ANSI width in columns.
    pub width: usize,
    /// Tree-table expansion depth.
    pub depth: usize,
    /// Optional SVG output path.
    pub svg: Option<String>,
    /// Force colors.
    pub color: bool,
    /// Prune threshold (fraction of total).
    pub threshold: f64,
    /// Worker threads for the analysis engine; 0 = all hardware
    /// threads, 1 = sequential.
    pub threads: usize,
    /// Print view-cache hit/miss counters after the command.
    pub cache_stats: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            metric: None,
            shape: Shape::TopDown,
            width: 100,
            depth: 4,
            svg: None,
            color: false,
            threshold: 0.0,
            threads: 0,
            cache_stats: false,
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `easyview help`.
    Help,
    /// `easyview info <profile>`.
    Info { input: String },
    /// `easyview view <profile>`.
    View { input: String, options: Options },
    /// `easyview table <profile>`.
    Table { input: String, options: Options },
    /// `easyview diff <before> <after>`.
    Diff {
        before: String,
        after: String,
        options: Options,
    },
    /// `easyview aggregate <profile>...`.
    Aggregate {
        inputs: Vec<String>,
        options: Options,
    },
    /// `easyview search <profile> <query>`.
    Search { input: String, query: String },
    /// `easyview script <profile> <file.evs>`.
    Script { input: String, script: String },
    /// `easyview convert <input> <output>`.
    Convert { input: String, output: String },
}

/// Parses `argv` (without the program name).
///
/// # Errors
///
/// Returns a formatted message on unknown commands/flags, missing
/// operands, or unparsable flag values.
pub fn parse_args(argv: &[String]) -> Result<Command, CliError> {
    let mut positional: Vec<String> = Vec::new();
    let mut options = Options::default();
    let mut iter = argv.iter().peekable();

    let command = match iter.next() {
        None => return Ok(Command::Help),
        Some(c) => c.clone(),
    };
    if command == "help" || command == "--help" || command == "-h" {
        return Ok(Command::Help);
    }

    let take_value = |iter: &mut std::iter::Peekable<std::slice::Iter<String>>,
                          flag: &str|
     -> Result<String, CliError> {
        iter.next()
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} requires a value")))
    };

    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--metric" => options.metric = Some(take_value(&mut iter, "--metric")?),
            "--shape" => {
                options.shape = match take_value(&mut iter, "--shape")?.as_str() {
                    "topdown" => Shape::TopDown,
                    "bottomup" => Shape::BottomUp,
                    "flat" => Shape::Flat,
                    other => {
                        return Err(CliError(format!(
                            "unknown shape {other:?} (topdown|bottomup|flat)"
                        )))
                    }
                }
            }
            "--width" => {
                options.width = take_value(&mut iter, "--width")?
                    .parse()
                    .map_err(|_| CliError("--width expects an integer".to_owned()))?;
                if options.width < 8 {
                    return Err(CliError("--width must be at least 8".to_owned()));
                }
            }
            "--depth" => {
                options.depth = take_value(&mut iter, "--depth")?
                    .parse()
                    .map_err(|_| CliError("--depth expects an integer".to_owned()))?;
            }
            "--svg" => options.svg = Some(take_value(&mut iter, "--svg")?),
            "--color" => options.color = true,
            "--threshold" => {
                options.threshold = take_value(&mut iter, "--threshold")?
                    .parse()
                    .map_err(|_| CliError("--threshold expects a number".to_owned()))?;
                if !(0.0..=1.0).contains(&options.threshold) {
                    return Err(CliError("--threshold must be in [0, 1]".to_owned()));
                }
            }
            "--threads" => {
                options.threads = take_value(&mut iter, "--threads")?
                    .parse()
                    .map_err(|_| CliError("--threads expects an integer".to_owned()))?;
                if options.threads > 1024 {
                    return Err(CliError("--threads must be at most 1024".to_owned()));
                }
            }
            "--cache-stats" => options.cache_stats = true,
            flag if flag.starts_with("--") => {
                return Err(CliError(format!("unknown option {flag}")))
            }
            _ => positional.push(arg.clone()),
        }
    }

    let need = |n: usize| -> Result<(), CliError> {
        if positional.len() != n {
            Err(CliError(format!(
                "{command} expects {n} argument(s), got {}",
                positional.len()
            )))
        } else {
            Ok(())
        }
    };

    match command.as_str() {
        "info" => {
            need(1)?;
            Ok(Command::Info {
                input: positional.remove(0),
            })
        }
        "view" => {
            need(1)?;
            Ok(Command::View {
                input: positional.remove(0),
                options,
            })
        }
        "table" => {
            need(1)?;
            Ok(Command::Table {
                input: positional.remove(0),
                options,
            })
        }
        "diff" => {
            need(2)?;
            let before = positional.remove(0);
            let after = positional.remove(0);
            Ok(Command::Diff {
                before,
                after,
                options,
            })
        }
        "aggregate" => {
            if positional.is_empty() {
                return Err(CliError("aggregate expects at least one profile".to_owned()));
            }
            Ok(Command::Aggregate {
                inputs: positional,
                options,
            })
        }
        "search" => {
            need(2)?;
            let input = positional.remove(0);
            let query = positional.remove(0);
            Ok(Command::Search { input, query })
        }
        "script" => {
            need(2)?;
            let input = positional.remove(0);
            let script = positional.remove(0);
            Ok(Command::Script { input, script })
        }
        "convert" => {
            need(2)?;
            let input = positional.remove(0);
            let output = positional.remove(0);
            Ok(Command::Convert { input, output })
        }
        other => Err(CliError(format!(
            "unknown command {other:?} (try `easyview help`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, CliError> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&argv)
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn view_with_options() {
        let cmd = parse(&[
            "view", "p.pprof", "--metric", "cpu", "--shape", "bottomup", "--width", "80",
            "--svg", "out.svg", "--color", "--threshold", "0.01",
        ])
        .unwrap();
        let Command::View { input, options } = cmd else { panic!() };
        assert_eq!(input, "p.pprof");
        assert_eq!(options.metric.as_deref(), Some("cpu"));
        assert_eq!(options.shape, Shape::BottomUp);
        assert_eq!(options.width, 80);
        assert_eq!(options.svg.as_deref(), Some("out.svg"));
        assert!(options.color);
        assert_eq!(options.threshold, 0.01);
    }

    #[test]
    fn options_may_interleave_positionals() {
        let cmd = parse(&["diff", "--metric", "cpu", "a.pprof", "b.pprof"]).unwrap();
        let Command::Diff { before, after, options } = cmd else { panic!() };
        assert_eq!(before, "a.pprof");
        assert_eq!(after, "b.pprof");
        assert_eq!(options.metric.as_deref(), Some("cpu"));
    }

    #[test]
    fn aggregate_takes_many_inputs() {
        let cmd = parse(&["aggregate", "a", "b", "c", "--metric", "inuse"]).unwrap();
        let Command::Aggregate { inputs, .. } = cmd else { panic!() };
        assert_eq!(inputs, ["a", "b", "c"]);
    }

    #[test]
    fn arity_errors() {
        assert!(parse(&["info"]).is_err());
        assert!(parse(&["view", "a", "b"]).is_err());
        assert!(parse(&["diff", "only-one"]).is_err());
        assert!(parse(&["aggregate"]).is_err());
        assert!(parse(&["search", "p"]).is_err());
        assert!(parse(&["convert", "in"]).is_err());
    }

    #[test]
    fn threads_and_cache_stats_flags() {
        let cmd = parse(&["view", "p", "--threads", "4", "--cache-stats"]).unwrap();
        let Command::View { options, .. } = cmd else { panic!() };
        assert_eq!(options.threads, 4);
        assert!(options.cache_stats);
        // Defaults: auto parallelism, no stats.
        let cmd = parse(&["view", "p"]).unwrap();
        let Command::View { options, .. } = cmd else { panic!() };
        assert_eq!(options.threads, 0);
        assert!(!options.cache_stats);
        assert!(parse(&["view", "p", "--threads", "many"]).is_err());
        assert!(parse(&["view", "p", "--threads", "9999"]).is_err());
    }

    #[test]
    fn flag_errors() {
        assert!(parse(&["view", "p", "--metric"]).is_err());
        assert!(parse(&["view", "p", "--shape", "sideways"]).is_err());
        assert!(parse(&["view", "p", "--width", "four"]).is_err());
        assert!(parse(&["view", "p", "--width", "2"]).is_err());
        assert!(parse(&["view", "p", "--threshold", "2.0"]).is_err());
        assert!(parse(&["view", "p", "--bogus"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
    }
}

//! The `easyview` binary: parse arguments, run the command, print.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cli = match ev_cli::parse_cli(&argv) {
        Ok(cli) => cli,
        Err(err) => {
            eprintln!("easyview: {err}");
            eprintln!("try `easyview help`");
            return ExitCode::from(2);
        }
    };
    match ev_cli::run_cli(cli) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("easyview: {err}");
            ExitCode::FAILURE
        }
    }
}

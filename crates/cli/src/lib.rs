//! `ev-cli` — the `easyview` command-line driver.
//!
//! The paper ships EasyView as a VSCode extension; this crate is the
//! equivalent for terminal users and scripts, driving the same library
//! stack (converters → analysis → views) from the shell:
//!
//! ```text
//! easyview info      <profile>                      # floating-window summary
//! easyview view      <profile> [options]            # flame graph (ANSI/SVG)
//! easyview flame     <profile> [options]            # alias of view
//! easyview stats     [profile] [options]            # process metrics dump
//! easyview table     <profile> [options]            # tree table
//! easyview diff      <before> <after> [options]     # differential view
//! easyview aggregate <profile>... --metric M        # multi-profile analysis
//! easyview search    <profile> <query>              # find frames
//! easyview script    <profile> <script.evs>         # run EVscript
//! easyview convert   <in> <out>                     # transcode formats
//! ```
//!
//! All commands auto-detect the input format ([`ev_formats::detect`]).
//! The crate keeps command logic in a library so every code path is unit
//! tested; the binary is a thin `main`.

mod args;
mod commands;

pub use args::{parse_args, parse_cli, Cli, Command, Options, Shape, TraceFormat, TraceOptions};
pub use commands::{run, run_cli};

use std::error::Error;
use std::fmt;

/// A user-facing CLI error (already formatted for display).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> CliError {
        CliError(s)
    }
}

impl From<&str> for CliError {
    fn from(s: &str) -> CliError {
        CliError(s.to_owned())
    }
}

/// The usage text printed by `easyview help`.
pub const USAGE: &str = "\
easyview — performance profiles in your terminal

USAGE:
    easyview <command> [arguments] [options]

COMMANDS:
    info      <profile>                 summary: metrics, totals, hotspots
    view      <profile>                 render a flame graph (alias: flame)
    table     <profile>                 render a tree table
    diff      <before> <after>          differential view with [A]/[D]/[+]/[-] tags
    aggregate <profile>...              merge profiles; classify timelines
    search    <profile> <query>         find frames by name
    script    <profile> <file.evs>      run an EVscript customization
    convert   <input> <output>          transcode (by output extension:
                                        .evpf native, .pprof, .folded)
    stats     [profile]                 process metrics: view-cache counters
                                        and every pipeline counter/histogram
                                        (runs one view first when a profile
                                        is given)
    serve-smoke                         replay deterministic editor sessions
                                        against one shared in-process EVP
                                        server (--threads N workers) and
                                        print per-session response digests
    help                                this text

OPTIONS:
    --metric <name>     metric to analyze (default: the first one)
    --shape <s>         topdown | bottomup | flat   (default topdown)
    --width <cols>      terminal width for ANSI output (default 100)
    --depth <n>         tree-table expansion depth (default 4)
    --svg <path>        also write an SVG rendering
    --color             force ANSI colors on
    --threshold <f>     prune subtrees below this fraction (default 0)
    --threads <n>       analysis worker threads (default 0 = all cores,
                        1 = sequential; results are identical either way)
    --cache-stats       print view-cache hit/miss counters
                        (deprecated: use `easyview stats`)
    --json              stats only: emit one machine-readable JSON
                        document (schema easyview-stats/v1) with every
                        counter and histogram p50/p90/p95/p99
    --script <file.evs> stats only: run an EVscript inside the traced
                        window so the script-engine counters
                        (script.vm_ops, script.chunks_compiled,
                        script.par_visits) land in the dump
    --stream            force bounded-memory streaming ingest (GB-scale
                        gzip'd pprof streams automatically; output is
                        identical either way)
    --chunk-size <n>    streaming chunk size in bytes (requires --stream;
                        default 262144)
    --trace-out <path>  self-profile this command with ev-trace and write
                        the recording to <path>
    --trace-format <f>  easyview (default; render with `easyview flame`)
                        | chrome (trace-event JSON for chrome://tracing)
";

//! Command implementations. All return their output as a `String` so
//! they are testable without capturing stdout.

use crate::args::{Cli, Command, Options, Shape, TraceFormat};
use crate::{CliError, USAGE};
use ev_analysis::{
    aggregate_with, classify_timeline, diff_with, view_key, ExecPolicy, MetricView, ViewCache,
};
use ev_core::{MetricId, Profile};
use ev_flame::{render, DiffFlameGraph, FlameGraph, Histogram, TreeTable};
use ev_script::ScriptHost;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

/// The process-wide memoized flame-graph cache: repeated identical view
/// requests (same profile content, metric, shape, threshold) skip the
/// layout entirely.
fn view_cache() -> &'static Mutex<ViewCache<FlameGraph>> {
    static CACHE: OnceLock<Mutex<ViewCache<FlameGraph>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(ViewCache::default()))
}

fn policy(options: &Options) -> ExecPolicy {
    if options.threads == 0 {
        ExecPolicy::auto()
    } else {
        ExecPolicy::with_threads(options.threads)
    }
}

/// `--stream` maps to a forced streaming-ingest chunk size; `None`
/// keeps the size-based auto routing.
fn stream_request(options: &Options) -> Option<usize> {
    if options.stream {
        Some(options.chunk_size.unwrap_or(ev_formats::DEFAULT_CHUNK_SIZE))
    } else {
        None
    }
}

fn cache_stats_line(out: &mut String) {
    let stats = view_cache().lock().unwrap().stats();
    let _ = writeln!(
        out,
        "view-cache: {} hit(s), {} miss(es), {}/{} resident",
        stats.hits, stats.misses, stats.len, stats.capacity
    );
}

/// Executes a parsed command, returning the text to print.
///
/// # Errors
///
/// Returns a user-facing message on I/O, format, or analysis errors.
pub fn run(command: Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_owned()),
        Command::Info { input } => info(&input),
        Command::View { input, options } => view(&input, &options),
        Command::Table { input, options } => table(&input, &options),
        Command::Diff {
            before,
            after,
            options,
        } => diff_cmd(&before, &after, &options),
        Command::Aggregate { inputs, options } => aggregate_cmd(&inputs, &options),
        Command::Search { input, query } => search(&input, &query),
        Command::Script {
            input,
            script,
            options,
        } => script_cmd(&input, &script, &options),
        Command::Convert { input, output } => convert(&input, &output),
        Command::Stats { input, options } => stats_cmd(input.as_deref(), &options),
        Command::ServeSmoke { options } => serve_smoke(&options),
    }
}

/// Executes a parsed command line, honoring the self-profiling options:
/// with `--trace-out`, span recording is enabled for the duration of
/// the command and the recording is written to the requested path in
/// the requested format.
///
/// # Errors
///
/// Returns a user-facing message on I/O, format, or analysis errors.
pub fn run_cli(cli: Cli) -> Result<String, CliError> {
    let Some(trace_path) = cli.trace.out.clone() else {
        return run(cli.command);
    };
    ev_trace::set_enabled(true);
    let _ = ev_trace::take_spans(); // drop spans recorded before this command
    let result = run(cli.command);
    let spans = ev_trace::take_spans();
    ev_trace::set_enabled(false);
    let mut out = result?;
    let bytes: Vec<u8> = match cli.trace.format {
        TraceFormat::EasyView => {
            ev_core::format::to_bytes(&ev_formats::trace::self_profile(&spans))
        }
        TraceFormat::Chrome => ev_formats::trace::chrome_trace_json(&spans).into_bytes(),
    };
    std::fs::write(&trace_path, &bytes)
        .map_err(|e| CliError(format!("cannot write {trace_path}: {e}")))?;
    let _ = writeln!(out, "wrote trace {trace_path} ({} spans)", spans.len());
    Ok(out)
}

fn stats_cmd(input: Option<&str>, options: &Options) -> Result<String, CliError> {
    let mut profile_summary: Option<(String, usize, usize)> = None;
    if let Some(path) = input {
        // Exercise the full pipeline once so the counters below reflect
        // this profile (load → convert → layout), then report. Tracing
        // is enabled for the duration so even the gated pipeline
        // counters (flate, wire) fill in; the spans themselves are
        // discarded — `stats` reports metrics, `--trace-out` records.
        let was_enabled = ev_trace::enabled();
        ev_trace::set_enabled(true);
        let result = (|| -> Result<(String, usize, usize), CliError> {
            let exec = policy(options);
            let mut profile = load_opts(path, options)?;
            if let Some(script_path) = &options.script {
                // `--script`: run the analysis script inside the traced
                // window so the script-engine counters (`script.vm_ops`
                // etc.) land in the dump below. Engine routing honors
                // `EASYVIEW_SCRIPT_REFERENCE=1`, under which the VM
                // counters stay absent.
                let source = std::fs::read_to_string(script_path)
                    .map_err(|e| CliError(format!("cannot read {script_path}: {e}")))?;
                ScriptHost::new(&mut profile)
                    .with_policy(exec)
                    .run(&source)
                    .map_err(|e| CliError(e.to_string()))?;
            }
            let metric = pick_metric(&profile, options)?;
            let threshold_tag = format!("threshold:{}", options.threshold);
            let key =
                view_key(&profile, metric, &[shape_tag(options.shape), &threshold_tag]);
            let graph = view_cache().lock().unwrap().get_or_insert_with(key, || {
                let pruned = maybe_pruned(&profile, metric, options);
                layout(&pruned, metric, options.shape, exec)
            });
            Ok((
                profile.meta().name.clone(),
                profile.node_count(),
                graph.rects().len(),
            ))
        })();
        if !was_enabled {
            ev_trace::set_enabled(false);
            let _ = ev_trace::take_spans();
        }
        profile_summary = Some(result?);
    }
    if options.json {
        return Ok(stats_json(profile_summary.as_ref()));
    }
    let mut out = String::new();
    if let Some((name, contexts, rects)) = &profile_summary {
        let _ = writeln!(
            out,
            "profile : {name} ({contexts} contexts, {rects} frames laid out)",
        );
    }
    cache_stats_line(&mut out);
    let dump = ev_trace::metrics_dump();
    if !dump.is_empty() {
        out.push_str(&dump);
    }
    Ok(out)
}

/// `stats --json`: one machine-readable document — view-cache counters
/// plus the whole metrics registry, histograms reported as interpolated
/// p50/p90/p95/p99 (the same estimator the serve benchmark uses).
fn stats_json(profile_summary: Option<&(String, usize, usize)>) -> String {
    use ev_json::Value;
    let cache = view_cache().lock().unwrap().stats();
    let snapshot = ev_trace::snapshot_metrics();
    let counters: Vec<(&str, Value)> = snapshot
        .counters
        .iter()
        .map(|&(name, value)| (name, Value::Int(value as i64)))
        .collect();
    let histograms: Vec<(&str, Value)> = snapshot
        .histograms
        .iter()
        .map(|h| {
            let [p50, p90, p95, p99] = h.percentiles();
            (
                h.name,
                Value::object([
                    ("count", Value::Int(h.count as i64)),
                    ("sum", Value::Int(h.sum as i64)),
                    ("p50", Value::Float(p50)),
                    ("p90", Value::Float(p90)),
                    ("p95", Value::Float(p95)),
                    ("p99", Value::Float(p99)),
                ]),
            )
        })
        .collect();
    let mut pairs = vec![
        ("schema", Value::from("easyview-stats/v1")),
        (
            "viewCache",
            Value::object([
                ("hits", Value::Int(cache.hits as i64)),
                ("misses", Value::Int(cache.misses as i64)),
                ("len", Value::Int(cache.len as i64)),
                ("capacity", Value::Int(cache.capacity as i64)),
            ]),
        ),
        ("counters", Value::object(counters)),
        ("histograms", Value::object(histograms)),
    ];
    if let Some((name, contexts, rects)) = profile_summary {
        pairs.push((
            "profile",
            Value::object([
                ("name", Value::from(name.as_str())),
                ("contexts", Value::Int(*contexts as i64)),
                ("rects", Value::Int(*rects as i64)),
            ]),
        ));
    }
    let mut out = ev_json::to_string_pretty(&Value::object(pairs));
    out.push('\n');
    out
}

/// Reads and converts a profile. The policy reaches ingest too:
/// multi-member gzip inputs decompress their members on `ev-par`
/// workers, with output bit-identical at any thread count.
///
/// Setting `EASYVIEW_PPROF_REFERENCE` (to anything but `0` or empty)
/// routes pprof input through the retained two-pass reference decoder —
/// the escape hatch for cross-checking the one-pass fast path against
/// a suspect profile.
fn load(path: &str, exec: ExecPolicy) -> Result<Profile, CliError> {
    load_with(path, exec, None)
}

/// [`load`] with an optional forced streaming-ingest chunk size
/// (`--stream [--chunk-size N]`). The streamed profile is byte- and
/// error-identical to the buffered one at any chunk size, so the flag
/// only changes the ingest memory profile, never the output.
/// `EASYVIEW_PPROF_REFERENCE` wins over `--stream`: the reference
/// decoder has no streaming path, and as the cross-checking escape
/// hatch it must not be silently rerouted.
fn load_with(
    path: &str,
    exec: ExecPolicy,
    stream_chunk: Option<usize>,
) -> Result<Profile, CliError> {
    let bytes =
        std::fs::read(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    let use_reference = std::env::var("EASYVIEW_PPROF_REFERENCE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    let parsed = if use_reference {
        ev_formats::parse_auto_reference_with(&bytes, exec)
    } else if let Some(chunk) = stream_chunk {
        ev_formats::parse_auto_streaming_with(&bytes, exec, chunk)
    } else {
        ev_formats::parse_auto_with(&bytes, exec)
    };
    parsed.map_err(|e| CliError(format!("{path}: {e}")))
}

/// [`load_with`] driven by the shared analysis [`Options`].
fn load_opts(path: &str, options: &Options) -> Result<Profile, CliError> {
    load_with(path, policy(options), stream_request(options))
}

fn pick_metric(profile: &Profile, options: &Options) -> Result<MetricId, CliError> {
    match &options.metric {
        Some(name) => profile.metric_by_name(name).ok_or_else(|| {
            let known: Vec<&str> = profile.metrics().iter().map(|m| m.name.as_str()).collect();
            CliError(format!(
                "no metric {name:?}; profile has: {}",
                known.join(", ")
            ))
        }),
        None => {
            if profile.metrics().is_empty() {
                Err(CliError("profile has no metrics".to_owned()))
            } else {
                Ok(MetricId::from_index(0))
            }
        }
    }
}

fn maybe_pruned(profile: &Profile, metric: MetricId, options: &Options) -> Profile {
    if options.threshold > 0.0 {
        ev_analysis::prune(profile, metric, options.threshold)
    } else {
        profile.clone()
    }
}

fn info(input: &str) -> Result<String, CliError> {
    let profile = load(input, ExecPolicy::auto())?;
    let mut out = String::new();
    let meta = profile.meta();
    let _ = writeln!(out, "profile : {}", meta.name);
    if !meta.profiler.is_empty() {
        let _ = writeln!(out, "profiler: {}", meta.profiler);
    }
    let _ = writeln!(out, "contexts: {}", profile.node_count());
    if !profile.links().is_empty() {
        let _ = writeln!(out, "links   : {}", profile.links().len());
    }
    let _ = writeln!(out, "metrics :");
    for (i, m) in profile.metrics().iter().enumerate() {
        let total = profile.total(MetricId::from_index(i));
        let _ = writeln!(out, "  {:<20} total {}", m.name, m.unit.format(total));
    }
    if let Some(first) = profile.metrics().first() {
        let metric = profile.metric_by_name(&first.name).expect("exists");
        let view = MetricView::compute(&profile, metric);
        let mut hot: Vec<_> = profile
            .node_ids()
            .map(|id| (id, view.exclusive(id)))
            .filter(|&(_, v)| v > 0.0)
            .collect();
        hot.sort_by(|a, b| b.1.total_cmp(&a.1));
        let _ = writeln!(out, "hottest contexts by self {}:", first.name);
        for (id, v) in hot.into_iter().take(5) {
            let _ = writeln!(
                out,
                "  {:<44} {}",
                profile.resolve_frame(id).to_string(),
                first.unit.format(v)
            );
        }
    }
    Ok(out)
}

fn layout(profile: &Profile, metric: MetricId, shape: Shape, exec: ExecPolicy) -> FlameGraph {
    match shape {
        Shape::TopDown => FlameGraph::top_down_with(profile, metric, exec),
        Shape::BottomUp => FlameGraph::bottom_up_with(profile, metric, exec),
        Shape::Flat => FlameGraph::flat_with(profile, metric, exec),
    }
}

fn shape_tag(shape: Shape) -> &'static str {
    match shape {
        Shape::TopDown => "top_down",
        Shape::BottomUp => "bottom_up",
        Shape::Flat => "flat",
    }
}

fn view(input: &str, options: &Options) -> Result<String, CliError> {
    let exec = policy(options);
    let profile = load_opts(input, options)?;
    let metric = pick_metric(&profile, options)?;
    // The transform chain descriptor covers everything between the
    // loaded profile and the rendered geometry. The policy is NOT part
    // of the key: outputs are bit-identical across thread counts.
    let threshold_tag = format!("threshold:{}", options.threshold);
    let key = view_key(&profile, metric, &[shape_tag(options.shape), &threshold_tag]);
    let graph = view_cache().lock().unwrap().get_or_insert_with(key, || {
        let pruned = maybe_pruned(&profile, metric, options);
        layout(&pruned, metric, options.shape, exec)
    });
    let mut out = render::ansi(&graph, options.width, options.color);
    if graph.elided() > 0 {
        let _ = writeln!(out, "({} sub-pixel frames elided)", graph.elided());
    }
    if let Some(path) = &options.svg {
        let svg = render::svg(&graph, &render::SvgOptions::default());
        std::fs::write(path, &svg)
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "wrote {path}");
    }
    if options.cache_stats {
        cache_stats_line(&mut out);
    }
    Ok(out)
}

fn table(input: &str, options: &Options) -> Result<String, CliError> {
    let profile = load_opts(input, options)?;
    let metric = pick_metric(&profile, options)?;
    let base = maybe_pruned(&profile, metric, options);
    let shaped = match options.shape {
        Shape::TopDown => base,
        Shape::BottomUp => ev_analysis::bottom_up(&base, metric),
        Shape::Flat => ev_analysis::flatten(&base, metric),
    };
    let metric = pick_metric(&shaped, options)?;
    let mut t = TreeTable::new(&shaped, &[metric]);
    t.expand_to_depth(options.depth);
    Ok(t.render())
}

fn diff_cmd(before: &str, after: &str, options: &Options) -> Result<String, CliError> {
    let p1 = load_opts(before, options)?;
    let p2 = load_opts(after, options)?;
    let metric = pick_metric(&p1, options)?;
    let metric_name = p1.metric(metric).name.clone();
    let dfg = DiffFlameGraph::new(&p1, &p2, &metric_name).map_err(|i| {
        CliError(format!(
            "{} lacks metric {metric_name:?}",
            if i == 0 { before } else { after }
        ))
    })?;
    let mut out = render::ansi(dfg.graph(), options.width, options.color);
    let _ = writeln!(out);
    for (tag, count) in dfg.diff().tag_counts() {
        let _ = writeln!(out, "{tag}  {count} context(s)");
    }
    let d = diff_with(&p1, &p2, &metric_name, 0.0, policy(options)).expect("checked above");
    let unit = p1.metric(metric).unit;
    let _ = writeln!(
        out,
        "total: {} -> {} ({:+.1}%)",
        unit.format(d.profile.total(d.before)),
        unit.format(d.profile.total(d.after)),
        (d.profile.total(d.after) / d.profile.total(d.before).max(f64::MIN_POSITIVE) - 1.0)
            * 100.0
    );
    if let Some(path) = &options.svg {
        let svg = render::svg(dfg.graph(), &render::SvgOptions::default());
        std::fs::write(path, &svg)
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(out)
}

fn aggregate_cmd(inputs: &[String], options: &Options) -> Result<String, CliError> {
    let profiles: Vec<Profile> = inputs
        .iter()
        .map(|p| load_opts(p, options))
        .collect::<Result<_, _>>()?;
    let metric_name = match &options.metric {
        Some(name) => name.clone(),
        None => profiles[0]
            .metrics()
            .first()
            .map(|m| m.name.clone())
            .ok_or_else(|| CliError("first profile has no metrics".to_owned()))?,
    };
    let refs: Vec<&Profile> = profiles.iter().collect();
    let agg = aggregate_with(&refs, &metric_name, policy(options))
        .map_err(|i| CliError(format!("{} lacks metric {metric_name:?}", inputs[i])))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "aggregated {} profiles over {metric_name:?} ({} contexts)",
        inputs.len(),
        agg.profile.node_count()
    );
    let _ = writeln!(out, "\nper-context timelines (leaves):");
    for node in agg.profile.node_ids() {
        if !agg.profile.node(node).children().is_empty() {
            continue;
        }
        let frame = agg.profile.resolve_frame(node);
        if frame.name.is_empty() {
            continue;
        }
        let series = agg.series(node);
        let hist = Histogram::new(series);
        let _ = writeln!(
            out,
            "  {:<44} {} {}",
            frame.name,
            hist.sparkline(),
            classify_timeline(series)
        );
    }
    let graph = FlameGraph::top_down(&agg.profile, agg.metrics.sum);
    let _ = writeln!(out, "\nsum view:");
    out.push_str(&render::ansi(&graph, options.width, options.color));
    Ok(out)
}

fn search(input: &str, query: &str) -> Result<String, CliError> {
    let profile = load(input, ExecPolicy::auto())?;
    let needle = query.to_lowercase();
    let mut out = String::new();
    let mut count = 0;
    for id in profile.node_ids() {
        let frame = profile.resolve_frame(id);
        if frame.name.to_lowercase().contains(&needle) {
            count += 1;
            let path: Vec<String> = profile
                .path(id)
                .iter()
                .map(|&n| profile.resolve_frame(n).name)
                .collect();
            let _ = writeln!(out, "{}", path.join(";"));
        }
    }
    let _ = writeln!(out, "{count} match(es)");
    Ok(out)
}

fn script_cmd(input: &str, script_path: &str, options: &Options) -> Result<String, CliError> {
    let mut profile = load_opts(input, options)?;
    let source = std::fs::read_to_string(script_path)
        .map_err(|e| CliError(format!("cannot read {script_path}: {e}")))?;
    // Engine routing honors `EASYVIEW_SCRIPT_REFERENCE=1`; `--threads`
    // governs the parallel fan-out of pure per-node callbacks.
    let output = ScriptHost::new(&mut profile)
        .with_policy(policy(options))
        .run(&source)
        .map_err(|e| CliError(e.to_string()))?;
    Ok(output.stdout)
}

fn convert(input: &str, output: &str) -> Result<String, CliError> {
    let profile = load(input, ExecPolicy::auto())?;
    let bytes: Vec<u8> = if output.ends_with(".evpf") {
        ev_core::format::to_bytes(&profile)
    } else if output.ends_with(".pprof") || output.ends_with(".pb.gz") {
        ev_formats::pprof::write(&profile, ev_formats::pprof::WriteOptions::default())
    } else if output.ends_with(".folded") || output.ends_with(".collapsed") {
        ev_formats::collapsed::write(&profile).into_bytes()
    } else if output.ends_with(".speedscope.json") || output.ends_with(".json") {
        ev_formats::speedscope::write(&profile).into_bytes()
    } else {
        return Err(CliError(format!(
            "cannot infer output format from {output:?} (.evpf | .pprof | .folded | .speedscope.json)"
        )));
    };
    std::fs::write(output, &bytes)
        .map_err(|e| CliError(format!("cannot write {output}: {e}")))?;
    Ok(format!("wrote {output} ({} bytes)\n", bytes.len()))
}

/// Sessions replayed by `serve-smoke`, regardless of worker threads.
const SMOKE_SESSIONS: usize = 4;

/// FNV-1a over one response outcome, chained onto `digest`. Covers
/// only the response payload (or the error code) — never timing or
/// `meta` — so a session's digest is invariant under concurrency.
fn smoke_fold(digest: u64, outcome: &Result<ev_json::Value, ev_ide::IdeError>) -> u64 {
    let leaf = match outcome {
        Ok(value) => ev_json::to_string(value),
        Err(ev_ide::IdeError::Rpc { code, .. }) => format!("err:{code}"),
        Err(ev_ide::IdeError::Protocol(_)) => "protocol-failure".to_owned(),
    };
    let mut h = digest ^ 0xcbf2_9ce4_8422_2325;
    for b in leaf.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One smoke session: a fixed request mix (views, table, summary,
/// search, code link, hover, and one deliberately bad code link) over
/// its own server-side session. `salt` decorrelates the sessions so
/// digest comparison across thread counts is not vacuous.
fn smoke_session(
    server: &ev_ide::SharedEvpServer,
    profile_id: i64,
    mapped: &[(i64, String, u32)],
    node_count: usize,
    salt: usize,
) -> Result<u64, CliError> {
    use ev_json::Value;
    let mut client = ev_ide::EditorClient::connect_shared(server.clone())
        .map_err(|e| CliError(format!("session/open failed: {e}")))?;
    let pid = || ("profileId", Value::Int(profile_id));
    let &(node, ref file, line) = &mapped[salt % mapped.len()];
    let requests: Vec<(&str, Value)> = vec![
        (
            "profile/flameGraph",
            Value::object([
                pid(),
                ("metric", Value::from("cpu")),
                ("view", Value::from(if salt.is_multiple_of(2) { "topDown" } else { "bottomUp" })),
                ("limit", Value::Int(256)),
            ]),
        ),
        (
            "profile/treeTable",
            Value::object([
                pid(),
                ("metric", Value::from("cpu")),
                ("depth", Value::Int(3)),
            ]),
        ),
        ("profile/summary", Value::object([pid()])),
        (
            "profile/search",
            Value::object([pid(), ("query", Value::from(format!("function{salt}")))]),
        ),
        (
            "profile/codeLink",
            Value::object([pid(), ("node", Value::Int(node))]),
        ),
        (
            "profile/hover",
            Value::object([
                pid(),
                ("file", Value::from(file.as_str())),
                ("line", Value::Int(i64::from(line))),
            ]),
        ),
        // A stale node handle — must answer UNKNOWN_ENTITY, not panic.
        (
            "profile/codeLink",
            Value::object([pid(), ("node", Value::Int((node_count + 7) as i64))]),
        ),
    ];
    let mut digest = 0u64;
    for (method, params) in requests {
        let outcome = client.request(method, params);
        if let Err(ev_ide::IdeError::Protocol(e)) = &outcome {
            return Err(CliError(format!("transport failure in {method}: {e}")));
        }
        digest = smoke_fold(digest, &outcome);
    }
    Ok(digest)
}

/// Deterministic request-coalescing self-check: a waiter registers on
/// the owner's in-flight build (the build spins until the coalesced
/// counter moves, so the rendezvous happens even on one core). Returns
/// the number of coalesced requests observed (≥ 1).
fn smoke_coalesce_check() -> u64 {
    let cache: ev_analysis::SharedViewCache<u64> = ev_analysis::SharedViewCache::new(8);
    std::thread::scope(|s| {
        let owner = s.spawn(|| {
            cache.get_or_insert_with(17, || {
                while cache.stats().coalesced == 0 {
                    std::thread::yield_now();
                }
                42
            })
        });
        let waiter = s.spawn(|| cache.get_or_insert_with(17, || 42));
        assert_eq!(*owner.join().unwrap(), 42);
        assert_eq!(*waiter.join().unwrap(), 42);
    });
    cache.stats().coalesced
}

/// `serve-smoke`: end-to-end exercise of the shared multi-session EVP
/// server. Replays [`SMOKE_SESSIONS`] deterministic editor sessions
/// against ONE [`ev_ide::SharedEvpServer`] on `--threads` workers and
/// prints one digest per session. The digests depend only on response
/// payloads, so the `digests:` line is identical for every thread
/// count — CI replays at 1/2/8 threads and compares. Also runs the
/// deterministic coalescing self-check and a malformed-hex
/// `profile/open` probe (multi-byte UTF-8 payload must come back as a
/// clean `INVALID_PARAMS`).
fn serve_smoke(options: &Options) -> Result<String, CliError> {
    use ev_json::Value;
    let threads = if options.threads == 0 { 1 } else { options.threads };
    let profile = ev_gen::synthetic::SyntheticSpec {
        functions: 120,
        samples: 600,
        max_depth: 12,
        ..ev_gen::synthetic::SyntheticSpec::default()
    }
    .build();
    let mapped: Vec<(i64, String, u32)> = profile
        .node_ids()
        .filter_map(|id| {
            let frame = profile.resolve_frame(id);
            frame
                .has_source_mapping()
                .then(|| (id.index() as i64, frame.file, frame.line))
        })
        .collect();
    if mapped.is_empty() {
        return Err(CliError("smoke profile has no mapped frames".to_owned()));
    }
    let node_count = profile.node_count();

    let server = ev_ide::SharedEvpServer::new();
    let mut opener = ev_ide::EditorClient::connect_shared(server.clone())
        .map_err(|e| CliError(format!("session/open failed: {e}")))?;
    let profile_id = opener
        .open_profile(&profile)
        .map_err(|e| CliError(format!("profile/open failed: {e}")))?;

    // Worker t replays sessions t, t+threads, … round-robin.
    let digests: Vec<Result<(usize, u64), CliError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(SMOKE_SESSIONS))
            .map(|t| {
                let server = server.clone();
                let mapped = &mapped;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut s = t;
                    while s < SMOKE_SESSIONS {
                        out.push(
                            smoke_session(&server, profile_id, mapped, node_count, s)
                                .map(|d| (s, d)),
                        );
                        s += threads;
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("smoke session thread panicked"))
            .collect()
    });
    let mut per_session = [0u64; SMOKE_SESSIONS];
    for entry in digests {
        let (s, d) = entry?;
        per_session[s] = d;
    }

    let coalesced = smoke_coalesce_check();
    let cache = server.view_cache_stats();

    // Malformed hex over the real wire path: a multi-byte UTF-8
    // payload used to panic the server inside hex decoding.
    let bad_hex = opener.request(
        "profile/open",
        Value::object([
            ("format", Value::from("evpf-hex")),
            ("data", Value::from("✓a")),
        ]),
    );
    let bad_hex_line = match bad_hex {
        Err(ev_ide::IdeError::Rpc { code, .. }) => format!("bad-hex: error {code}"),
        Err(ev_ide::IdeError::Protocol(e)) => {
            return Err(CliError(format!("bad-hex transport failure: {e}")))
        }
        Ok(_) => return Err(CliError("bad-hex request unexpectedly succeeded".to_owned())),
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve-smoke: {SMOKE_SESSIONS} sessions on {threads} thread(s), one shared server"
    );
    let _ = writeln!(
        out,
        "digests: {}",
        per_session
            .iter()
            .map(|d| format!("{d:016x}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = writeln!(
        out,
        "view-cache: {} miss(es), {} session(s) open",
        cache.misses,
        server.session_count()
    );
    let _ = writeln!(out, "coalesced: {coalesced}");
    let _ = writeln!(out, "{bad_hex_line}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_args;
    use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit};

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ev-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_profile(name: &str, samples: &[(&[&str], f64)]) -> String {
        let mut p = Profile::new(name);
        let m = p.add_metric(MetricDescriptor::new(
            "cpu",
            MetricUnit::Count,
            MetricKind::Exclusive,
        ));
        for &(path, v) in samples {
            let frames: Vec<Frame> = path
                .iter()
                .map(|&n| Frame::function(n).with_source(format!("{n}.c"), 1))
                .collect();
            p.add_sample(&frames, &[(m, v)]);
        }
        let path = tmpdir().join(format!("{name}.evpf"));
        std::fs::write(&path, ev_core::format::to_bytes(&p)).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn run_line(line: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = line.iter().map(|s| s.to_string()).collect();
        run(parse_args(&argv)?)
    }

    #[test]
    fn serve_smoke_digests_are_thread_count_invariant() {
        let one = run_line(&["serve-smoke", "--threads", "1"]).unwrap();
        let four = run_line(&["serve-smoke", "--threads", "4"]).unwrap();
        let digest_line = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("digests: "))
                .unwrap()
                .to_owned()
        };
        assert_eq!(digest_line(&one), digest_line(&four));
        // Four distinct sessions, all digested.
        let line = digest_line(&one);
        let digests: Vec<&str> = line["digests: ".len()..].split_whitespace().collect();
        assert_eq!(digests.len(), SMOKE_SESSIONS);
        assert!(digests.iter().all(|d| *d != "0000000000000000"));
        // The coalescing self-check and the malformed-hex probe report.
        let coalesced: u64 = one
            .lines()
            .find_map(|l| l.strip_prefix("coalesced: "))
            .unwrap()
            .parse()
            .unwrap();
        assert!(coalesced >= 1);
        assert!(one.contains("bad-hex: error -32602"));
    }

    #[test]
    fn info_lists_metrics_and_hotspots() {
        let path = write_profile("info", &[(&["main", "hot"], 90.0), (&["main"], 10.0)]);
        let out = run_line(&["info", &path]).unwrap();
        assert!(out.contains("contexts: 3"), "{out}");
        assert!(out.contains("cpu"), "{out}");
        assert!(out.contains("hot"), "{out}");
    }

    #[test]
    fn view_renders_all_shapes() {
        let path = write_profile("view", &[(&["main", "a"], 70.0), (&["main", "b"], 30.0)]);
        for shape in ["topdown", "bottomup", "flat"] {
            let out = run_line(&["view", &path, "--shape", shape, "--width", "60"]).unwrap();
            assert!(out.lines().count() >= 2, "{shape}: {out}");
        }
    }

    #[test]
    fn repeated_view_requests_hit_the_cache() {
        let path = write_profile(
            "cache-hit",
            &[(&["main", "work"], 80.0), (&["main", "idle"], 20.0)],
        );
        let first = run_line(&["view", &path, "--cache-stats"]).unwrap();
        let second = run_line(&["view", &path, "--cache-stats"]).unwrap();
        // Identical requests render identically and the second one is
        // served from the cache (counters are process-wide, so compare
        // the deltas rather than absolute values).
        let stat = |out: &str, nth: usize| -> u64 {
            let line = out.lines().find(|l| l.starts_with("view-cache:")).unwrap();
            line.split_whitespace().nth(nth).unwrap().parse().unwrap()
        };
        let (hits, misses) = (|out: &str| stat(out, 1), |out: &str| stat(out, 3));
        // Counters are process-wide and other tests run concurrently, so
        // assert monotone deltas, not exact values.
        assert!(hits(&second) > hits(&first), "{second}");
        let body = |out: &str| {
            out.lines()
                .filter(|l| !l.starts_with("view-cache:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(body(&first), body(&second));
        // A different shape is a different key: it must miss.
        let other = run_line(&["view", &path, "--shape", "bottomup", "--cache-stats"]).unwrap();
        assert!(misses(&other) > misses(&second), "{other}");
    }

    #[test]
    fn threads_flag_does_not_change_output() {
        let path = write_profile(
            "threads-eq",
            &[(&["main", "a", "b"], 60.0), (&["main", "c"], 40.0)],
        );
        let seq = run_line(&["view", &path, "--threads", "1"]).unwrap();
        for threads in ["2", "4", "8"] {
            let par = run_line(&["view", &path, "--threads", threads]).unwrap();
            assert_eq!(seq, par, "--threads {threads}");
        }
    }

    /// Writes a gzip'd pprof fixture so `--stream` exercises the full
    /// inflate→walk pipeline, not just the raw-slice chunker.
    fn write_pprof_gz(name: &str) -> String {
        let mut p = Profile::new(name);
        let m = p.add_metric(MetricDescriptor::new(
            "cpu",
            MetricUnit::Count,
            MetricKind::Exclusive,
        ));
        p.add_sample(
            &[Frame::function("main"), Frame::function("hot")],
            &[(m, 90.0)],
        );
        p.add_sample(&[Frame::function("main")], &[(m, 10.0)]);
        let bytes = ev_formats::pprof::write(&p, ev_formats::pprof::WriteOptions::default());
        let path = tmpdir().join(format!("{name}.pprof"));
        std::fs::write(&path, bytes).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn stream_flag_does_not_change_output() {
        let path = write_pprof_gz("stream-eq");
        let buffered = run_line(&["view", &path, "--width", "60"]).unwrap();
        let default_chunk = run_line(&["view", &path, "--stream", "--width", "60"]).unwrap();
        assert_eq!(buffered, default_chunk);
        for chunk in ["1", "13", "4096"] {
            let streamed = run_line(&[
                "view", &path, "--stream", "--chunk-size", chunk, "--width", "60",
            ])
            .unwrap();
            assert_eq!(buffered, streamed, "--chunk-size {chunk}");
        }
    }

    #[test]
    fn stats_stream_reports_pipeline_counters() {
        let path = write_pprof_gz("stream-stats");
        let out = run_line(&["stats", &path, "--stream", "--chunk-size", "64"]).unwrap();
        for counter in ["counter flate.stream_chunks ", "counter wire.stream_refills "] {
            let line = out
                .lines()
                .find(|l| l.starts_with(counter))
                .unwrap_or_else(|| panic!("{counter} missing from:\n{out}"));
            let n: u64 = line.split_whitespace().nth(2).unwrap().parse().unwrap();
            assert!(n > 0, "{line}");
        }
    }

    #[test]
    fn stats_json_emits_machine_readable_metrics() {
        let path = write_pprof_gz("stats-json");
        let out = run_line(&["stats", &path, "--json"]).unwrap();
        let doc = ev_json::parse(&out).unwrap();
        assert_eq!(
            doc.get("schema").and_then(ev_json::Value::as_str),
            Some("easyview-stats/v1")
        );
        let cache = doc.get("viewCache").unwrap();
        assert!(cache.get("capacity").and_then(ev_json::Value::as_i64).unwrap() > 0);
        // The pipeline ran under tracing, so its counters must be
        // present with positive values.
        let counters = doc.get("counters").unwrap();
        assert!(
            counters
                .get("flate.in_bytes")
                .and_then(ev_json::Value::as_i64)
                .unwrap_or(0)
                > 0,
            "{out}"
        );
        let profile = doc.get("profile").unwrap();
        // The pprof importer names profiles after the format.
        assert_eq!(
            profile.get("name").and_then(ev_json::Value::as_str),
            Some("pprof")
        );
        assert!(profile.get("rects").and_then(ev_json::Value::as_i64).unwrap() > 0);
        // Histogram entries carry the interpolated percentile ladder.
        if let Some(ev_json::Value::Object(hists)) = doc.get("histograms") {
            for (name, h) in hists {
                let p50 = h.get("p50").and_then(ev_json::Value::as_f64).unwrap();
                let p99 = h.get("p99").and_then(ev_json::Value::as_f64).unwrap();
                assert!(p50 <= p99, "{name}: p50 {p50} > p99 {p99}");
            }
        }
        // Without --json the same command still prints the text dump.
        let text = run_line(&["stats", &path]).unwrap();
        assert!(text.contains("view-cache:"), "{text}");
    }

    #[test]
    fn view_writes_svg() {
        let path = write_profile("svg", &[(&["main"], 1.0)]);
        let svg_path = tmpdir().join("out.svg");
        let out = run_line(&["view", &path, "--svg", svg_path.to_str().unwrap()]).unwrap();
        assert!(out.contains("wrote"), "{out}");
        let svg = std::fs::read_to_string(svg_path).unwrap();
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn table_respects_depth() {
        let path = write_profile("table", &[(&["a", "b", "c", "d"], 1.0)]);
        let shallow = run_line(&["table", &path, "--depth", "1"]).unwrap();
        let deep = run_line(&["table", &path, "--depth", "8"]).unwrap();
        assert!(deep.lines().count() > shallow.lines().count());
        assert!(deep.contains("cpu(I)"));
    }

    #[test]
    fn diff_tags_and_totals() {
        let p1 = write_profile("diff1", &[(&["main", "gone"], 50.0), (&["main", "same"], 10.0)]);
        let p2 = write_profile("diff2", &[(&["main", "new"], 20.0), (&["main", "same"], 10.0)]);
        let out = run_line(&["diff", &p1, &p2]).unwrap();
        assert!(out.contains("[A]  1 context(s)"), "{out}");
        assert!(out.contains("[D]  1 context(s)"), "{out}");
        assert!(out.contains("total: 60 -> 30"), "{out}");
    }

    #[test]
    fn aggregate_classifies_timelines() {
        let mut paths = Vec::new();
        for k in 0..6 {
            paths.push(write_profile(
                &format!("agg{k}"),
                &[(&["main", "leaky"], f64::from(k + 1) * 10.0)],
            ));
        }
        let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
        let mut argv = vec!["aggregate"];
        argv.extend(refs);
        let out = run_line(&argv).unwrap();
        assert!(out.contains("leaky"), "{out}");
        assert!(out.contains("potential-leak"), "{out}");
    }

    #[test]
    fn search_prints_full_paths() {
        let path = write_profile("search", &[(&["main", "alpha", "beta"], 1.0)]);
        let out = run_line(&["search", &path, "BETA"]).unwrap();
        assert!(out.contains("main;alpha;beta"), "{out}");
        assert!(out.contains("1 match(es)"), "{out}");
    }

    #[test]
    fn script_runs_from_file() {
        let path = write_profile("script", &[(&["main"], 5.0)]);
        let script = tmpdir().join("s.evs");
        std::fs::write(&script, "print(\"total\", total(\"cpu\"));").unwrap();
        let out = run_line(&["script", &path, script.to_str().unwrap()]).unwrap();
        assert_eq!(out, "total 5\n");
    }

    #[test]
    fn convert_roundtrips_through_every_extension() {
        let path = write_profile("conv", &[(&["main", "f"], 7.0)]);
        for ext in ["evpf", "pprof", "folded", "speedscope.json"] {
            let out_path = tmpdir().join(format!("conv-out.{ext}"));
            let out = run_line(&["convert", &path, out_path.to_str().unwrap()]).unwrap();
            assert!(out.contains("wrote"), "{out}");
            // Converted output parses back and conserves the total.
            let bytes = std::fs::read(&out_path).unwrap();
            let p = ev_formats::parse_auto(&bytes).unwrap();
            let m = ev_core::MetricId::from_index(0);
            assert_eq!(p.total(m), 7.0, "{ext}");
        }
        assert!(run_line(&["convert", &path, "out.unknown"]).is_err());
    }

    #[test]
    fn missing_file_and_bad_metric_are_clean_errors() {
        assert!(run_line(&["info", "/nonexistent/file"]).is_err());
        let path = write_profile("err", &[(&["main"], 1.0)]);
        let err = run_line(&["view", &path, "--metric", "nope"]).unwrap_err();
        assert!(err.0.contains("profile has: cpu"), "{err}");
    }

    #[test]
    fn help_text() {
        let out = run_line(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }
}

//! End-to-end CLI tests over the paper's case-study workloads: the
//! terminal driver reproduces the same findings the examples and
//! `paper_tables` do.

use ev_cli::{parse_args, run};

fn run_line(line: &[&str]) -> String {
    let argv: Vec<String> = line.iter().map(|s| s.to_string()).collect();
    run(parse_args(&argv).expect("parse")).expect("run")
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("ev-cli-wl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

fn save(profile: &ev_core::Profile, name: &str) -> String {
    let path = tmp(name);
    std::fs::write(&path, ev_core::format::to_bytes(profile)).unwrap();
    path
}

#[test]
fn lulesh_bottom_up_via_cli_shows_brk() {
    let cpu = ev_gen::lulesh::cpu_profile(11);
    let path = save(&cpu, "lulesh.evpf");
    let out = run_line(&["view", &path, "--shape", "bottomup", "--width", "120"]);
    // brk is the widest depth-1 frame; with 120 columns its label
    // surfaces in the second row.
    let second_row = out.lines().nth(1).expect("two rows");
    assert!(second_row.contains("rk"), "{second_row}");

    let info = run_line(&["info", &path]);
    assert!(info.contains("brk"), "{info}");
    assert!(info.contains("CPUTIME"), "{info}");
}

#[test]
fn spark_diff_via_cli_shows_tags() {
    let p1 = save(&ev_gen::spark::rdd_profile(), "rdd.evpf");
    let p2 = save(&ev_gen::spark::sql_profile(), "sql.evpf");
    let out = run_line(&["diff", &p1, &p2, "--width", "100"]);
    assert!(out.contains("[A]"), "{out}");
    assert!(out.contains("[D]"), "{out}");
    assert!(out.contains("total:"), "{out}");
}

#[test]
fn leak_workload_via_cli_aggregate() {
    let snaps = ev_gen::grpc_leak::snapshots(24, 5);
    let paths: Vec<String> = snaps
        .iter()
        .enumerate()
        .map(|(i, p)| save(p, &format!("snap{i}.evpf")))
        .collect();
    let mut argv: Vec<&str> = vec!["aggregate"];
    argv.extend(paths.iter().map(String::as_str));
    argv.extend(["--metric", "inuse_space"]);
    let out = run_line(&argv);
    assert!(out.contains("transport.newBufWriter"), "{out}");
    assert!(out.contains("potential-leak"), "{out}");
    assert!(out.contains("reclaimed"), "{out}");
}

#[test]
fn pprof_files_open_via_cli() {
    let bytes = ev_gen::synthetic::SyntheticSpec {
        samples: 500,
        seed: 3,
        ..Default::default()
    }
    .build_pprof();
    let path = tmp("synthetic.pprof");
    std::fs::write(&path, &bytes).unwrap();
    let out = run_line(&["info", &path]);
    assert!(out.contains("profiler: pprof"), "{out}");
    let out = run_line(&["table", &path, "--depth", "2", "--metric", "cpu"]);
    assert!(out.contains("cpu(I)"), "{out}");
    // Pruned view on the same file.
    let out = run_line(&["view", &path, "--threshold", "0.05", "--width", "90"]);
    assert!(out.lines().count() >= 2, "{out}");
}

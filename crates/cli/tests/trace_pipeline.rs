//! End-to-end self-profiling: `easyview flame <p.pprof> --trace-out`
//! must produce a trace whose spans cover the whole pipeline (inflate →
//! wire decode → convert → analysis → layout → render) and that
//! EasyView itself can render — the dogfood loop. One test per concern,
//! all in this file, because span recording is process-global.

use ev_cli::{parse_cli, run_cli};
use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit, Profile};

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ev-trace-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a gzip'd pprof fixture so the traced run exercises the
/// inflate and wire-decode stages, not just the converter.
fn write_pprof_fixture() -> String {
    let mut p = Profile::new("fixture");
    let m = p.add_metric(MetricDescriptor::new(
        "cpu",
        MetricUnit::Count,
        MetricKind::Exclusive,
    ));
    p.add_sample(
        &[Frame::function("main"), Frame::function("hot")],
        &[(m, 90.0)],
    );
    p.add_sample(
        &[Frame::function("main"), Frame::function("cold")],
        &[(m, 10.0)],
    );
    let bytes = ev_formats::pprof::write(&p, ev_formats::pprof::WriteOptions::default());
    assert!(ev_flate::is_gzip(&bytes), "pprof fixture must be gzip'd");
    let path = tmpdir().join("fixture.pprof");
    std::fs::write(&path, bytes).unwrap();
    path.to_string_lossy().into_owned()
}

fn run_line(line: &[&str]) -> String {
    let argv: Vec<String> = line.iter().map(|s| s.to_string()).collect();
    run_cli(parse_cli(&argv).unwrap()).unwrap()
}

#[test]
fn traced_flame_run_covers_the_pipeline_and_renders_itself() {
    let fixture = write_pprof_fixture();
    let trace_path = tmpdir().join("self.evpf");
    let trace_path = trace_path.to_str().unwrap();

    // Traced run: flame graph over the gzip'd pprof fixture.
    let out = run_line(&["flame", &fixture, "--trace-out", trace_path]);
    assert!(out.contains("wrote trace"), "{out}");

    // The trace is a valid EasyView profile covering >= 6 pipeline stages.
    let bytes = std::fs::read(trace_path).unwrap();
    let profile = ev_formats::easyview::parse(&bytes).unwrap();
    profile.validate().unwrap();
    let names: Vec<String> = profile
        .node_ids()
        .map(|id| profile.resolve_frame(id).name)
        .collect();
    for stage in [
        "flate.inflate",
        "wire.decode",
        "convert.pprof",
        "analysis.metric_view",
        "flame.layout",
        "flame.render",
    ] {
        assert!(
            names.iter().any(|n| n == stage),
            "stage {stage} missing from self-profile; got {names:?}"
        );
    }
    let wall = profile.metric_by_name("wall").unwrap();
    assert!(profile.total(wall) > 0.0, "spans carry wall time");

    // Dogfood: EasyView renders its own trace.
    let rendered = run_line(&["flame", trace_path, "--width", "80"]);
    // Which labels fit depends on run-to-run timing (narrow rects are
    // clipped), so only require the root row plus some stage label;
    // stage coverage was already asserted on the parsed profile above.
    assert!(
        rendered.contains("OOT"),
        "self-profile renders a root row: {rendered}"
    );
    assert!(
        ["onvert.pprof", "ire.decode", "late.inflate", "nalysis.", "lame."]
            .iter()
            .any(|s| rendered.contains(s)),
        "self-profile renders at least one stage label: {rendered}"
    );

    // Chrome export parses as JSON and re-imports through the chrome
    // converter (same pipeline `easyview info trace.json` uses).
    let chrome_path = tmpdir().join("self.trace.json");
    let chrome_path = chrome_path.to_str().unwrap();
    let out = run_line(&[
        "flame",
        &fixture,
        "--trace-out",
        chrome_path,
        "--trace-format",
        "chrome",
    ]);
    assert!(out.contains("wrote trace"), "{out}");
    let text = std::fs::read_to_string(chrome_path).unwrap();
    let value = ev_json::parse(&text).unwrap();
    let events = value.get("traceEvents").and_then(|v| v.as_array()).unwrap();
    assert!(!events.is_empty());
    assert!(events
        .iter()
        .all(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")));
    let reimported = ev_formats::chrome::parse(&text).unwrap();
    reimported.validate().unwrap();

    // Tracing is off again after run_cli: a fresh run records nothing.
    assert!(!ev_trace::enabled());
    let _ = run_line(&["info", &fixture]);
    assert!(ev_trace::take_spans().is_empty());

    // stats surfaces the pipeline counters fed by the traced runs.
    let stats = run_line(&["stats"]);
    assert!(stats.contains("view-cache:"), "{stats}");
    assert!(stats.contains("counter wire.fields"), "{stats}");
    assert!(stats.contains("counter flate.in_bytes"), "{stats}");
}

//! The process-wide worker pool and scoped job execution.
//!
//! One pool is spawned lazily and lives for the process. Each worker
//! owns a deque: it pops its own back (LIFO, cache-warm) and steals
//! other deques' fronts (FIFO, oldest work first). Idle workers sleep
//! on a `Condvar` guarded by a pending-task counter; the counter is
//! only mutated under the same mutex, so wakeups cannot be lost.
//!
//! A *job* is a stack-allocated [`JobCore`] — a lifetime-erased
//! reference to the task closure plus a completion latch. Workers never
//! touch a job after bumping its latch to the total, and the submitting
//! thread does not return (and thus cannot drop the `JobCore`) until
//! the latch reaches the total, which makes the erasure sound.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;

/// A unit of work: which job, and which task index within it.
#[derive(Clone, Copy)]
struct Task {
    job: *const JobCore,
    index: usize,
}

// Tasks only travel between threads inside the pool, and the pointed-to
// JobCore outlives every task referencing it (see module docs).
unsafe impl Send for Task {}

/// Shared state of a running job.
struct JobCore {
    /// The task body, lifetime-erased. Valid for the job's duration.
    body: *const (dyn Fn(usize) + Sync),
    /// Completion latch: tasks finished so far.
    done: Mutex<usize>,
    /// Signalled when the latch reaches `total`.
    done_cv: Condvar,
    /// Total number of tasks in the job.
    total: usize,
    /// Set if any task panicked; the submitter re-panics.
    panicked: AtomicBool,
}

// The body pointer is only dereferenced while the job is alive, and the
// closure itself is Sync.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

impl JobCore {
    /// Runs one task and bumps the completion latch. This is the only
    /// path that touches a job from a worker; nothing is accessed after
    /// the latch update's unlock.
    fn run_task(&self, index: usize) {
        let body = unsafe { &*self.body };
        if panic::catch_unwind(AssertUnwindSafe(|| body(index))).is_err() {
            self.panicked.store(true, Ordering::Relaxed);
        }
        let mut done = self.done.lock().unwrap();
        *done += 1;
        if *done == self.total {
            self.done_cv.notify_all();
        }
    }
}

/// Worker-visible pool state.
struct Shared {
    /// One deque per worker; callers push round-robin.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Count of queued (not yet claimed) tasks. Mutated only under
    /// this mutex so sleepers and pushers cannot race.
    pending: Mutex<usize>,
    /// Wakes idle workers when tasks arrive.
    wake: Condvar,
}

impl Shared {
    /// Claims a task: own deque from the back, then steals others from
    /// the front. `me` is the worker's own index (callers pass an
    /// arbitrary slot).
    fn claim(&self, me: usize) -> Option<Task> {
        let n = self.deques.len();
        if let Some(task) = self.deques[me % n].lock().unwrap().pop_back() {
            self.settle();
            return Some(task);
        }
        for offset in 1..n {
            let victim = (me + offset) % n;
            if let Some(task) = self.deques[victim].lock().unwrap().pop_front() {
                self.settle();
                return Some(task);
            }
        }
        None
    }

    /// Accounts for one claimed task.
    fn settle(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending = pending.saturating_sub(1);
    }

    /// Publishes `tasks` across the deques starting at `home` and wakes
    /// sleepers. Tasks are enqueued before the counter rises, so a
    /// woken worker always finds what the counter promises.
    fn publish(&self, home: usize, tasks: impl ExactSizeIterator<Item = Task>) {
        let n = self.deques.len();
        let count = tasks.len();
        for (i, task) in tasks.enumerate() {
            self.deques[(home + i) % n].lock().unwrap().push_back(task);
        }
        let mut pending = self.pending.lock().unwrap();
        *pending += count;
        drop(pending);
        self.wake.notify_all();
    }
}

/// The persistent pool.
pub(crate) struct Pool {
    shared: &'static Shared,
    workers: usize,
}

/// Per-worker observability counters, registered once at worker start
/// (the leaked names live as long as the worker thread — forever).
struct WorkerMetrics {
    tasks: &'static ev_trace::Counter,
    busy_ns: &'static ev_trace::Counter,
    idle_ns: &'static ev_trace::Counter,
}

impl WorkerMetrics {
    fn new(me: usize) -> WorkerMetrics {
        let name = |suffix: &str| -> &'static str {
            Box::leak(format!("par.worker{me}.{suffix}").into_boxed_str())
        };
        WorkerMetrics {
            tasks: ev_trace::counter(name("tasks")),
            busy_ns: ev_trace::counter(name("busy_ns")),
            idle_ns: ev_trace::counter(name("idle_ns")),
        }
    }
}

fn worker_loop(shared: &'static Shared, me: usize) {
    let metrics = WorkerMetrics::new(me);
    loop {
        if let Some(task) = shared.claim(me) {
            // Clock reads only while tracing is on; workers record into
            // counters and never reorder work, so the `--threads`
            // determinism contract is untouched.
            if ev_trace::enabled() {
                let start = ev_trace::now_ns();
                unsafe { (*task.job).run_task(task.index) };
                metrics.busy_ns.add(ev_trace::now_ns() - start);
                metrics.tasks.inc();
            } else {
                unsafe { (*task.job).run_task(task.index) };
            }
            continue;
        }
        let pending = shared.pending.lock().unwrap();
        // Re-check under the lock: a publish between our failed scan
        // and this lock raised the counter, so skip the wait and scan
        // again rather than sleeping through the notification.
        if *pending == 0 {
            if ev_trace::enabled() {
                let start = ev_trace::now_ns();
                drop(shared.wake.wait(pending).unwrap());
                metrics.idle_ns.add(ev_trace::now_ns() - start);
            } else {
                drop(shared.wake.wait(pending).unwrap());
            }
        }
    }
}

static POOL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    /// The process-wide pool, spawning workers on first use.
    pub(crate) fn global() -> &'static Pool {
        POOL.get_or_init(|| {
            let workers = crate::max_threads();
            let shared: &'static Shared = Box::leak(Box::new(Shared {
                deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
                pending: Mutex::new(0),
                wake: Condvar::new(),
            }));
            for me in 0..workers {
                thread::Builder::new()
                    .name(format!("ev-par-{me}"))
                    .spawn(move || worker_loop(shared, me))
                    .expect("spawn ev-par worker");
            }
            Pool { shared, workers }
        })
    }

    /// Number of workers in the pool.
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `total` tasks (`body(0..total)`) on the pool and blocks
    /// until all complete, helping with this job's tasks while waiting.
    ///
    /// # Panics
    ///
    /// Re-panics on the calling thread if any task panicked.
    pub(crate) fn run_scope(&self, total: usize, body: &(dyn Fn(usize) + Sync)) {
        if total == 0 {
            return;
        }
        if total == 1 {
            body(0);
            return;
        }
        // Erase the borrow: the JobCore stays on this stack frame and
        // this function does not return until every task has finished,
        // so extending the closure's lifetime is sound.
        let body_static: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(body) };
        let job = JobCore {
            body: body_static,
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            total,
            panicked: AtomicBool::new(false),
        };
        let job_ptr: *const JobCore = &job;

        // Keep the last task for ourselves (submitter participates),
        // publish the rest.
        let home = job_ptr as usize / 64; // spread jobs across deques
        self.shared.publish(
            home,
            (0..total - 1).map(|index| Task { job: job_ptr, index }),
        );
        job.run_task(total - 1);

        // Help drain while waiting: any task we claim (even from an
        // unrelated concurrent job) makes progress toward our latch
        // being reachable.
        loop {
            {
                let done = job.done.lock().unwrap();
                if *done == job.total {
                    break;
                }
            }
            match self.shared.claim(home) {
                Some(task) => unsafe { (*task.job).run_task(task.index) },
                None => {
                    let done = job.done.lock().unwrap();
                    if *done == job.total {
                        break;
                    }
                    drop(job.done_cv.wait(done).unwrap());
                }
            }
        }

        if job.panicked.load(Ordering::Relaxed) {
            panic!("ev-par: a parallel task panicked");
        }
    }
}

//! Disjoint-index shared mutable access to a slice.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A view over `&mut [T]` that multiple tasks may write through, as
/// long as no index is touched by more than one task.
///
/// This is the primitive behind deterministic parallel tree rollups:
/// tasks own disjoint subtree index sets, so their writes never alias,
/// but the borrow checker cannot see that — `SharedSlice` carries the
/// proof obligation into `unsafe` at the call sites instead.
pub struct SharedSlice<'a, T> {
    data: *const UnsafeCell<T>,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a uniquely borrowed slice.
    pub fn new(slice: &'a mut [T]) -> SharedSlice<'a, T> {
        let len = slice.len();
        SharedSlice {
            data: slice.as_mut_ptr() as *const UnsafeCell<T>,
            len,
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads index `i`.
    ///
    /// # Safety
    ///
    /// No concurrent task may be writing index `i`.
    pub unsafe fn get(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        unsafe { *(*self.data.add(i)).get() }
    }

    /// Writes index `i`.
    ///
    /// # Safety
    ///
    /// No concurrent task may be reading or writing index `i`.
    pub unsafe fn set(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        unsafe { *(*self.data.add(i)).get() = value };
    }

    /// Mutable reference to index `i`.
    ///
    /// # Safety
    ///
    /// No concurrent task may hold any reference to index `i`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        unsafe { &mut *(*self.data.add(i)).get() }
    }

    /// Copies `src` into `offset..offset + src.len()` as one memcpy —
    /// the scatter side of a parallel ordered join, where each task owns
    /// a precomputed disjoint destination range.
    ///
    /// # Safety
    ///
    /// No concurrent task may touch any index in
    /// `offset..offset + src.len()`, and the range must be in bounds.
    pub unsafe fn copy_from_slice_at(&self, offset: usize, src: &[T])
    where
        T: Copy,
    {
        debug_assert!(offset + src.len() <= self.len);
        unsafe {
            std::ptr::copy_nonoverlapping(
                src.as_ptr(),
                (*self.data.add(offset)).get(),
                src.len(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_writes_land() {
        let mut data = vec![0u32; 16];
        {
            let shared = SharedSlice::new(&mut data);
            for i in 0..16 {
                unsafe { shared.set(i, i as u32 * 2) };
            }
            assert_eq!(shared.len(), 16);
            assert!(!shared.is_empty());
            assert_eq!(unsafe { shared.get(3) }, 6);
        }
        assert_eq!(data[15], 30);
    }
}

//! `ev-par` — EasyView's from-scratch scoped thread pool.
//!
//! The analysis engine (paper §4) must aggregate, diff, and re-lay-out
//! profiles interactively; those paths are tree traversals and
//! multi-profile merges that scale with cores. Per the workspace
//! charter everything is built on std only — no rayon, no crossbeam:
//! `std::thread` workers, `Mutex<VecDeque>` work-stealing deques, and a
//! `Condvar` for sleep/wake.
//!
//! # Execution model
//!
//! A single process-wide pool spawns lazily on first parallel call and
//! lives for the process. Work enters as *scoped jobs*: the submitting
//! thread publishes chunk tasks, participates in execution, and does
//! not return until every task has completed (which is what makes
//! borrowing stack data from tasks sound). Workers pop their own deque
//! LIFO and steal from others FIFO.
//!
//! # Determinism contract
//!
//! Every parallel algorithm built on this crate must produce output
//! **bit-identical** to its sequential specialization, for any thread
//! count. The pool itself guarantees nothing about ordering — callers
//! achieve determinism by fixing the *reduction shape* independently of
//! [`ExecPolicy::threads`] (e.g. a balanced merge tree keyed only on
//! input count, or disjoint per-subtree writes with a fixed sequential
//! accumulation order inside each subtree). `threads == 1` always runs
//! inline on the caller with no pool involvement at all: that path *is*
//! the sequential reference implementation.
//!
//! # Example
//!
//! ```
//! use ev_par::{parallel_for, ExecPolicy, SharedSlice};
//!
//! let mut squares = vec![0u64; 1000];
//! let shared = SharedSlice::new(&mut squares);
//! parallel_for(1000, ExecPolicy::auto(), 64, &|range| {
//!     for i in range {
//!         // Chunks are disjoint, so each index is written once.
//!         unsafe { shared.set(i, (i as u64) * (i as u64)) };
//!     }
//! });
//! assert_eq!(squares[31], 961);
//! ```

mod pool;
mod slice;

pub use slice::SharedSlice;

use pool::Pool;
use std::ops::Range;
use std::sync::Mutex;

/// How much parallelism a call may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Upper bound on concurrently executing tasks. `1` means strictly
    /// sequential inline execution (the reference path).
    pub threads: usize,
}

impl ExecPolicy {
    /// Strictly sequential: run inline on the caller.
    pub const SEQUENTIAL: ExecPolicy = ExecPolicy { threads: 1 };

    /// Use every available hardware thread.
    pub fn auto() -> ExecPolicy {
        ExecPolicy {
            threads: max_threads(),
        }
    }

    /// Use at most `threads` threads (clamped to at least 1).
    pub fn with_threads(threads: usize) -> ExecPolicy {
        ExecPolicy {
            threads: threads.max(1),
        }
    }

    /// Whether this policy runs inline without the pool.
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }
}

impl Default for ExecPolicy {
    fn default() -> ExecPolicy {
        ExecPolicy::auto()
    }
}

/// Number of hardware threads, bounded to keep deque scans cheap.
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 32)
}

/// Splits `0..n` into `tasks` near-equal chunks, largest first.
fn chunk_bounds(n: usize, tasks: usize) -> Vec<Range<usize>> {
    let tasks = tasks.clamp(1, n.max(1));
    let base = n / tasks;
    let rem = n % tasks;
    let mut out = Vec::with_capacity(tasks);
    let mut start = 0;
    for i in 0..tasks {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `body` over `0..n` split into contiguous chunks, at most
/// `policy.threads` at a time. Chunks no smaller than `min_chunk`
/// (except the tail when `n` is small). With `threads == 1`, or when
/// the work is too small to split, runs `body(0..n)` inline.
pub fn parallel_for<F>(n: usize, policy: ExecPolicy, min_chunk: usize, body: &F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let max_tasks = if min_chunk == 0 {
        policy.threads
    } else {
        policy.threads.min(n.div_ceil(min_chunk))
    };
    if policy.is_sequential() || max_tasks <= 1 {
        body(0..n);
        return;
    }
    let chunks = chunk_bounds(n, max_tasks);
    Pool::global().run_scope(chunks.len(), &|i| body(chunks[i].clone()));
}

/// Runs `tasks` independent closures, at most `policy.threads` at a
/// time. Sequential policies run them in index order on the caller.
pub fn parallel_tasks<F>(tasks: usize, policy: ExecPolicy, body: &F)
where
    F: Fn(usize) + Sync,
{
    if policy.is_sequential() || tasks <= 1 {
        for i in 0..tasks {
            body(i);
        }
        return;
    }
    Pool::global().run_scope(tasks, body);
}

/// Maps `f` over `items` in parallel chunks and returns the results in
/// input order. Output is identical for every policy; only wall-clock
/// differs.
pub fn parallel_map<T, R, F>(items: &[T], policy: ExecPolicy, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if policy.is_sequential() || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let pieces: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    parallel_for(items.len(), policy, 1, &|range| {
        let start = range.start;
        let piece: Vec<R> = items[range].iter().map(&f).collect();
        pieces.lock().unwrap().push((start, piece));
    });
    let mut pieces = pieces.into_inner().unwrap();
    pieces.sort_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(items.len());
    for (_, piece) in pieces {
        out.extend(piece);
    }
    out
}

/// Runs two closures, concurrently when the policy allows it, and
/// returns both results. Sequential policies run `a` then `b` inline on
/// the caller — that order is the reference semantics, so `a` and `b`
/// must not depend on interleaving (the streaming gzip path uses this
/// to overlap checksumming of the previous chunk with inflating the
/// next one; the two closures touch disjoint buffers).
pub fn parallel_join<A, B, RA, RB>(policy: ExecPolicy, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if policy.is_sequential() {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    // run_scope wants Fn + Sync; smuggle the FnOnce closures through
    // Mutex<Option<_>> cells. Each index runs exactly once, so take()
    // always finds the closure.
    let a_cell = Mutex::new(Some(a));
    let b_cell = Mutex::new(Some(b));
    let ra_cell: Mutex<Option<RA>> = Mutex::new(None);
    let rb_cell: Mutex<Option<RB>> = Mutex::new(None);
    Pool::global().run_scope(2, &|i| {
        if i == 0 {
            let f = a_cell.lock().unwrap().take().expect("task 0 runs once");
            *ra_cell.lock().unwrap() = Some(f());
        } else {
            let f = b_cell.lock().unwrap().take().expect("task 1 runs once");
            *rb_cell.lock().unwrap() = Some(f());
        }
    });
    (
        ra_cell.into_inner().unwrap().expect("task 0 completed"),
        rb_cell.into_inner().unwrap().expect("task 1 completed"),
    )
}

/// Shared state of a bounded producer→consumer hand-off.
struct PipeShared<T, E> {
    state: Mutex<PipeState<T, E>>,
    cond: std::sync::Condvar,
}

struct PipeState<T, E> {
    queue: std::collections::VecDeque<Result<T, E>>,
    /// Producer finished (returned `None`).
    done: bool,
    /// Consumer finished (its closure returned); producer should stop.
    closed: bool,
}

/// The consumer's end of a [`with_pipeline`] hand-off.
///
/// [`pull`](Self::pull) yields exactly the sequence the producer
/// closure returns, in order — whether the producer runs inline
/// (sequential policy) or ahead on a pipeline thread.
pub struct PipelineRx<'a, T, E> {
    inner: RxInner<'a, T, E>,
}

enum RxInner<'a, T, E> {
    Inline(&'a mut dyn FnMut() -> Option<Result<T, E>>),
    Queue(&'a PipeShared<T, E>),
}

impl<T, E> PipelineRx<'_, T, E> {
    /// Next produced item, or `None` once the producer is exhausted.
    /// Blocks while the pipeline thread is still filling the queue.
    pub fn pull(&mut self) -> Option<Result<T, E>> {
        match &mut self.inner {
            RxInner::Inline(produce) => produce(),
            RxInner::Queue(shared) => {
                let mut st = shared.state.lock().unwrap();
                loop {
                    if let Some(item) = st.queue.pop_front() {
                        // A slot freed: wake a producer blocked on depth.
                        shared.cond.notify_all();
                        return Some(item);
                    }
                    if st.done {
                        return None;
                    }
                    st = shared.cond.wait(st).unwrap();
                }
            }
        }
    }
}

/// Runs `produce` and `consume` as a two-stage pipeline: the producer
/// fills a bounded queue (at most `depth` items in flight) while the
/// consumer drains it on the calling thread.
///
/// `produce` is called repeatedly until it returns `None`; each
/// `Some(item)` — `Ok` or `Err` — is delivered to the consumer in
/// production order through [`PipelineRx::pull`]. Sequential policies
/// call `produce` inline from `pull` with no thread and no queue: that
/// path is the reference semantics, and the pipelined path delivers the
/// bit-identical item sequence (a FIFO queue cannot reorder a single
/// producer). The only observable difference is eagerness: the
/// pipeline thread may run `produce` up to `depth` calls ahead of the
/// consumer, so producer side effects (trace counters, say) can exceed
/// what a consumer that stops early would have triggered inline.
///
/// If the consumer returns while the producer is still running, the
/// hand-off is closed and the producer stops after its in-flight call;
/// remaining queued items are dropped.
///
/// The streaming ingest path uses this to overlap inflating chunk N+1
/// with wire-decoding chunk N (paper §3's "profiles parse while they
/// load" requirement at GB scale).
pub fn with_pipeline<T, E, R>(
    policy: ExecPolicy,
    depth: usize,
    mut produce: impl FnMut() -> Option<Result<T, E>> + Send,
    consume: impl FnOnce(&mut PipelineRx<'_, T, E>) -> R,
) -> R
where
    T: Send,
    E: Send,
{
    if policy.is_sequential() {
        let mut rx = PipelineRx {
            inner: RxInner::Inline(&mut produce),
        };
        return consume(&mut rx);
    }
    let depth = depth.max(1);
    let shared = PipeShared {
        state: Mutex::new(PipeState {
            queue: std::collections::VecDeque::with_capacity(depth),
            done: false,
            closed: false,
        }),
        cond: std::sync::Condvar::new(),
    };
    // A dedicated scoped thread, not a pool task: pool scopes are
    // fork-join (the submitter blocks until every task finishes), while
    // a pipeline stage must run *concurrently with the submitter* for
    // its whole lifetime. Parking a pool worker on a long-lived stage
    // would also starve nested fork-join calls the producer itself
    // makes (the gzip stage checksums chunks through the pool).
    std::thread::scope(|s| {
        s.spawn(|| loop {
            let item = produce();
            let end = item.is_none();
            let mut st = shared.state.lock().unwrap();
            if let Some(item) = item {
                while st.queue.len() >= depth && !st.closed {
                    st = shared.cond.wait(st).unwrap();
                }
                if st.closed {
                    return;
                }
                st.queue.push_back(item);
            } else {
                st.done = true;
            }
            drop(st);
            shared.cond.notify_all();
            if end {
                return;
            }
        });
        let mut rx = PipelineRx {
            inner: RxInner::Queue(&shared),
        };
        let r = consume(&mut rx);
        let mut st = shared.state.lock().unwrap();
        st.closed = true;
        st.queue.clear();
        drop(st);
        shared.cond.notify_all();
        r
    })
}

/// Number of workers the global pool runs (spawning it if needed).
pub fn pool_workers() -> usize {
    Pool::global().workers()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_bounds_cover_exactly() {
        for n in [0usize, 1, 5, 17, 100, 1001] {
            for tasks in [1usize, 2, 3, 7, 16] {
                let chunks = chunk_bounds(n, tasks);
                let mut next = 0;
                for c in &chunks {
                    assert_eq!(c.start, next);
                    next = c.end;
                }
                assert_eq!(next, n);
                if n > 0 {
                    assert!(chunks.iter().all(|c| !c.is_empty()));
                }
            }
        }
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let counters: Vec<AtomicUsize> = (0..5000).map(|_| AtomicUsize::new(0)).collect();
        for threads in [1, 2, 4, 8] {
            counters.iter().for_each(|c| c.store(0, Ordering::Relaxed));
            parallel_for(5000, ExecPolicy::with_threads(threads), 16, &|range| {
                for i in range {
                    counters[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..3000).collect();
        let seq = parallel_map(&items, ExecPolicy::SEQUENTIAL, |&x| x * 3 + 1);
        for threads in [2, 4, 8] {
            let par = parallel_map(&items, ExecPolicy::with_threads(threads), |&x| x * 3 + 1);
            assert_eq!(par, seq);
        }
    }

    #[test]
    fn parallel_tasks_runs_each_task() {
        let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        parallel_tasks(37, ExecPolicy::with_threads(4), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn shared_slice_parallel_fill() {
        let mut data = vec![0u64; 10_000];
        let shared = SharedSlice::new(&mut data);
        parallel_for(10_000, ExecPolicy::with_threads(8), 64, &|range| {
            for i in range {
                unsafe { shared.set(i, i as u64 * 7) };
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 7));
    }

    #[test]
    fn panics_propagate_to_submitter() {
        let result = std::panic::catch_unwind(|| {
            parallel_for(100, ExecPolicy::with_threads(4), 1, &|range| {
                if range.contains(&50) {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_scopes_complete() {
        let total = AtomicUsize::new(0);
        parallel_tasks(4, ExecPolicy::with_threads(4), &|_outer| {
            parallel_for(100, ExecPolicy::with_threads(2), 10, &|range| {
                total.fetch_add(range.len(), Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn parallel_join_returns_both_results() {
        for threads in [1, 2, 8] {
            let data: Vec<u64> = (0..1000).collect();
            let (sum, max) = parallel_join(
                ExecPolicy::with_threads(threads),
                || data.iter().sum::<u64>(),
                || data.iter().copied().max(),
            );
            assert_eq!(sum, 499_500);
            assert_eq!(max, Some(999));
        }
    }

    #[test]
    fn parallel_join_moves_captures() {
        // FnOnce closures: consume owned values on both sides.
        let left = String::from("left");
        let right = [1u8, 2, 3];
        let (a, b) = parallel_join(
            ExecPolicy::with_threads(4),
            move || left,
            move || right.len(),
        );
        assert_eq!(a, "left");
        assert_eq!(b, 3);
    }

    #[test]
    fn pipeline_delivers_in_order_for_every_policy() {
        for threads in [1, 2, 8] {
            let mut next = 0u32;
            let got: Vec<u32> = with_pipeline(
                ExecPolicy::with_threads(threads),
                2,
                move || -> Option<Result<u32, ()>> {
                    if next < 500 {
                        next += 1;
                        Some(Ok(next))
                    } else {
                        None
                    }
                },
                |rx| {
                    let mut out = Vec::new();
                    while let Some(item) = rx.pull() {
                        out.push(item.unwrap());
                    }
                    out
                },
            );
            assert_eq!(got, (1..=500).collect::<Vec<u32>>(), "threads {threads}");
        }
    }

    #[test]
    fn pipeline_passes_errors_through_in_sequence() {
        for threads in [1, 4] {
            let mut n = 0;
            let got = with_pipeline(
                ExecPolicy::with_threads(threads),
                2,
                move || {
                    n += 1;
                    match n {
                        1 => Some(Ok(10)),
                        2 => Some(Err("bad")),
                        _ => None,
                    }
                },
                |rx| {
                    let mut out = Vec::new();
                    while let Some(item) = rx.pull() {
                        out.push(item);
                    }
                    out
                },
            );
            assert_eq!(got, vec![Ok(10), Err("bad")]);
        }
    }

    #[test]
    fn pipeline_consumer_may_stop_early() {
        // An unbounded producer with a consumer that takes three items:
        // closing the hand-off must stop the producer (no deadlock on a
        // full queue) and cap how far ahead it ran.
        let calls = AtomicUsize::new(0);
        let got = with_pipeline(
            ExecPolicy::with_threads(4),
            2,
            || -> Option<Result<usize, ()>> {
                Some(Ok(calls.fetch_add(1, Ordering::Relaxed)))
            },
            |rx| (0..3).map(|_| rx.pull().unwrap().unwrap()).collect::<Vec<_>>(),
        );
        assert_eq!(got, vec![0, 1, 2]);
        // 3 consumed + depth in flight + one call draining into the close.
        assert!(calls.load(Ordering::Relaxed) <= 3 + 2 + 1);
    }

    #[test]
    fn pipeline_pull_after_done_returns_none() {
        for threads in [1, 4] {
            with_pipeline(
                ExecPolicy::with_threads(threads),
                1,
                || -> Option<Result<(), ()>> { None },
                |rx| {
                    assert!(rx.pull().is_none());
                    assert!(rx.pull().is_none());
                },
            );
        }
    }

    #[test]
    fn sequential_policy_runs_inline() {
        let thread_id = std::thread::current().id();
        parallel_for(100, ExecPolicy::SEQUENTIAL, 1, &|_range| {
            assert_eq!(std::thread::current().id(), thread_id);
        });
    }
}

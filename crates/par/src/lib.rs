//! `ev-par` — EasyView's from-scratch scoped thread pool.
//!
//! The analysis engine (paper §4) must aggregate, diff, and re-lay-out
//! profiles interactively; those paths are tree traversals and
//! multi-profile merges that scale with cores. Per the workspace
//! charter everything is built on std only — no rayon, no crossbeam:
//! `std::thread` workers, `Mutex<VecDeque>` work-stealing deques, and a
//! `Condvar` for sleep/wake.
//!
//! # Execution model
//!
//! A single process-wide pool spawns lazily on first parallel call and
//! lives for the process. Work enters as *scoped jobs*: the submitting
//! thread publishes chunk tasks, participates in execution, and does
//! not return until every task has completed (which is what makes
//! borrowing stack data from tasks sound). Workers pop their own deque
//! LIFO and steal from others FIFO.
//!
//! # Determinism contract
//!
//! Every parallel algorithm built on this crate must produce output
//! **bit-identical** to its sequential specialization, for any thread
//! count. The pool itself guarantees nothing about ordering — callers
//! achieve determinism by fixing the *reduction shape* independently of
//! [`ExecPolicy::threads`] (e.g. a balanced merge tree keyed only on
//! input count, or disjoint per-subtree writes with a fixed sequential
//! accumulation order inside each subtree). `threads == 1` always runs
//! inline on the caller with no pool involvement at all: that path *is*
//! the sequential reference implementation.
//!
//! # Example
//!
//! ```
//! use ev_par::{parallel_for, ExecPolicy, SharedSlice};
//!
//! let mut squares = vec![0u64; 1000];
//! let shared = SharedSlice::new(&mut squares);
//! parallel_for(1000, ExecPolicy::auto(), 64, &|range| {
//!     for i in range {
//!         // Chunks are disjoint, so each index is written once.
//!         unsafe { shared.set(i, (i as u64) * (i as u64)) };
//!     }
//! });
//! assert_eq!(squares[31], 961);
//! ```

mod pool;
mod slice;

pub use slice::SharedSlice;

use pool::Pool;
use std::ops::Range;
use std::sync::Mutex;

/// How much parallelism a call may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Upper bound on concurrently executing tasks. `1` means strictly
    /// sequential inline execution (the reference path).
    pub threads: usize,
}

impl ExecPolicy {
    /// Strictly sequential: run inline on the caller.
    pub const SEQUENTIAL: ExecPolicy = ExecPolicy { threads: 1 };

    /// Use every available hardware thread.
    pub fn auto() -> ExecPolicy {
        ExecPolicy {
            threads: max_threads(),
        }
    }

    /// Use at most `threads` threads (clamped to at least 1).
    pub fn with_threads(threads: usize) -> ExecPolicy {
        ExecPolicy {
            threads: threads.max(1),
        }
    }

    /// Whether this policy runs inline without the pool.
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }
}

impl Default for ExecPolicy {
    fn default() -> ExecPolicy {
        ExecPolicy::auto()
    }
}

/// Number of hardware threads, bounded to keep deque scans cheap.
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 32)
}

/// Splits `0..n` into `tasks` near-equal chunks, largest first.
fn chunk_bounds(n: usize, tasks: usize) -> Vec<Range<usize>> {
    let tasks = tasks.clamp(1, n.max(1));
    let base = n / tasks;
    let rem = n % tasks;
    let mut out = Vec::with_capacity(tasks);
    let mut start = 0;
    for i in 0..tasks {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `body` over `0..n` split into contiguous chunks, at most
/// `policy.threads` at a time. Chunks no smaller than `min_chunk`
/// (except the tail when `n` is small). With `threads == 1`, or when
/// the work is too small to split, runs `body(0..n)` inline.
pub fn parallel_for<F>(n: usize, policy: ExecPolicy, min_chunk: usize, body: &F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let max_tasks = if min_chunk == 0 {
        policy.threads
    } else {
        policy.threads.min(n.div_ceil(min_chunk))
    };
    if policy.is_sequential() || max_tasks <= 1 {
        body(0..n);
        return;
    }
    let chunks = chunk_bounds(n, max_tasks);
    Pool::global().run_scope(chunks.len(), &|i| body(chunks[i].clone()));
}

/// Runs `tasks` independent closures, at most `policy.threads` at a
/// time. Sequential policies run them in index order on the caller.
pub fn parallel_tasks<F>(tasks: usize, policy: ExecPolicy, body: &F)
where
    F: Fn(usize) + Sync,
{
    if policy.is_sequential() || tasks <= 1 {
        for i in 0..tasks {
            body(i);
        }
        return;
    }
    Pool::global().run_scope(tasks, body);
}

/// Maps `f` over `items` in parallel chunks and returns the results in
/// input order. Output is identical for every policy; only wall-clock
/// differs.
pub fn parallel_map<T, R, F>(items: &[T], policy: ExecPolicy, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if policy.is_sequential() || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let pieces: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    parallel_for(items.len(), policy, 1, &|range| {
        let start = range.start;
        let piece: Vec<R> = items[range].iter().map(&f).collect();
        pieces.lock().unwrap().push((start, piece));
    });
    let mut pieces = pieces.into_inner().unwrap();
    pieces.sort_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(items.len());
    for (_, piece) in pieces {
        out.extend(piece);
    }
    out
}

/// Number of workers the global pool runs (spawning it if needed).
pub fn pool_workers() -> usize {
    Pool::global().workers()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_bounds_cover_exactly() {
        for n in [0usize, 1, 5, 17, 100, 1001] {
            for tasks in [1usize, 2, 3, 7, 16] {
                let chunks = chunk_bounds(n, tasks);
                let mut next = 0;
                for c in &chunks {
                    assert_eq!(c.start, next);
                    next = c.end;
                }
                assert_eq!(next, n);
                if n > 0 {
                    assert!(chunks.iter().all(|c| !c.is_empty()));
                }
            }
        }
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let counters: Vec<AtomicUsize> = (0..5000).map(|_| AtomicUsize::new(0)).collect();
        for threads in [1, 2, 4, 8] {
            counters.iter().for_each(|c| c.store(0, Ordering::Relaxed));
            parallel_for(5000, ExecPolicy::with_threads(threads), 16, &|range| {
                for i in range {
                    counters[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..3000).collect();
        let seq = parallel_map(&items, ExecPolicy::SEQUENTIAL, |&x| x * 3 + 1);
        for threads in [2, 4, 8] {
            let par = parallel_map(&items, ExecPolicy::with_threads(threads), |&x| x * 3 + 1);
            assert_eq!(par, seq);
        }
    }

    #[test]
    fn parallel_tasks_runs_each_task() {
        let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        parallel_tasks(37, ExecPolicy::with_threads(4), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn shared_slice_parallel_fill() {
        let mut data = vec![0u64; 10_000];
        let shared = SharedSlice::new(&mut data);
        parallel_for(10_000, ExecPolicy::with_threads(8), 64, &|range| {
            for i in range {
                unsafe { shared.set(i, i as u64 * 7) };
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 7));
    }

    #[test]
    fn panics_propagate_to_submitter() {
        let result = std::panic::catch_unwind(|| {
            parallel_for(100, ExecPolicy::with_threads(4), 1, &|range| {
                if range.contains(&50) {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_scopes_complete() {
        let total = AtomicUsize::new(0);
        parallel_tasks(4, ExecPolicy::with_threads(4), &|_outer| {
            parallel_for(100, ExecPolicy::with_threads(2), 10, &|range| {
                total.fetch_add(range.len(), Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn sequential_policy_runs_inline() {
        let thread_id = std::thread::current().id();
        parallel_for(100, ExecPolicy::SEQUENTIAL, 1, &|_range| {
            assert_eq!(std::thread::current().id(), thread_id);
        });
    }
}

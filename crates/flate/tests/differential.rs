//! Differential tests: the fast LUT `inflate` against the retained
//! bit-at-a-time `inflate_reference` through the public API. The two
//! must agree on output bytes *and* on which error is returned for
//! every stream — compressed at every level, truncated, corrupted, or
//! plain random bytes.

use ev_flate::{
    deflate_compress, inflate, inflate_reference, inflate_with_size_hint, CompressionLevel,
    FlateError,
};
use ev_test::prelude::*;

const LEVELS: [CompressionLevel; 3] = [
    CompressionLevel::Store,
    CompressionLevel::Fast,
    CompressionLevel::High,
];

/// Both decoders over one input; results (bytes and errors) must match.
fn both(input: &[u8]) -> Result<Vec<u8>, FlateError> {
    let fast = inflate(input);
    let reference = inflate_reference(input);
    assert_eq!(fast, reference, "decoder disagreement on {} bytes", input.len());
    fast
}

#[test]
fn roundtrip_all_levels() {
    let data: Vec<u8> = (0..50_000u32)
        .flat_map(|i| format!("sample_{} ", i % 313).into_bytes())
        .collect();
    for level in LEVELS {
        let compressed = deflate_compress(&data, level);
        assert_eq!(both(&compressed).unwrap(), data, "{level:?}");
    }
}

#[test]
fn every_truncation_of_a_small_stream_agrees() {
    let data = b"abcabcabcabc swiftly compressed".repeat(4);
    for level in LEVELS {
        let compressed = deflate_compress(&data, level);
        for cut in 0..compressed.len() {
            let _ = both(&compressed[..cut]);
        }
    }
}

#[test]
fn single_byte_corruptions_agree() {
    let data = b"the quick brown fox jumps over the lazy dog ".repeat(8);
    for level in LEVELS {
        let compressed = deflate_compress(&data, level);
        // Flip each byte of the header region and a sample of the body.
        for i in (0..compressed.len()).step_by(7).chain(0..16.min(compressed.len())) {
            let mut bad = compressed.clone();
            bad[i] ^= 0xff;
            let _ = both(&bad);
        }
    }
}

#[test]
fn size_hint_never_changes_output() {
    let data = b"hint independence ".repeat(100);
    let compressed = deflate_compress(&data, CompressionLevel::High);
    for hint in [0, 1, data.len(), data.len() * 10, usize::MAX] {
        assert_eq!(
            inflate_with_size_hint(&compressed, hint).unwrap(),
            data,
            "hint {hint}"
        );
    }
}

property! {
    #![cases(64)]

    // Mixed-content payloads across all three block types.
    fn differential_roundtrip(data in vec(any_u8(), 0..4096), pick in 0usize..3) {
        let compressed = deflate_compress(&data, LEVELS[pick]);
        prop_assert_eq!(both(&compressed).unwrap(), data);
    }

    // Compressible payloads (repeated runs) hit the LZ77 match copy
    // paths hard, including overlapping distances.
    fn differential_repetitive(unit in vec(any_u8(), 1..12), reps in 1usize..600, pick in 0usize..3) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let compressed = deflate_compress(&data, LEVELS[pick]);
        prop_assert_eq!(both(&compressed).unwrap(), data);
    }

    // Random truncation points on valid streams.
    fn differential_truncated(data in vec(any_u8(), 0..2048), cut_frac in 0u32..1000, pick in 0usize..3) {
        let compressed = deflate_compress(&data, LEVELS[pick]);
        let cut = (compressed.len() as u64 * u64::from(cut_frac) / 1000) as usize;
        let _ = both(&compressed[..cut]);
    }

    // Pure noise: both decoders must reject (or accept) identically and
    // never panic.
    fn differential_random_garbage(data in vec(any_u8(), 0..512)) {
        let _ = both(&data);
    }

    // Noise with a plausible block header prepended, to get past the
    // first 3 bits more often and into table parsing.
    fn differential_garbage_dynamic_header(data in vec(any_u8(), 0..256)) {
        let mut stream = vec![0b0000_0101u8]; // BFINAL=1, BTYPE=10 (dynamic)
        stream.extend_from_slice(&data);
        let _ = both(&stream);
    }
}

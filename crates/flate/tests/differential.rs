//! Differential tests: the fast LUT `inflate` against the retained
//! bit-at-a-time `inflate_reference` through the public API. The two
//! must agree on output bytes *and* on which error is returned for
//! every stream — compressed at every level, truncated, corrupted, or
//! plain random bytes.

use ev_flate::{
    crc32, crc32_reference, deflate_compress, gzip_compress, gzip_decompress,
    gzip_decompress_with, inflate, inflate_member, inflate_reference, inflate_reference_member,
    inflate_with_size_hint, CompressionLevel, ExecPolicy, FlateError,
};
use ev_test::prelude::*;

const LEVELS: [CompressionLevel; 3] = [
    CompressionLevel::Store,
    CompressionLevel::Fast,
    CompressionLevel::High,
];

/// Both decoders over one input; results (bytes and errors) must match.
fn both(input: &[u8]) -> Result<Vec<u8>, FlateError> {
    let fast = inflate(input);
    let reference = inflate_reference(input);
    assert_eq!(fast, reference, "decoder disagreement on {} bytes", input.len());
    // The member-streaming entry points must agree on output, error,
    // *and* the consumed-byte count (the member boundary).
    let fast_member = inflate_member(input, 0);
    let ref_member = inflate_reference_member(input);
    assert_eq!(fast_member, ref_member, "member decoders disagree");
    match (&fast, &fast_member) {
        (Ok(bytes), Ok((member_bytes, consumed))) => {
            assert_eq!(bytes, member_bytes);
            assert!(*consumed <= input.len());
        }
        (Err(e1), Err(e2)) => assert_eq!(e1, e2),
        _ => panic!("inflate and inflate_member disagree on success"),
    }
    fast
}

#[test]
fn roundtrip_all_levels() {
    let data: Vec<u8> = (0..50_000u32)
        .flat_map(|i| format!("sample_{} ", i % 313).into_bytes())
        .collect();
    for level in LEVELS {
        let compressed = deflate_compress(&data, level);
        assert_eq!(both(&compressed).unwrap(), data, "{level:?}");
    }
}

#[test]
fn every_truncation_of_a_small_stream_agrees() {
    let data = b"abcabcabcabc swiftly compressed".repeat(4);
    for level in LEVELS {
        let compressed = deflate_compress(&data, level);
        for cut in 0..compressed.len() {
            let _ = both(&compressed[..cut]);
        }
    }
}

#[test]
fn single_byte_corruptions_agree() {
    let data = b"the quick brown fox jumps over the lazy dog ".repeat(8);
    for level in LEVELS {
        let compressed = deflate_compress(&data, level);
        // Flip each byte of the header region and a sample of the body.
        for i in (0..compressed.len()).step_by(7).chain(0..16.min(compressed.len())) {
            let mut bad = compressed.clone();
            bad[i] ^= 0xff;
            let _ = both(&bad);
        }
    }
}

#[test]
fn size_hint_never_changes_output() {
    let data = b"hint independence ".repeat(100);
    let compressed = deflate_compress(&data, CompressionLevel::High);
    for hint in [0, 1, data.len(), data.len() * 10, usize::MAX] {
        assert_eq!(
            inflate_with_size_hint(&compressed, hint).unwrap(),
            data,
            "hint {hint}"
        );
    }
}

#[test]
fn member_boundary_is_exact_with_trailing_bytes() {
    // Appending arbitrary bytes after a complete DEFLATE stream must
    // change neither the output nor the reported consumed length.
    let data = b"boundary test payload ".repeat(20);
    for level in LEVELS {
        let compressed = deflate_compress(&data, level);
        let (out, consumed) = inflate_member(&compressed, data.len()).unwrap();
        assert_eq!(out, data);
        assert_eq!(consumed, compressed.len(), "{level:?}");
        let mut extended = compressed.clone();
        extended.extend_from_slice(b"\x1f\x8b\x08 trailing member-ish bytes");
        let (out2, consumed2) = inflate_member(&extended, data.len()).unwrap();
        assert_eq!(out2, data);
        assert_eq!(consumed2, compressed.len(), "{level:?} with tail");
    }
}

#[test]
fn crc32_rfc1952_check_vector() {
    // RFC 1952 CRC-32 over "123456789" — the catalogue check value.
    assert_eq!(crc32(b"123456789"), 0xcbf43926);
    assert_eq!(crc32_reference(b"123456789"), 0xcbf43926);
}

property! {
    #![cases(64)]

    // The slice-by-8 CRC kernel against the byte-wise reference over
    // random lengths and alignments (offset slicing shifts the 8-byte
    // chunk window across every phase).
    fn crc_kernels_agree(data in vec(any_u8(), 0..2048), offset in 0usize..8) {
        let sub = &data[offset.min(data.len())..];
        prop_assert_eq!(crc32(sub), crc32_reference(sub));
    }

    // N random members concatenated decode to the same bytes as the
    // members decompressed individually, at every thread count.
    fn multi_member_matches_individual(
        parts in vec(vec(any_u8(), 0..512), 1..6),
        pick in 0usize..3,
        threads in 1usize..9,
    ) {
        let mut concatenated = Vec::new();
        let mut expected = Vec::new();
        for part in &parts {
            let gz = gzip_compress(part, LEVELS[pick]);
            prop_assert_eq!(gzip_decompress(&gz).unwrap(), part.clone());
            concatenated.extend_from_slice(&gz);
            expected.extend_from_slice(part);
        }
        let seq = gzip_decompress(&concatenated).unwrap();
        prop_assert_eq!(&seq, &expected);
        let par = gzip_decompress_with(&concatenated, ExecPolicy::with_threads(threads)).unwrap();
        prop_assert_eq!(&par, &seq);
    }

    // Mixed-content payloads across all three block types.
    fn differential_roundtrip(data in vec(any_u8(), 0..4096), pick in 0usize..3) {
        let compressed = deflate_compress(&data, LEVELS[pick]);
        prop_assert_eq!(both(&compressed).unwrap(), data);
    }

    // Compressible payloads (repeated runs) hit the LZ77 match copy
    // paths hard, including overlapping distances.
    fn differential_repetitive(unit in vec(any_u8(), 1..12), reps in 1usize..600, pick in 0usize..3) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let compressed = deflate_compress(&data, LEVELS[pick]);
        prop_assert_eq!(both(&compressed).unwrap(), data);
    }

    // Random truncation points on valid streams.
    fn differential_truncated(data in vec(any_u8(), 0..2048), cut_frac in 0u32..1000, pick in 0usize..3) {
        let compressed = deflate_compress(&data, LEVELS[pick]);
        let cut = (compressed.len() as u64 * u64::from(cut_frac) / 1000) as usize;
        let _ = both(&compressed[..cut]);
    }

    // Pure noise: both decoders must reject (or accept) identically and
    // never panic.
    fn differential_random_garbage(data in vec(any_u8(), 0..512)) {
        let _ = both(&data);
    }

    // Noise with a plausible block header prepended, to get past the
    // first 3 bits more often and into table parsing.
    fn differential_garbage_dynamic_header(data in vec(any_u8(), 0..256)) {
        let mut stream = vec![0b0000_0101u8]; // BFINAL=1, BTYPE=10 (dynamic)
        stream.extend_from_slice(&data);
        let _ = both(&stream);
    }
}

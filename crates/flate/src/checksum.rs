//! CRC-32 (IEEE 802.3 polynomial), as used by the gzip trailer.

/// Builds the byte-indexed CRC table for the reflected polynomial
/// 0xEDB88320 at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_table();

/// Computes the CRC-32 of `data` (initial value 0xFFFFFFFF, final XOR),
/// compatible with gzip, zlib's `crc32()`, and PNG.
///
/// # Examples
///
/// ```
/// assert_eq!(ev_flate::crc32(b"123456789"), 0xcbf43926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        // The universal CRC catalogue check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xcbf43926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn known_strings() {
        assert_eq!(crc32(b"a"), 0xe8b7be43);
        assert_eq!(crc32(b"abc"), 0x352441c2);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414fa339);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"easyview");
        let b = crc32(b"easyviews");
        let c = crc32(b"easyvieW");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}

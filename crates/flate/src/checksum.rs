//! CRC-32 (IEEE 802.3 polynomial), as used by the gzip trailer.
//!
//! Two kernels live here and must agree on every input:
//!
//! * [`crc32`] — the production slice-by-8 kernel: eight byte-indexed
//!   tables let one loop iteration fold eight input bytes with eight
//!   independent table loads (no loop-carried dependency between
//!   them), which is what lets the compiler keep the XOR tree in
//!   registers and schedule the loads wide.
//! * [`crc32_reference`] — the classic one-table byte-at-a-time
//!   Sarwate kernel, retained as the oracle for differential testing
//!   (`tests/differential.rs`).

/// The reflected CRC-32 polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xedb8_8320;

/// Builds the eight slice-by-8 tables at compile time. `TABLES[0]` is
/// the classic byte-indexed Sarwate table; `TABLES[k][b]` extends it so
/// that processing byte `b` through table `k` accounts for `k`
/// additional zero bytes shifted through the register — exactly the
/// relation `TABLES[k][b] = (TABLES[k-1][b] >> 8) ^ TABLES[0][TABLES[k-1][b] & 0xff]`.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = build_tables();

/// Computes the CRC-32 of `data` (initial value 0xFFFFFFFF, final XOR),
/// compatible with gzip, zlib's `crc32()`, and PNG.
///
/// This is the slice-by-8 kernel: 8 bytes per iteration, 8 independent
/// table loads folded by an XOR tree. Differentially tested against
/// [`crc32_reference`] over random lengths and alignments.
///
/// # Examples
///
/// ```
/// assert_eq!(ev_flate::crc32(b"123456789"), 0xcbf43926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_fold(0xffff_ffff, data)
}

/// Folds `data` into a raw (pre-inversion) CRC register with the
/// slice-by-8 kernel. CRC-32 is a byte-sequential fold, so feeding a
/// buffer in arbitrary splits through this produces the same register
/// as one pass — the property [`Crc32`] and the streaming gzip path
/// rely on.
fn crc32_fold(state: u32, data: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut crc = state;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = crc ^ u32::from_le_bytes(chunk[..4].try_into().expect("4 bytes"));
        let hi = u32::from_le_bytes(chunk[4..].try_into().expect("4 bytes"));
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    crc
}

/// Incremental CRC-32 state for callers that see the data in pieces —
/// the streaming gzip decoder checksums each inflated chunk as it is
/// emitted instead of re-reading the whole member at the trailer.
///
/// Splitting the input at any byte boundary is exact: `update` folds
/// through the same slice-by-8 kernel as [`crc32`], and
/// `Crc32::new().update(a).update(b)` equals `crc32(a ++ b)` for every
/// split (differentially property-tested below).
///
/// # Examples
///
/// ```
/// use ev_flate::Crc32;
///
/// let mut crc = Crc32::new();
/// crc.update(b"1234");
/// crc.update(b"56789");
/// assert_eq!(crc.finish(), ev_flate::crc32(b"123456789"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state, equivalent to having hashed zero bytes.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xffff_ffff }
    }

    /// Folds `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        self.state = crc32_fold(self.state, data);
    }

    /// The CRC-32 of every byte fed so far. Non-consuming: feeding more
    /// bytes afterwards continues the same stream.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

/// The original one-table byte-at-a-time CRC-32 kernel, kept as the
/// differential reference for [`crc32`]. Same parameters, same result,
/// roughly 8× the per-byte dependency chain.
pub fn crc32_reference(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_test::prelude::*;

    #[test]
    fn standard_check_value() {
        // The universal CRC catalogue check value for CRC-32/ISO-HDLC
        // (RFC 1952's CRC over "123456789").
        assert_eq!(crc32(b"123456789"), 0xcbf43926);
        assert_eq!(crc32_reference(b"123456789"), 0xcbf43926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32_reference(b""), 0);
    }

    #[test]
    fn known_strings() {
        assert_eq!(crc32(b"a"), 0xe8b7be43);
        assert_eq!(crc32(b"abc"), 0x352441c2);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414fa339);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"easyview");
        let b = crc32(b"easyviews");
        let c = crc32(b"easyvieW");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn kernels_agree_on_every_length_through_two_blocks() {
        // 0..=17 covers every remainder class on both sides of the
        // 8-byte slice boundary, including the empty input.
        let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
        for len in 0..=data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_reference(&data[..len]),
                "len {len}"
            );
        }
    }

    property! {
        #![cases(64)]

        fn slice_by_8_matches_reference(data in vec(any_u8(), 0..1024)) {
            prop_assert_eq!(crc32(&data), crc32_reference(&data));
        }

        fn alignment_does_not_matter(data in vec(any_u8(), 16..256), skip in 0usize..16) {
            // Sub-slicing at every offset shifts the 8-byte chunking
            // window; both kernels are pure functions of the bytes.
            let sub = &data[skip.min(data.len())..];
            prop_assert_eq!(crc32(sub), crc32_reference(sub));
        }

        fn incremental_matches_one_shot(data in vec(any_u8(), 0..512), cuts in vec(0usize..513, 0..6)) {
            // Feeding the buffer through Crc32 in arbitrary pieces
            // (including empty ones when cuts collide) must match the
            // one-shot kernel exactly.
            let mut cuts: Vec<usize> = cuts.iter().map(|&c| c.min(data.len())).collect();
            cuts.sort_unstable();
            let mut crc = Crc32::new();
            let mut prev = 0;
            for &cut in &cuts {
                crc.update(&data[prev..cut]);
                prev = cut;
            }
            crc.update(&data[prev..]);
            prop_assert_eq!(crc.finish(), crc32(&data));
        }
    }
}

//! Canonical Huffman code construction and decoding.
//!
//! Decoding uses the counts/offsets scheme from RFC 1951 §3.2.2 (as in
//! Mark Adler's `puff`): for each code length we know how many codes
//! exist and which symbol the first code of that length maps to, so a
//! code can be decoded by walking lengths and comparing against the
//! running first-code value.

use crate::bits::BitReader;
use crate::FlateError;

/// Maximum code length permitted by DEFLATE.
pub const MAX_BITS: usize = 15;

/// A canonical Huffman decoding table built from code lengths.
#[derive(Debug, Clone)]
pub struct Huffman {
    /// `count[len]` = number of codes of length `len` (index 0 unused).
    count: [u16; MAX_BITS + 1],
    /// Symbols sorted by (code length, symbol value).
    symbols: Vec<u16>,
}

impl Huffman {
    /// Builds a decoding table from per-symbol code lengths (0 = unused).
    ///
    /// # Errors
    ///
    /// Returns [`FlateError::InvalidHuffmanTable`] when the lengths
    /// over-subscribe the code space. An incomplete (under-subscribed)
    /// code is accepted only for the single-code case, which DEFLATE
    /// permits for distance trees; other incomplete codes are accepted
    /// at build time and fail at decode time if a missing code appears,
    /// matching zlib's behaviour for degenerate distance tables.
    pub fn from_lengths(lengths: &[u8]) -> Result<Huffman, FlateError> {
        let mut count = [0u16; MAX_BITS + 1];
        for &len in lengths {
            let len = len as usize;
            if len > MAX_BITS {
                return Err(FlateError::InvalidHuffmanTable);
            }
            count[len] += 1;
        }
        // All zero lengths — a table with no codes; decode always fails.
        count[0] = 0;

        // Check the code space is not over-subscribed.
        let mut left: i32 = 1;
        for &n in &count[1..=MAX_BITS] {
            left <<= 1;
            left -= i32::from(n);
            if left < 0 {
                return Err(FlateError::InvalidHuffmanTable);
            }
        }

        // offsets[len] = index into `symbols` of the first symbol with
        // that code length.
        let mut offsets = [0usize; MAX_BITS + 1];
        for len in 1..MAX_BITS {
            offsets[len + 1] = offsets[len] + count[len] as usize;
        }

        let total: usize = count[1..].iter().map(|&c| c as usize).sum();
        let mut symbols = vec![0u16; total];
        for (symbol, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbols[offsets[len as usize]] = symbol as u16;
                offsets[len as usize] += 1;
            }
        }

        Ok(Huffman { count, symbols })
    }

    /// Decodes one symbol from the bit stream.
    ///
    /// # Errors
    ///
    /// Returns [`FlateError::InvalidSymbol`] if the bits read do not form
    /// a code in this table, or [`FlateError::UnexpectedEof`] on truncated
    /// input.
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, FlateError> {
        let mut code: u32 = 0;
        let mut first: u32 = 0;
        let mut index: usize = 0;
        for len in 1..=MAX_BITS {
            code |= reader.bit()?;
            let n = u32::from(self.count[len]);
            if code < first + n {
                return Ok(self.symbols[index + (code - first) as usize]);
            }
            index += n as usize;
            first = (first + n) << 1;
            code <<= 1;
        }
        Err(FlateError::InvalidSymbol)
    }
}

/// Primary-table width for literal/length tables (RFC 1951 fixed codes
/// are ≤ 9 bits, and zlib-style tables show 9–10 bits resolve almost
/// every dynamic code in one load).
pub const LITLEN_PRIMARY_BITS: u32 = 10;
/// Primary-table width for distance tables (fewer, shorter codes).
pub const DIST_PRIMARY_BITS: u32 = 8;

/// Marks a primary entry as a subtable pointer.
const SUB_FLAG: u32 = 1 << 31;

/// Packs a decoded `(symbol, code_len)` pair into a table entry.
/// `len == 0` (the all-zero entry) means "no code reaches here".
#[inline]
fn pack(symbol: u16, len: u8) -> u32 {
    (u32::from(len) << 16) | u32::from(symbol)
}

/// Reverses the low `len` bits of `code` (DEFLATE streams Huffman codes
/// MSB-first while the byte stream fills LSB-first).
#[inline]
fn reverse(code: u32, len: u32) -> u32 {
    code.reverse_bits() >> (32 - len)
}

/// A two-tier lookup-table Huffman decoder.
///
/// The primary table is indexed by the next `primary_bits` input bits
/// (LSB-first, zero-padded at EOF); each entry packs `(symbol,
/// code_len)` so one load resolves any code of length ≤ `primary_bits`.
/// Longer codes share a primary entry that points at a subtable indexed
/// by the following `sub_bits` input bits. Decoding is byte-for-byte
/// (and error-for-error) identical to [`Huffman::decode`], which is
/// retained as the reference decoder for differential testing.
#[derive(Debug, Clone)]
pub struct HuffmanLut {
    primary_bits: u32,
    primary: Vec<u32>,
    sub: Vec<u32>,
}

impl HuffmanLut {
    /// Builds the two-tier table from per-symbol code lengths
    /// (0 = unused), accepting and rejecting exactly the inputs
    /// [`Huffman::from_lengths`] does: over-subscribed code spaces are
    /// an error; incomplete codes build tables whose missing codes fail
    /// at decode time (degenerate single-code distance trees included).
    ///
    /// # Errors
    ///
    /// Returns [`FlateError::InvalidHuffmanTable`] when the lengths
    /// over-subscribe the code space or exceed [`MAX_BITS`].
    pub fn from_lengths(lengths: &[u8], primary_bits: u32) -> Result<HuffmanLut, FlateError> {
        debug_assert!((1..=MAX_BITS as u32).contains(&primary_bits));
        let mut count = [0u16; MAX_BITS + 1];
        for &len in lengths {
            if len as usize > MAX_BITS {
                return Err(FlateError::InvalidHuffmanTable);
            }
            count[len as usize] += 1;
        }
        count[0] = 0;
        let mut left: i32 = 1;
        for &n in &count[1..=MAX_BITS] {
            left <<= 1;
            left -= i32::from(n);
            if left < 0 {
                return Err(FlateError::InvalidHuffmanTable);
            }
        }

        // Canonical first-code value per length.
        let mut next_code = [0u32; MAX_BITS + 1];
        let mut code = 0u32;
        for len in 1..=MAX_BITS {
            code = (code + u32::from(count[len - 1])) << 1;
            next_code[len] = code;
        }

        // (symbol, len, code) in canonical order: length-major, symbol
        // value within a length — the same order `Huffman` sorts into.
        // Counting sort keeps this one pass over `lengths`; the table is
        // rebuilt per dynamic block, so construction is itself hot.
        let total: usize = count[1..].iter().map(|&c| c as usize).sum();
        let mut codes: Vec<(u16, u8, u32)> = vec![(0, 0, 0); total];
        let mut offsets = [0usize; MAX_BITS + 1];
        for len in 1..MAX_BITS {
            offsets[len + 1] = offsets[len] + count[len] as usize;
        }
        for (symbol, &len) in lengths.iter().enumerate() {
            if len != 0 {
                let l = len as usize;
                codes[offsets[l]] = (symbol as u16, len, next_code[l]);
                offsets[l] += 1;
                next_code[l] += 1;
            }
        }

        let pmask = (1u32 << primary_bits) - 1;
        let mut lut = HuffmanLut {
            primary_bits,
            primary: vec![0u32; 1usize << primary_bits],
            sub: Vec::new(),
        };

        // Short codes replicate across every primary index that begins
        // with the (reversed) code.
        for &(symbol, len, code) in &codes {
            let len_bits = u32::from(len);
            if len_bits > primary_bits {
                continue;
            }
            let entry = pack(symbol, len);
            let step = 1u32 << len_bits;
            let mut idx = reverse(code, len_bits);
            while idx <= pmask {
                lut.primary[idx as usize] = entry;
                idx += step;
            }
        }

        if codes.last().is_some_and(|&(_, len, _)| u32::from(len) > primary_bits) {
            // Subtable width per prefix = longest code sharing that
            // prefix minus the primary width. Canonical order keeps the
            // long codes of one prefix contiguous, but sizing first in
            // a separate pass is simpler than growing tables in place.
            let mut prefix_max = vec![0u8; 1usize << primary_bits];
            for &(_, len, code) in &codes {
                if u32::from(len) > primary_bits {
                    let prefix = (reverse(code, u32::from(len)) & pmask) as usize;
                    prefix_max[prefix] = prefix_max[prefix].max(len);
                }
            }
            for &(symbol, len, code) in &codes {
                let len_bits = u32::from(len);
                if len_bits <= primary_bits {
                    continue;
                }
                let rev = reverse(code, len_bits);
                let prefix = (rev & pmask) as usize;
                if lut.primary[prefix] & SUB_FLAG == 0 {
                    let sub_bits = u32::from(prefix_max[prefix]) - primary_bits;
                    let base = lut.sub.len() as u32;
                    debug_assert!(base <= 0xffff, "subtable base fits 16 bits");
                    lut.sub.extend(std::iter::repeat_n(0u32, 1usize << sub_bits));
                    lut.primary[prefix] = SUB_FLAG | (sub_bits << 16) | base;
                }
                let pointer = lut.primary[prefix];
                let base = (pointer & 0xffff) as usize;
                let sub_bits = (pointer >> 16) & 0x1f;
                let entry = pack(symbol, len);
                let step = 1u32 << (len_bits - primary_bits);
                let mut idx = rev >> primary_bits;
                while idx < (1u32 << sub_bits) {
                    lut.sub[base + idx as usize] = entry;
                    idx += step;
                }
            }
        }

        Ok(lut)
    }

    /// Resolves the entry for the next (peeked, zero-padded) `MAX_BITS`
    /// input bits. Returns the packed entry and whether a subtable hop
    /// was taken (for the fast-path/slow-path trace counters).
    #[inline]
    pub(crate) fn lookup(&self, bits: u32) -> (u32, bool) {
        let entry = self.primary[(bits & ((1 << self.primary_bits) - 1)) as usize];
        if entry & SUB_FLAG == 0 {
            return (entry, false);
        }
        let base = (entry & 0xffff) as usize;
        let sub_bits = (entry >> 16) & 0x1f;
        let idx = (bits >> self.primary_bits) & ((1 << sub_bits) - 1);
        (self.sub[base + idx as usize], true)
    }

    /// Decodes one symbol with full end-of-input checking; identical
    /// outputs and errors to [`Huffman::decode`] on every stream.
    ///
    /// # Errors
    ///
    /// Returns [`FlateError::InvalidSymbol`] if the next bits form no
    /// code in this table, or [`FlateError::UnexpectedEof`] when the
    /// input ends mid-code — exactly where the bit-at-a-time reference
    /// walker would raise them.
    #[inline]
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, FlateError> {
        reader.refill();
        let (entry, _) = self.lookup(reader.peek(MAX_BITS as u32));
        let len = entry >> 16;
        if len == 0 {
            // No code matches even the zero-padded peek, so none matches
            // any shorter prefix either (entries replicate): the walker
            // would consume MAX_BITS bits and fail, or hit EOF first.
            return Err(if reader.bits_left() >= MAX_BITS {
                FlateError::InvalidSymbol
            } else {
                FlateError::UnexpectedEof
            });
        }
        if len as usize > reader.bits_left() {
            // The match used zero padding past EOF; prefix-freeness
            // rules out any real code within the remaining bits, so the
            // walker would have drained them and hit EOF.
            return Err(FlateError::UnexpectedEof);
        }
        reader.consume(len);
        Ok((entry & 0xffff) as u16)
    }
}

/// Assigns canonical code values to symbols given their lengths,
/// returning `(code, length)` pairs. Used by the encoder.
pub fn canonical_codes(lengths: &[u8]) -> Vec<(u32, u8)> {
    let mut count = [0u32; MAX_BITS + 1];
    for &len in lengths {
        count[len as usize] += 1;
    }
    count[0] = 0;
    let mut next = [0u32; MAX_BITS + 1];
    let mut code = 0u32;
    for len in 1..=MAX_BITS {
        code = (code + count[len - 1]) << 1;
        next[len] = code;
    }
    lengths
        .iter()
        .map(|&len| {
            if len == 0 {
                (0, 0)
            } else {
                let c = next[len as usize];
                next[len as usize] += 1;
                (c, len)
            }
        })
        .collect()
}

/// The fixed literal/length code lengths from RFC 1951 §3.2.6.
pub fn fixed_literal_lengths() -> Vec<u8> {
    let mut lengths = vec![8u8; 288];
    for item in lengths.iter_mut().take(256).skip(144) {
        *item = 9;
    }
    for item in lengths.iter_mut().take(280).skip(256) {
        *item = 7;
    }
    lengths
}

/// The fixed distance code lengths (all 5 bits).
pub fn fixed_distance_lengths() -> Vec<u8> {
    vec![5u8; 30]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;
    use ev_test::prelude::*;

    #[test]
    fn rejects_oversubscribed_lengths() {
        // Three codes of length 1 cannot exist.
        assert_eq!(
            Huffman::from_lengths(&[1, 1, 1]).unwrap_err(),
            FlateError::InvalidHuffmanTable
        );
    }

    #[test]
    fn rejects_length_over_15() {
        assert_eq!(
            Huffman::from_lengths(&[16]).unwrap_err(),
            FlateError::InvalidHuffmanTable
        );
    }

    #[test]
    fn decodes_two_symbol_code() {
        // Symbols 0 and 1, both length 1: codes 0 and 1.
        let table = Huffman::from_lengths(&[1, 1]).unwrap();
        let mut w = BitWriter::new();
        w.huffman_code(0, 1);
        w.huffman_code(1, 1);
        w.huffman_code(0, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(table.decode(&mut r).unwrap(), 0);
        assert_eq!(table.decode(&mut r).unwrap(), 1);
        assert_eq!(table.decode(&mut r).unwrap(), 0);
    }

    #[test]
    fn canonical_assignment_matches_rfc_example() {
        // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) yield codes
        // 010,011,100,101,110,00,1110,1111.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lengths);
        let expected = [
            (0b010, 3),
            (0b011, 3),
            (0b100, 3),
            (0b101, 3),
            (0b110, 3),
            (0b00, 2),
            (0b1110, 4),
            (0b1111, 4),
        ];
        for (i, &(code, len)) in expected.iter().enumerate() {
            assert_eq!(codes[i], (code, len), "symbol {i}");
        }
    }

    #[test]
    fn encode_decode_roundtrip_rfc_table() {
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let table = Huffman::from_lengths(&lengths).unwrap();
        let codes = canonical_codes(&lengths);
        let sequence: Vec<u16> = vec![5, 0, 7, 6, 3, 5, 1];
        let mut w = BitWriter::new();
        for &sym in &sequence {
            let (code, len) = codes[sym as usize];
            w.huffman_code(code, u32::from(len));
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &sym in &sequence {
            assert_eq!(table.decode(&mut r).unwrap(), sym);
        }
    }

    #[test]
    fn fixed_tables_are_valid() {
        Huffman::from_lengths(&fixed_literal_lengths()).unwrap();
        Huffman::from_lengths(&fixed_distance_lengths()).unwrap();
    }

    /// Decodes with both decoders until the first error; the symbol
    /// sequence, the bit positions, and the final error must agree.
    fn assert_decoders_agree(reference: &Huffman, lut: &HuffmanLut, data: &[u8]) {
        let mut slow = BitReader::new(data);
        let mut fast = BitReader::new(data);
        for step in 0usize.. {
            let a = reference.decode(&mut slow);
            let b = lut.decode(&mut fast);
            assert_eq!(a, b, "step {step} over {data:02x?}");
            if a.is_err() {
                break;
            }
        }
    }

    #[test]
    fn lut_matches_reference_on_fixed_tables() {
        let lengths = fixed_literal_lengths();
        let reference = Huffman::from_lengths(&lengths).unwrap();
        let lut = HuffmanLut::from_lengths(&lengths, LITLEN_PRIMARY_BITS).unwrap();
        // Exercise every symbol: encode each once, decode with both.
        let codes = canonical_codes(&lengths);
        let mut w = BitWriter::new();
        for &(code, len) in &codes {
            w.huffman_code(code, u32::from(len));
        }
        let bytes = w.into_bytes();
        let mut slow = BitReader::new(&bytes);
        let mut fast = BitReader::new(&bytes);
        for symbol in 0..codes.len() as u16 {
            assert_eq!(reference.decode(&mut slow).unwrap(), symbol);
            assert_eq!(lut.decode(&mut fast).unwrap(), symbol);
        }
    }

    #[test]
    fn lut_single_code_distance_table() {
        // DEFLATE permits a distance tree with one 1-bit code; the
        // missing '1' branch must fail identically in both decoders.
        let lengths = [1u8];
        let reference = Huffman::from_lengths(&lengths).unwrap();
        let lut = HuffmanLut::from_lengths(&lengths, DIST_PRIMARY_BITS).unwrap();
        assert_decoders_agree(&reference, &lut, &[0b0000_0000]);
        assert_decoders_agree(&reference, &lut, &[0xff, 0xff]);
        assert_decoders_agree(&reference, &lut, &[0xff]);
        assert_decoders_agree(&reference, &lut, &[]);
    }

    #[test]
    fn lut_empty_table_fails_like_reference() {
        let reference = Huffman::from_lengths(&[0, 0, 0]).unwrap();
        let lut = HuffmanLut::from_lengths(&[0, 0, 0], 9).unwrap();
        assert_decoders_agree(&reference, &lut, &[0xab, 0xcd]);
        assert_decoders_agree(&reference, &lut, &[0x01]);
    }

    #[test]
    fn lut_rejects_what_reference_rejects() {
        for lengths in [&[1u8, 1, 1][..], &[16][..], &[2, 2, 2, 2, 1][..]] {
            assert_eq!(
                Huffman::from_lengths(lengths).unwrap_err(),
                HuffmanLut::from_lengths(lengths, 9).unwrap_err(),
            );
        }
    }

    property! {
        #![cases(192)]

        // Random length tables (complete, incomplete, or rejected) fed
        // random bit streams: build outcome, every decoded symbol, and
        // the terminal error must match the reference decoder. Narrow
        // primary widths force the subtable path.
        fn lut_differential_random_tables(
            lengths in vec(0u8..=15, 1..48),
            data in vec(any_u8(), 0..24),
            primary_bits in 2u32..=10,
        ) {
            let reference = Huffman::from_lengths(&lengths);
            let lut = HuffmanLut::from_lengths(&lengths, primary_bits);
            match (reference, lut) {
                (Ok(reference), Ok(lut)) => assert_decoders_agree(&reference, &lut, &data),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => panic!("build disagreement: {:?} vs {:?}", a.err(), b.err()),
            }
        }

        // Valid streams: random data encoded with its own canonical
        // codes decodes identically (and correctly) through both.
        fn lut_differential_valid_streams(symbols in vec(0u16..8, 1..64)) {
            let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
            let reference = Huffman::from_lengths(&lengths).unwrap();
            let lut = HuffmanLut::from_lengths(&lengths, 3).unwrap();
            let codes = canonical_codes(&lengths);
            let mut w = BitWriter::new();
            for &s in &symbols {
                let (code, len) = codes[s as usize];
                w.huffman_code(code, u32::from(len));
            }
            let bytes = w.into_bytes();
            let mut slow = BitReader::new(&bytes);
            let mut fast = BitReader::new(&bytes);
            for &s in &symbols {
                prop_assert_eq!(reference.decode(&mut slow).unwrap(), s);
                prop_assert_eq!(lut.decode(&mut fast).unwrap(), s);
            }
        }
    }

    #[test]
    fn fixed_literal_shape() {
        let l = fixed_literal_lengths();
        assert_eq!(l.len(), 288);
        assert_eq!(l[0], 8);
        assert_eq!(l[143], 8);
        assert_eq!(l[144], 9);
        assert_eq!(l[255], 9);
        assert_eq!(l[256], 7);
        assert_eq!(l[279], 7);
        assert_eq!(l[280], 8);
        assert_eq!(l[287], 8);
    }
}

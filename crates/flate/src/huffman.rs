//! Canonical Huffman code construction and decoding.
//!
//! Decoding uses the counts/offsets scheme from RFC 1951 §3.2.2 (as in
//! Mark Adler's `puff`): for each code length we know how many codes
//! exist and which symbol the first code of that length maps to, so a
//! code can be decoded by walking lengths and comparing against the
//! running first-code value.

use crate::bits::BitReader;
use crate::FlateError;

/// Maximum code length permitted by DEFLATE.
pub const MAX_BITS: usize = 15;

/// A canonical Huffman decoding table built from code lengths.
#[derive(Debug, Clone)]
pub struct Huffman {
    /// `count[len]` = number of codes of length `len` (index 0 unused).
    count: [u16; MAX_BITS + 1],
    /// Symbols sorted by (code length, symbol value).
    symbols: Vec<u16>,
}

impl Huffman {
    /// Builds a decoding table from per-symbol code lengths (0 = unused).
    ///
    /// # Errors
    ///
    /// Returns [`FlateError::InvalidHuffmanTable`] when the lengths
    /// over-subscribe the code space. An incomplete (under-subscribed)
    /// code is accepted only for the single-code case, which DEFLATE
    /// permits for distance trees; other incomplete codes are accepted
    /// at build time and fail at decode time if a missing code appears,
    /// matching zlib's behaviour for degenerate distance tables.
    pub fn from_lengths(lengths: &[u8]) -> Result<Huffman, FlateError> {
        let mut count = [0u16; MAX_BITS + 1];
        for &len in lengths {
            let len = len as usize;
            if len > MAX_BITS {
                return Err(FlateError::InvalidHuffmanTable);
            }
            count[len] += 1;
        }
        // All zero lengths — a table with no codes; decode always fails.
        count[0] = 0;

        // Check the code space is not over-subscribed.
        let mut left: i32 = 1;
        for &n in &count[1..=MAX_BITS] {
            left <<= 1;
            left -= i32::from(n);
            if left < 0 {
                return Err(FlateError::InvalidHuffmanTable);
            }
        }

        // offsets[len] = index into `symbols` of the first symbol with
        // that code length.
        let mut offsets = [0usize; MAX_BITS + 1];
        for len in 1..MAX_BITS {
            offsets[len + 1] = offsets[len] + count[len] as usize;
        }

        let total: usize = count[1..].iter().map(|&c| c as usize).sum();
        let mut symbols = vec![0u16; total];
        for (symbol, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbols[offsets[len as usize]] = symbol as u16;
                offsets[len as usize] += 1;
            }
        }

        Ok(Huffman { count, symbols })
    }

    /// Decodes one symbol from the bit stream.
    ///
    /// # Errors
    ///
    /// Returns [`FlateError::InvalidSymbol`] if the bits read do not form
    /// a code in this table, or [`FlateError::UnexpectedEof`] on truncated
    /// input.
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, FlateError> {
        let mut code: u32 = 0;
        let mut first: u32 = 0;
        let mut index: usize = 0;
        for len in 1..=MAX_BITS {
            code |= reader.bit()?;
            let n = u32::from(self.count[len]);
            if code < first + n {
                return Ok(self.symbols[index + (code - first) as usize]);
            }
            index += n as usize;
            first = (first + n) << 1;
            code <<= 1;
        }
        Err(FlateError::InvalidSymbol)
    }
}

/// Assigns canonical code values to symbols given their lengths,
/// returning `(code, length)` pairs. Used by the encoder.
pub fn canonical_codes(lengths: &[u8]) -> Vec<(u32, u8)> {
    let mut count = [0u32; MAX_BITS + 1];
    for &len in lengths {
        count[len as usize] += 1;
    }
    count[0] = 0;
    let mut next = [0u32; MAX_BITS + 1];
    let mut code = 0u32;
    for len in 1..=MAX_BITS {
        code = (code + count[len - 1]) << 1;
        next[len] = code;
    }
    lengths
        .iter()
        .map(|&len| {
            if len == 0 {
                (0, 0)
            } else {
                let c = next[len as usize];
                next[len as usize] += 1;
                (c, len)
            }
        })
        .collect()
}

/// The fixed literal/length code lengths from RFC 1951 §3.2.6.
pub fn fixed_literal_lengths() -> Vec<u8> {
    let mut lengths = vec![8u8; 288];
    for item in lengths.iter_mut().take(256).skip(144) {
        *item = 9;
    }
    for item in lengths.iter_mut().take(280).skip(256) {
        *item = 7;
    }
    lengths
}

/// The fixed distance code lengths (all 5 bits).
pub fn fixed_distance_lengths() -> Vec<u8> {
    vec![5u8; 30]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;

    #[test]
    fn rejects_oversubscribed_lengths() {
        // Three codes of length 1 cannot exist.
        assert_eq!(
            Huffman::from_lengths(&[1, 1, 1]).unwrap_err(),
            FlateError::InvalidHuffmanTable
        );
    }

    #[test]
    fn rejects_length_over_15() {
        assert_eq!(
            Huffman::from_lengths(&[16]).unwrap_err(),
            FlateError::InvalidHuffmanTable
        );
    }

    #[test]
    fn decodes_two_symbol_code() {
        // Symbols 0 and 1, both length 1: codes 0 and 1.
        let table = Huffman::from_lengths(&[1, 1]).unwrap();
        let mut w = BitWriter::new();
        w.huffman_code(0, 1);
        w.huffman_code(1, 1);
        w.huffman_code(0, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(table.decode(&mut r).unwrap(), 0);
        assert_eq!(table.decode(&mut r).unwrap(), 1);
        assert_eq!(table.decode(&mut r).unwrap(), 0);
    }

    #[test]
    fn canonical_assignment_matches_rfc_example() {
        // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) yield codes
        // 010,011,100,101,110,00,1110,1111.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lengths);
        let expected = [
            (0b010, 3),
            (0b011, 3),
            (0b100, 3),
            (0b101, 3),
            (0b110, 3),
            (0b00, 2),
            (0b1110, 4),
            (0b1111, 4),
        ];
        for (i, &(code, len)) in expected.iter().enumerate() {
            assert_eq!(codes[i], (code, len), "symbol {i}");
        }
    }

    #[test]
    fn encode_decode_roundtrip_rfc_table() {
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let table = Huffman::from_lengths(&lengths).unwrap();
        let codes = canonical_codes(&lengths);
        let sequence: Vec<u16> = vec![5, 0, 7, 6, 3, 5, 1];
        let mut w = BitWriter::new();
        for &sym in &sequence {
            let (code, len) = codes[sym as usize];
            w.huffman_code(code, u32::from(len));
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &sym in &sequence {
            assert_eq!(table.decode(&mut r).unwrap(), sym);
        }
    }

    #[test]
    fn fixed_tables_are_valid() {
        Huffman::from_lengths(&fixed_literal_lengths()).unwrap();
        Huffman::from_lengths(&fixed_distance_lengths()).unwrap();
    }

    #[test]
    fn fixed_literal_shape() {
        let l = fixed_literal_lengths();
        assert_eq!(l.len(), 288);
        assert_eq!(l[0], 8);
        assert_eq!(l[143], 8);
        assert_eq!(l[144], 9);
        assert_eq!(l[255], 9);
        assert_eq!(l[256], 7);
        assert_eq!(l[279], 7);
        assert_eq!(l[280], 8);
        assert_eq!(l[287], 8);
    }
}

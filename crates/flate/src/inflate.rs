//! DEFLATE decompression (RFC 1951), all three block types.

use crate::bits::BitReader;
use crate::huffman::{fixed_distance_lengths, fixed_literal_lengths, Huffman};
use crate::FlateError;

/// Length-code base values for codes 257–285 (RFC 1951 §3.2.5).
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
/// Extra bits for length codes 257–285.
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Distance-code base values for codes 0–29.
const DIST_BASE: [u32; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
/// Extra bits for distance codes 0–29.
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Permuted order of code-length-code lengths in a dynamic block header.
const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Decompresses a raw DEFLATE stream (no gzip/zlib wrapper).
///
/// # Errors
///
/// Fails on truncated input, reserved block types, malformed Huffman
/// tables, undecodable symbols, or back-references beyond the produced
/// output.
///
/// # Examples
///
/// ```
/// use ev_flate::{deflate_compress, inflate, CompressionLevel};
///
/// # fn main() -> Result<(), ev_flate::FlateError> {
/// let raw = deflate_compress(b"hello hello hello", CompressionLevel::Fast);
/// assert_eq!(inflate(&raw)?, b"hello hello hello");
/// # Ok(())
/// # }
/// ```
pub fn inflate(input: &[u8]) -> Result<Vec<u8>, FlateError> {
    let mut reader = BitReader::new(input);
    // Heuristic preallocation: deflate rarely exceeds ~4x expansion on
    // realistic profile data.
    let mut out = Vec::with_capacity(input.len().saturating_mul(3));
    loop {
        let bfinal = reader.bit()?;
        let btype = reader.bits(2)?;
        match btype {
            0 => inflate_stored(&mut reader, &mut out)?,
            1 => {
                let lit = Huffman::from_lengths(&fixed_literal_lengths())?;
                let dist = Huffman::from_lengths(&fixed_distance_lengths())?;
                inflate_block(&mut reader, &lit, &dist, &mut out)?;
            }
            2 => {
                let (lit, dist) = read_dynamic_tables(&mut reader)?;
                inflate_block(&mut reader, &lit, &dist, &mut out)?;
            }
            _ => return Err(FlateError::InvalidBlockType),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

fn inflate_stored(reader: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), FlateError> {
    reader.align_to_byte();
    let len = reader.bits(16)? as u16;
    let nlen = reader.bits(16)? as u16;
    if len != !nlen {
        return Err(FlateError::StoredLengthMismatch);
    }
    reader.copy_bytes(len as usize, out)
}

fn read_dynamic_tables(reader: &mut BitReader<'_>) -> Result<(Huffman, Huffman), FlateError> {
    let hlit = reader.bits(5)? as usize + 257;
    let hdist = reader.bits(5)? as usize + 1;
    let hclen = reader.bits(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(FlateError::InvalidHuffmanTable);
    }

    let mut clc_lengths = [0u8; 19];
    for &idx in CLC_ORDER.iter().take(hclen) {
        clc_lengths[idx] = reader.bits(3)? as u8;
    }
    let clc = Huffman::from_lengths(&clc_lengths)?;

    // Decode the literal/length and distance code lengths as one run,
    // since repeat codes may cross the boundary.
    let mut lengths = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        let symbol = clc.decode(reader)?;
        match symbol {
            0..=15 => lengths.push(symbol as u8),
            16 => {
                let &prev = lengths.last().ok_or(FlateError::InvalidHuffmanTable)?;
                let repeat = reader.bits(2)? + 3;
                for _ in 0..repeat {
                    lengths.push(prev);
                }
            }
            17 => {
                let repeat = reader.bits(3)? + 3;
                lengths.extend(std::iter::repeat_n(0, repeat as usize));
            }
            18 => {
                let repeat = reader.bits(7)? + 11;
                lengths.extend(std::iter::repeat_n(0, repeat as usize));
            }
            _ => return Err(FlateError::InvalidSymbol),
        }
    }
    if lengths.len() != hlit + hdist {
        return Err(FlateError::InvalidHuffmanTable);
    }
    // End-of-block code must be present.
    if lengths[256] == 0 {
        return Err(FlateError::InvalidHuffmanTable);
    }
    let lit = Huffman::from_lengths(&lengths[..hlit])?;
    let dist = Huffman::from_lengths(&lengths[hlit..])?;
    Ok((lit, dist))
}

fn inflate_block(
    reader: &mut BitReader<'_>,
    lit: &Huffman,
    dist: &Huffman,
    out: &mut Vec<u8>,
) -> Result<(), FlateError> {
    loop {
        let symbol = lit.decode(reader)?;
        match symbol {
            0..=255 => out.push(symbol as u8),
            256 => return Ok(()),
            257..=285 => {
                let idx = symbol as usize - 257;
                let length =
                    LENGTH_BASE[idx] as usize + reader.bits(u32::from(LENGTH_EXTRA[idx]))? as usize;
                let dsym = dist.decode(reader)? as usize;
                if dsym >= 30 {
                    return Err(FlateError::InvalidSymbol);
                }
                let distance =
                    DIST_BASE[dsym] as usize + reader.bits(u32::from(DIST_EXTRA[dsym]))? as usize;
                if distance > out.len() {
                    return Err(FlateError::DistanceTooFar {
                        distance,
                        produced: out.len(),
                    });
                }
                // Byte-by-byte copy: overlapping copies (distance < length)
                // are the RLE idiom and must see freshly written bytes.
                let start = out.len() - distance;
                for i in 0..length {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
            _ => return Err(FlateError::InvalidSymbol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;
    use crate::huffman::canonical_codes;

    #[test]
    fn stored_block_roundtrip() {
        // Hand-build: BFINAL=1, BTYPE=00, align, LEN=5, NLEN=!5, "hello".
        let mut w = BitWriter::new();
        w.bits(1, 1);
        w.bits(0, 2);
        w.align_to_byte();
        w.raw_bytes(&5u16.to_le_bytes());
        w.raw_bytes(&(!5u16).to_le_bytes());
        w.raw_bytes(b"hello");
        assert_eq!(inflate(&w.into_bytes()).unwrap(), b"hello");
    }

    #[test]
    fn stored_block_bad_nlen() {
        let mut w = BitWriter::new();
        w.bits(1, 1);
        w.bits(0, 2);
        w.align_to_byte();
        w.raw_bytes(&5u16.to_le_bytes());
        w.raw_bytes(&5u16.to_le_bytes());
        w.raw_bytes(b"hello");
        assert_eq!(
            inflate(&w.into_bytes()),
            Err(FlateError::StoredLengthMismatch)
        );
    }

    #[test]
    fn reserved_block_type() {
        let mut w = BitWriter::new();
        w.bits(1, 1);
        w.bits(3, 2);
        assert_eq!(inflate(&w.into_bytes()), Err(FlateError::InvalidBlockType));
    }

    #[test]
    fn empty_input_is_eof() {
        assert_eq!(inflate(&[]), Err(FlateError::UnexpectedEof));
    }

    /// Builds a fixed-Huffman block by hand with the given
    /// literal/length/distance operations.
    fn fixed_block(ops: &[Op]) -> Vec<u8> {
        let lit_codes = canonical_codes(&fixed_literal_lengths());
        let dist_codes = canonical_codes(&fixed_distance_lengths());
        let mut w = BitWriter::new();
        w.bits(1, 1); // BFINAL
        w.bits(1, 2); // fixed
        for op in ops {
            match *op {
                Op::Lit(b) => {
                    let (code, len) = lit_codes[b as usize];
                    w.huffman_code(code, u32::from(len));
                }
                Op::Match { len, dist } => {
                    // Find the length code.
                    let idx = (0..29)
                        .rev()
                        .find(|&i| LENGTH_BASE[i] as usize <= len)
                        .unwrap();
                    let (code, clen) = lit_codes[257 + idx];
                    w.huffman_code(code, u32::from(clen));
                    w.bits(
                        (len - LENGTH_BASE[idx] as usize) as u32,
                        u32::from(LENGTH_EXTRA[idx]),
                    );
                    let didx = (0..30)
                        .rev()
                        .find(|&i| DIST_BASE[i] as usize <= dist)
                        .unwrap();
                    let (dcode, dlen) = dist_codes[didx];
                    w.huffman_code(dcode, u32::from(dlen));
                    w.bits(
                        (dist - DIST_BASE[didx] as usize) as u32,
                        u32::from(DIST_EXTRA[didx]),
                    );
                }
            }
        }
        let (code, len) = lit_codes[256];
        w.huffman_code(code, u32::from(len));
        w.into_bytes()
    }

    enum Op {
        Lit(u8),
        Match { len: usize, dist: usize },
    }

    #[test]
    fn fixed_block_literals() {
        let block = fixed_block(&[Op::Lit(b'a'), Op::Lit(b'b'), Op::Lit(b'c')]);
        assert_eq!(inflate(&block).unwrap(), b"abc");
    }

    #[test]
    fn fixed_block_backreference() {
        // "abcabcabc" via one literal run + overlapping match.
        let block = fixed_block(&[
            Op::Lit(b'a'),
            Op::Lit(b'b'),
            Op::Lit(b'c'),
            Op::Match { len: 6, dist: 3 },
        ]);
        assert_eq!(inflate(&block).unwrap(), b"abcabcabc");
    }

    #[test]
    fn fixed_block_rle_distance_one() {
        let block = fixed_block(&[Op::Lit(b'x'), Op::Match { len: 258, dist: 1 }]);
        assert_eq!(inflate(&block).unwrap(), vec![b'x'; 259]);
    }

    #[test]
    fn distance_before_start_fails() {
        let block = fixed_block(&[Op::Lit(b'x'), Op::Match { len: 3, dist: 5 }]);
        assert_eq!(
            inflate(&block),
            Err(FlateError::DistanceTooFar {
                distance: 5,
                produced: 1
            })
        );
    }

    #[test]
    fn multi_block_stream() {
        // Non-final stored block followed by a final fixed block.
        let mut w = BitWriter::new();
        w.bits(0, 1);
        w.bits(0, 2);
        w.align_to_byte();
        w.raw_bytes(&2u16.to_le_bytes());
        w.raw_bytes(&(!2u16).to_le_bytes());
        w.raw_bytes(b"hi");
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&fixed_block(&[Op::Lit(b'!')]));
        assert_eq!(inflate(&bytes).unwrap(), b"hi!");
    }

    #[test]
    fn system_gzip_compatibility() {
        // If gzip(1) is available, verify we decode its output (dynamic
        // Huffman blocks from a real compressor).
        use std::io::Write as _;
        use std::process::{Command, Stdio};
        let data: Vec<u8> = (0..20000u32)
            .flat_map(|i| format!("frame_{} ", i % 97).into_bytes())
            .collect();
        let child = Command::new("gzip")
            .arg("-c")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn();
        let Ok(mut child) = child else {
            eprintln!("gzip not available; skipping");
            return;
        };
        child.stdin.as_mut().unwrap().write_all(&data).unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success());
        let decoded = crate::gzip_decompress(&out.stdout).unwrap();
        assert_eq!(decoded, data);
    }
}

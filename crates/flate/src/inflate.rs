//! DEFLATE decompression (RFC 1951), all three block types.
//!
//! Two decoders live here and must stay byte-for-byte (and
//! error-for-error) identical on every input:
//!
//! * [`inflate`] — the production fast path: two-tier LUT Huffman
//!   decoding ([`HuffmanLut`]), a batched peek/consume bit reader, a
//!   fused literal/length+distance inner loop, and chunked
//!   (overlap-safe) LZ77 match copies.
//! * [`inflate_reference`] — the original bit-at-a-time puff-style
//!   walker, retained as the oracle for differential testing
//!   (`tests/differential.rs` and the unit properties below).

use crate::bits::BitReader;
use crate::huffman::{
    fixed_distance_lengths, fixed_literal_lengths, Huffman, HuffmanLut, DIST_PRIMARY_BITS,
    LITLEN_PRIMARY_BITS, MAX_BITS,
};
use crate::FlateError;
use std::sync::OnceLock;

/// Length-code base values for codes 257–285 (RFC 1951 §3.2.5).
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
/// Extra bits for length codes 257–285.
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Distance-code base values for codes 0–29.
const DIST_BASE: [u32; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
/// Extra bits for distance codes 0–29.
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Permuted order of code-length-code lengths in a dynamic block header.
const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];
/// Primary width for the (≤ 7-bit) code-length code: wide enough that
/// every clc lookup is a single primary load.
const CLC_PRIMARY_BITS: u32 = 7;

/// Worst-case bits one fused iteration consumes: a 15-bit
/// literal/length code, 5 extra length bits, a 15-bit distance code and
/// 13 extra distance bits. With at least this many bits buffered the
/// inner loop needs no per-step EOF checks.
const FUSED_BITS: u32 = 48;

/// Cap on speculative output preallocation. Size hints (the gzip ISIZE
/// trailer, the raw-deflate `len*3` heuristic) are untrusted input: a
/// lying ISIZE of up to 4 GiB must not translate into a 4 GiB
/// allocation before a single byte is decoded. Hints above this cap
/// preallocate exactly this much and the output grows organically
/// beyond it, so the cap bounds speculative memory, never output size.
pub const MAX_SIZE_HINT: usize = 256 << 20;

/// Fast-path vs. slow-path hit counts for one inflate call, accumulated
/// in locals so the hot loop never touches an atomic, and flushed to
/// the `ev-trace` registry only when tracing is enabled (the disabled
/// path stays allocation-free).
#[derive(Default)]
pub(crate) struct LutStats {
    primary: u64,
    sub: u64,
    tail: u64,
}

impl LutStats {
    #[inline]
    fn hit(&mut self, sub: bool) {
        if sub {
            self.sub += 1;
        } else {
            self.primary += 1;
        }
    }

    pub(crate) fn flush(&self) {
        if ev_trace::enabled() && self.primary | self.sub | self.tail != 0 {
            crate::metrics::lut_primary().add(self.primary);
            crate::metrics::lut_sub().add(self.sub);
            crate::metrics::lut_tail().add(self.tail);
        }
    }
}

/// The RFC 1951 fixed tables in LUT form, built once per process.
pub(crate) fn fixed_luts() -> &'static (HuffmanLut, HuffmanLut) {
    static TABLES: OnceLock<(HuffmanLut, HuffmanLut)> = OnceLock::new();
    TABLES.get_or_init(|| {
        (
            HuffmanLut::from_lengths(&fixed_literal_lengths(), LITLEN_PRIMARY_BITS)
                .expect("RFC 1951 fixed literal table is valid"),
            HuffmanLut::from_lengths(&fixed_distance_lengths(), DIST_PRIMARY_BITS)
                .expect("RFC 1951 fixed distance table is valid"),
        )
    })
}

/// The fixed tables for the reference decoder, built once per process.
fn fixed_reference_tables() -> &'static (Huffman, Huffman) {
    static TABLES: OnceLock<(Huffman, Huffman)> = OnceLock::new();
    TABLES.get_or_init(|| {
        (
            Huffman::from_lengths(&fixed_literal_lengths())
                .expect("RFC 1951 fixed literal table is valid"),
            Huffman::from_lengths(&fixed_distance_lengths())
                .expect("RFC 1951 fixed distance table is valid"),
        )
    })
}

/// Decompresses a raw DEFLATE stream (no gzip/zlib wrapper).
///
/// # Errors
///
/// Fails on truncated input, reserved block types, malformed Huffman
/// tables, undecodable symbols, or back-references beyond the produced
/// output.
///
/// # Examples
///
/// ```
/// use ev_flate::{deflate_compress, inflate, CompressionLevel};
///
/// # fn main() -> Result<(), ev_flate::FlateError> {
/// let raw = deflate_compress(b"hello hello hello", CompressionLevel::Fast);
/// assert_eq!(inflate(&raw)?, b"hello hello hello");
/// # Ok(())
/// # }
/// ```
pub fn inflate(input: &[u8]) -> Result<Vec<u8>, FlateError> {
    // Heuristic preallocation: deflate rarely exceeds ~4x expansion on
    // realistic profile data. Container callers that know the exact
    // output size (gzip ISIZE) use `inflate_with_size_hint` instead.
    inflate_with_size_hint(input, input.len().saturating_mul(3))
}

/// Like [`inflate`], preallocating `size_hint` bytes of output.
///
/// `gzip_decompress` passes the ISIZE trailer here so typical profiles
/// decompress into a single exact allocation. The hint is advisory and
/// untrusted: it is capped internally and the output still grows as
/// needed, so a lying hint affects speed, never correctness.
///
/// # Errors
///
/// Same conditions as [`inflate`].
pub fn inflate_with_size_hint(input: &[u8], size_hint: usize) -> Result<Vec<u8>, FlateError> {
    let mut reader = BitReader::new(input);
    let mut out = Vec::with_capacity(size_hint.min(MAX_SIZE_HINT));
    let mut stats = LutStats::default();
    let result = inflate_fast_loop(&mut reader, &mut out, &mut stats);
    stats.flush();
    result.map(|()| out)
}

/// Like [`inflate_with_size_hint`], additionally returning how many
/// input bytes the DEFLATE stream occupied (the bit position after the
/// final block, rounded up to the next byte boundary).
///
/// This is the member-streaming entry point: a gzip container holds
/// `header · deflate stream · trailer` per member, and RFC 1952 allows
/// members to be concatenated back to back, so the decompressor must
/// learn where each self-delimiting DEFLATE stream ends to find that
/// member's trailer and the next member's header. Bytes past the
/// stream end are never interpreted (the bit reader may *peek* ahead,
/// but consumption stops at the final end-of-block symbol).
///
/// # Errors
///
/// Same conditions as [`inflate`].
pub fn inflate_member(input: &[u8], size_hint: usize) -> Result<(Vec<u8>, usize), FlateError> {
    let mut reader = BitReader::new(input);
    let mut out = Vec::with_capacity(size_hint.min(MAX_SIZE_HINT));
    let mut stats = LutStats::default();
    let result = inflate_fast_loop(&mut reader, &mut out, &mut stats);
    stats.flush();
    result.map(|()| (out, reader.bytes_consumed()))
}

/// Reference-decoder counterpart of [`inflate_member`], for
/// differential testing: output bytes, error values, *and* the
/// consumed-byte count must match the fast path on every input.
///
/// # Errors
///
/// Same conditions as [`inflate`].
pub fn inflate_reference_member(input: &[u8]) -> Result<(Vec<u8>, usize), FlateError> {
    let mut reader = BitReader::new(input);
    inflate_reference_loop(&mut reader, input.len())
        .map(|out| (out, reader.bytes_consumed()))
}

/// How far a budget-bounded block decode got.
///
/// The buffered decoders pass `usize::MAX` as the budget and only ever
/// see `Done`; [`crate::InflateStream`] passes its chunk target and
/// suspends the block on `Budget`, resuming the same decode on the next
/// pull. Budget checks sit *between* symbols, so the decoded symbol
/// sequence — and therefore every output byte and every error — is
/// independent of where (or whether) the decode is suspended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockProgress {
    /// The block's end-of-block symbol was consumed.
    Done,
    /// The output budget was reached mid-block; call again to continue.
    Budget,
}

fn inflate_fast_loop(
    reader: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    stats: &mut LutStats,
) -> Result<(), FlateError> {
    loop {
        let bfinal = reader.bit()?;
        let btype = reader.bits(2)?;
        match btype {
            0 => inflate_stored(reader, out)?,
            1 => {
                let (lit, dist) = fixed_luts();
                let done = inflate_block_fast(reader, lit, dist, out, usize::MAX, stats)?;
                debug_assert_eq!(done, BlockProgress::Done);
            }
            2 => {
                let (lit, dist) = read_dynamic_luts(reader)?;
                let done = inflate_block_fast(reader, &lit, &dist, out, usize::MAX, stats)?;
                debug_assert_eq!(done, BlockProgress::Done);
            }
            _ => return Err(FlateError::InvalidBlockType),
        }
        if bfinal == 1 {
            return Ok(());
        }
    }
}

/// Reads a stored block's aligned LEN/NLEN header, returning LEN.
pub(crate) fn read_stored_header(reader: &mut BitReader<'_>) -> Result<usize, FlateError> {
    reader.align_to_byte();
    let len = reader.bits(16)? as u16;
    let nlen = reader.bits(16)? as u16;
    if len != !nlen {
        return Err(FlateError::StoredLengthMismatch);
    }
    Ok(len as usize)
}

fn inflate_stored(reader: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), FlateError> {
    let len = read_stored_header(reader)?;
    reader.copy_bytes(len, out)
}

/// Decodes a dynamic block header into the literal/length and distance
/// code lengths plus the literal/length count. The `decode_clc` hook
/// lets the fast and reference paths plug in their own code-length-code
/// decoder while sharing the (error-identical) header logic.
fn read_dynamic_lengths(
    reader: &mut BitReader<'_>,
    mut decode_clc: impl FnMut(&mut BitReader<'_>, &[u8]) -> Result<u16, FlateError>,
) -> Result<(Vec<u8>, usize), FlateError> {
    let hlit = reader.bits(5)? as usize + 257;
    let hdist = reader.bits(5)? as usize + 1;
    let hclen = reader.bits(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(FlateError::InvalidHuffmanTable);
    }

    let mut clc_lengths = [0u8; 19];
    for &idx in CLC_ORDER.iter().take(hclen) {
        clc_lengths[idx] = reader.bits(3)? as u8;
    }

    // Decode the literal/length and distance code lengths as one run,
    // since repeat codes may cross the boundary.
    let mut lengths = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        let symbol = decode_clc(reader, &clc_lengths)?;
        match symbol {
            0..=15 => lengths.push(symbol as u8),
            16 => {
                let &prev = lengths.last().ok_or(FlateError::InvalidHuffmanTable)?;
                let repeat = reader.bits(2)? + 3;
                for _ in 0..repeat {
                    lengths.push(prev);
                }
            }
            17 => {
                let repeat = reader.bits(3)? + 3;
                lengths.extend(std::iter::repeat_n(0, repeat as usize));
            }
            18 => {
                let repeat = reader.bits(7)? + 11;
                lengths.extend(std::iter::repeat_n(0, repeat as usize));
            }
            _ => return Err(FlateError::InvalidSymbol),
        }
    }
    if lengths.len() != hlit + hdist {
        return Err(FlateError::InvalidHuffmanTable);
    }
    // End-of-block code must be present.
    if lengths[256] == 0 {
        return Err(FlateError::InvalidHuffmanTable);
    }
    Ok((lengths, hlit))
}

pub(crate) fn read_dynamic_luts(
    reader: &mut BitReader<'_>,
) -> Result<(HuffmanLut, HuffmanLut), FlateError> {
    let mut clc: Option<HuffmanLut> = None;
    let (lengths, hlit) = read_dynamic_lengths(reader, |reader, clc_lengths| {
        if clc.is_none() {
            clc = Some(HuffmanLut::from_lengths(clc_lengths, CLC_PRIMARY_BITS)?);
        }
        clc.as_ref().expect("built above").decode(reader)
    })?;
    let lit = HuffmanLut::from_lengths(&lengths[..hlit], LITLEN_PRIMARY_BITS)?;
    let dist = HuffmanLut::from_lengths(&lengths[hlit..], DIST_PRIMARY_BITS)?;
    Ok((lit, dist))
}

/// Appends a length/distance match to `out`.
///
/// Copies run through `Vec::extend_from_within` — memcpy-class chunked
/// copies with the borrow checker standing in for libdeflate's manual
/// 8-byte wild stamps. Overlapping matches (distance < length, the RLE
/// idiom) copy in runs of the currently available window, doubling the
/// window each round so even distance-2 matches finish in O(log n)
/// memcpys; distance 1 is a straight `resize` fill (memset).
#[inline]
fn copy_match(out: &mut Vec<u8>, distance: usize, length: usize) -> Result<(), FlateError> {
    if distance > out.len() {
        return Err(FlateError::DistanceTooFar {
            distance,
            produced: out.len(),
        });
    }
    let start = out.len() - distance;
    if length <= distance {
        out.extend_from_within(start..start + length);
    } else if distance == 1 {
        let byte = out[start];
        let new_len = out.len() + length;
        out.resize(new_len, byte);
    } else {
        out.reserve(length);
        let mut remaining = length;
        while remaining > 0 {
            let run = remaining.min(out.len() - start);
            out.extend_from_within(start..start + run);
            remaining -= run;
        }
    }
    Ok(())
}

pub(crate) fn inflate_block_fast(
    reader: &mut BitReader<'_>,
    lit: &HuffmanLut,
    dist: &HuffmanLut,
    out: &mut Vec<u8>,
    budget: usize,
    stats: &mut LutStats,
) -> Result<BlockProgress, FlateError> {
    loop {
        // Budget check between symbols only: the symbol sequence (and
        // so every byte/error) is unchanged by where we suspend. One
        // symbol may overshoot by up to 258 bytes — the stream layer
        // sizes its emit window to absorb that.
        if out.len() >= budget {
            return Ok(BlockProgress::Budget);
        }
        reader.refill();
        if reader.buffered() >= FUSED_BITS {
            // Fused path: one refill covers the worst-case symbol pair
            // plus extra bits, so every step below is unchecked
            // peek/consume (≥ 48 buffered bits also means an
            // unresolvable code is InvalidSymbol, never EOF).
            let (entry, sub) = lit.lookup(reader.peek(MAX_BITS as u32));
            stats.hit(sub);
            let len = entry >> 16;
            if len == 0 {
                return Err(FlateError::InvalidSymbol);
            }
            reader.consume(len);
            let symbol = entry & 0xffff;
            if symbol < 256 {
                out.push(symbol as u8);
                continue;
            }
            if symbol == 256 {
                return Ok(BlockProgress::Done);
            }
            if symbol > 285 {
                return Err(FlateError::InvalidSymbol);
            }
            let idx = symbol as usize - 257;
            let length =
                LENGTH_BASE[idx] as usize + reader.take(u32::from(LENGTH_EXTRA[idx])) as usize;
            let (dentry, dsub) = dist.lookup(reader.peek(MAX_BITS as u32));
            stats.hit(dsub);
            let dlen = dentry >> 16;
            if dlen == 0 {
                return Err(FlateError::InvalidSymbol);
            }
            reader.consume(dlen);
            let dsym = (dentry & 0xffff) as usize;
            if dsym >= 30 {
                return Err(FlateError::InvalidSymbol);
            }
            let distance =
                DIST_BASE[dsym] as usize + reader.take(u32::from(DIST_EXTRA[dsym])) as usize;
            copy_match(out, distance, length)?;
        } else {
            // Tail path: fewer than FUSED_BITS left in the stream, so
            // run the same logic with per-step EOF checking. At most a
            // handful of symbols per stream land here.
            stats.tail += 1;
            let symbol = lit.decode(reader)?;
            match symbol {
                0..=255 => out.push(symbol as u8),
                256 => return Ok(BlockProgress::Done),
                257..=285 => {
                    let idx = symbol as usize - 257;
                    let length = LENGTH_BASE[idx] as usize
                        + reader.bits(u32::from(LENGTH_EXTRA[idx]))? as usize;
                    let dsym = dist.decode(reader)? as usize;
                    if dsym >= 30 {
                        return Err(FlateError::InvalidSymbol);
                    }
                    let distance = DIST_BASE[dsym] as usize
                        + reader.bits(u32::from(DIST_EXTRA[dsym]))? as usize;
                    copy_match(out, distance, length)?;
                }
                _ => return Err(FlateError::InvalidSymbol),
            }
        }
    }
}

/// Decompresses a raw DEFLATE stream with the original bit-at-a-time
/// decoder. This is the reference implementation the fast path is
/// differentially tested against; output bytes and error values are
/// identical to [`inflate`] on every input, compressed or corrupt.
///
/// # Errors
///
/// Same conditions as [`inflate`].
pub fn inflate_reference(input: &[u8]) -> Result<Vec<u8>, FlateError> {
    let mut reader = BitReader::new(input);
    inflate_reference_loop(&mut reader, input.len())
}

fn inflate_reference_loop(
    reader: &mut BitReader<'_>,
    input_len: usize,
) -> Result<Vec<u8>, FlateError> {
    let mut out = Vec::with_capacity(input_len.saturating_mul(3).min(MAX_SIZE_HINT));
    loop {
        let bfinal = reader.bit()?;
        let btype = reader.bits(2)?;
        match btype {
            0 => inflate_stored(reader, &mut out)?,
            1 => {
                let (lit, dist) = fixed_reference_tables();
                inflate_block(reader, lit, dist, &mut out)?;
            }
            2 => {
                let (lit, dist) = read_dynamic_tables(reader)?;
                inflate_block(reader, &lit, &dist, &mut out)?;
            }
            _ => return Err(FlateError::InvalidBlockType),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

fn read_dynamic_tables(reader: &mut BitReader<'_>) -> Result<(Huffman, Huffman), FlateError> {
    let mut clc: Option<Huffman> = None;
    let (lengths, hlit) = read_dynamic_lengths(reader, |reader, clc_lengths| {
        if clc.is_none() {
            clc = Some(Huffman::from_lengths(clc_lengths)?);
        }
        clc.as_ref().expect("built above").decode(reader)
    })?;
    let lit = Huffman::from_lengths(&lengths[..hlit])?;
    let dist = Huffman::from_lengths(&lengths[hlit..])?;
    Ok((lit, dist))
}

fn inflate_block(
    reader: &mut BitReader<'_>,
    lit: &Huffman,
    dist: &Huffman,
    out: &mut Vec<u8>,
) -> Result<(), FlateError> {
    loop {
        let symbol = lit.decode(reader)?;
        match symbol {
            0..=255 => out.push(symbol as u8),
            256 => return Ok(()),
            257..=285 => {
                let idx = symbol as usize - 257;
                let length =
                    LENGTH_BASE[idx] as usize + reader.bits(u32::from(LENGTH_EXTRA[idx]))? as usize;
                let dsym = dist.decode(reader)? as usize;
                if dsym >= 30 {
                    return Err(FlateError::InvalidSymbol);
                }
                let distance =
                    DIST_BASE[dsym] as usize + reader.bits(u32::from(DIST_EXTRA[dsym]))? as usize;
                if distance > out.len() {
                    return Err(FlateError::DistanceTooFar {
                        distance,
                        produced: out.len(),
                    });
                }
                // Byte-by-byte copy: overlapping copies (distance < length)
                // are the RLE idiom and must see freshly written bytes.
                let start = out.len() - distance;
                for i in 0..length {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
            _ => return Err(FlateError::InvalidSymbol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;
    use crate::huffman::canonical_codes;

    /// Every decode-path test asserts through this: fast and reference
    /// must agree exactly, and the fast result is what's checked.
    fn both(input: &[u8]) -> Result<Vec<u8>, FlateError> {
        let fast = inflate(input);
        let reference = inflate_reference(input);
        assert_eq!(fast, reference, "fast and reference decoders disagree");
        fast
    }

    #[test]
    fn stored_block_roundtrip() {
        // Hand-build: BFINAL=1, BTYPE=00, align, LEN=5, NLEN=!5, "hello".
        let mut w = BitWriter::new();
        w.bits(1, 1);
        w.bits(0, 2);
        w.align_to_byte();
        w.raw_bytes(&5u16.to_le_bytes());
        w.raw_bytes(&(!5u16).to_le_bytes());
        w.raw_bytes(b"hello");
        assert_eq!(both(&w.into_bytes()).unwrap(), b"hello");
    }

    #[test]
    fn stored_block_bad_nlen() {
        let mut w = BitWriter::new();
        w.bits(1, 1);
        w.bits(0, 2);
        w.align_to_byte();
        w.raw_bytes(&5u16.to_le_bytes());
        w.raw_bytes(&5u16.to_le_bytes());
        w.raw_bytes(b"hello");
        assert_eq!(both(&w.into_bytes()), Err(FlateError::StoredLengthMismatch));
    }

    #[test]
    fn reserved_block_type() {
        let mut w = BitWriter::new();
        w.bits(1, 1);
        w.bits(3, 2);
        assert_eq!(both(&w.into_bytes()), Err(FlateError::InvalidBlockType));
    }

    #[test]
    fn empty_input_is_eof() {
        assert_eq!(both(&[]), Err(FlateError::UnexpectedEof));
    }

    /// Builds a fixed-Huffman block by hand with the given
    /// literal/length/distance operations.
    fn fixed_block(ops: &[Op]) -> Vec<u8> {
        let lit_codes = canonical_codes(&fixed_literal_lengths());
        let dist_codes = canonical_codes(&fixed_distance_lengths());
        let mut w = BitWriter::new();
        w.bits(1, 1); // BFINAL
        w.bits(1, 2); // fixed
        for op in ops {
            match *op {
                Op::Lit(b) => {
                    let (code, len) = lit_codes[b as usize];
                    w.huffman_code(code, u32::from(len));
                }
                Op::Match { len, dist } => {
                    // Find the length code.
                    let idx = (0..29)
                        .rev()
                        .find(|&i| LENGTH_BASE[i] as usize <= len)
                        .unwrap();
                    let (code, clen) = lit_codes[257 + idx];
                    w.huffman_code(code, u32::from(clen));
                    w.bits(
                        (len - LENGTH_BASE[idx] as usize) as u32,
                        u32::from(LENGTH_EXTRA[idx]),
                    );
                    let didx = (0..30)
                        .rev()
                        .find(|&i| DIST_BASE[i] as usize <= dist)
                        .unwrap();
                    let (dcode, dlen) = dist_codes[didx];
                    w.huffman_code(dcode, u32::from(dlen));
                    w.bits(
                        (dist - DIST_BASE[didx] as usize) as u32,
                        u32::from(DIST_EXTRA[didx]),
                    );
                }
            }
        }
        let (code, len) = lit_codes[256];
        w.huffman_code(code, u32::from(len));
        w.into_bytes()
    }

    enum Op {
        Lit(u8),
        Match { len: usize, dist: usize },
    }

    #[test]
    fn fixed_block_literals() {
        let block = fixed_block(&[Op::Lit(b'a'), Op::Lit(b'b'), Op::Lit(b'c')]);
        assert_eq!(both(&block).unwrap(), b"abc");
    }

    #[test]
    fn fixed_block_backreference() {
        // "abcabcabc" via one literal run + overlapping match.
        let block = fixed_block(&[
            Op::Lit(b'a'),
            Op::Lit(b'b'),
            Op::Lit(b'c'),
            Op::Match { len: 6, dist: 3 },
        ]);
        assert_eq!(both(&block).unwrap(), b"abcabcabc");
    }

    #[test]
    fn fixed_block_rle_distance_one() {
        let block = fixed_block(&[Op::Lit(b'x'), Op::Match { len: 258, dist: 1 }]);
        assert_eq!(both(&block).unwrap(), vec![b'x'; 259]);
    }

    #[test]
    fn overlapping_copy_distances() {
        // Every short distance exercises a different copy_match branch:
        // memset (1), doubling chunked copy (2..36), single memcpy (≥ 37).
        for dist in (1..=9).chain([16, 36, 37, 40]) {
            let mut ops: Vec<Op> = (0..dist).map(|i| Op::Lit((i % 251) as u8)).collect();
            ops.push(Op::Match { len: 37, dist });
            let block = fixed_block(&ops);
            let decoded = both(&block).unwrap();
            // Deflate match semantics: each output byte re-reads the
            // stream `dist` bytes back, seeing freshly copied bytes.
            let mut expected: Vec<u8> = (0..dist).map(|i| (i % 251) as u8).collect();
            for _ in 0..37 {
                let byte = expected[expected.len() - dist];
                expected.push(byte);
            }
            assert_eq!(decoded, expected, "dist {dist}");
        }
    }

    #[test]
    fn distance_before_start_fails() {
        let block = fixed_block(&[Op::Lit(b'x'), Op::Match { len: 3, dist: 5 }]);
        assert_eq!(
            both(&block),
            Err(FlateError::DistanceTooFar {
                distance: 5,
                produced: 1
            })
        );
    }

    #[test]
    fn multi_block_stream() {
        // Non-final stored block followed by a final fixed block.
        let mut w = BitWriter::new();
        w.bits(0, 1);
        w.bits(0, 2);
        w.align_to_byte();
        w.raw_bytes(&2u16.to_le_bytes());
        w.raw_bytes(&(!2u16).to_le_bytes());
        w.raw_bytes(b"hi");
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&fixed_block(&[Op::Lit(b'!')]));
        assert_eq!(both(&bytes).unwrap(), b"hi!");
    }

    /// A hand-built dynamic block: 'a' and 'b' literals, end-of-block,
    /// and a single-code (degenerate) distance tree, optionally using
    /// the missing branch of that one-code tree.
    fn degenerate_dynamic_block(use_missing_distance: bool) -> Vec<u8> {
        // Literal table: 'a'(97), 'b'(98), 256, 257 all length 2 —
        // exactly complete. Distance table: one code of length 1.
        let mut lit_lengths = vec![0u8; 258];
        lit_lengths[97] = 2;
        lit_lengths[98] = 2;
        lit_lengths[256] = 2;
        lit_lengths[257] = 2;
        let lit_codes = canonical_codes(&lit_lengths);

        let mut w = BitWriter::new();
        w.bits(1, 1); // BFINAL
        w.bits(2, 2); // dynamic
        w.bits(1, 5); // HLIT  = 258 - 257
        w.bits(0, 5); // HDIST = 1 - 1
        w.bits(15, 4); // HCLEN = 19 - 4: send all code-length codes
        // Code-length code: sym 2 (emit "length 2") gets 1 bit, syms 1
        // and 18 (zero runs) get 2 bits — exactly complete.
        let mut clc = [0u8; 19];
        clc[1] = 2;
        clc[2] = 1;
        clc[18] = 2;
        for &idx in CLC_ORDER.iter() {
            w.bits(u32::from(clc[idx]), 3);
        }
        let clc_codes = canonical_codes(&clc);
        let put = |w: &mut BitWriter, sym: usize| {
            let (code, len) = clc_codes[sym];
            w.huffman_code(code, u32::from(len));
        };
        put(&mut w, 18); // 0 × 97  (11 + 86)
        w.bits(86, 7);
        put(&mut w, 2); // 'a': len 2
        put(&mut w, 2); // 'b': len 2
        put(&mut w, 18); // 0 × 138 (99..237)
        w.bits(127, 7);
        put(&mut w, 18); // 0 × 19  (237..256)
        w.bits(8, 7);
        put(&mut w, 2); // 256: len 2
        put(&mut w, 2); // 257: len 2
        put(&mut w, 1); // distance table: the lone code, length 1
        // Body: "ab", then a length-3 match (code 257, no extra bits)
        // through the distance tree, then end-of-block.
        for sym in [97usize, 98, 257] {
            let (code, len) = lit_codes[sym];
            w.huffman_code(code, u32::from(len));
        }
        // The single 1-bit distance code is 0; '1' is the missing branch.
        w.bits(u32::from(use_missing_distance), 1);
        let (code, len) = lit_codes[256];
        w.huffman_code(code, u32::from(len));
        w.into_bytes()
    }

    #[test]
    fn degenerate_single_code_distance_tree_decodes() {
        // The length-3 match at distance 1 repeats the trailing 'b'.
        let block = degenerate_dynamic_block(false);
        assert_eq!(both(&block).unwrap(), b"abbbb");
    }

    #[test]
    fn degenerate_missing_distance_code_fails_identically() {
        let block = degenerate_dynamic_block(true);
        let err = both(&block).unwrap_err();
        assert!(
            matches!(err, FlateError::InvalidSymbol | FlateError::UnexpectedEof),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn system_gzip_compatibility() {
        // If gzip(1) is available, verify we decode its output (dynamic
        // Huffman blocks from a real compressor).
        use std::io::Write as _;
        use std::process::{Command, Stdio};
        let data: Vec<u8> = (0..20000u32)
            .flat_map(|i| format!("frame_{} ", i % 97).into_bytes())
            .collect();
        let child = Command::new("gzip")
            .arg("-c")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn();
        let Ok(mut child) = child else {
            eprintln!("gzip not available; skipping");
            return;
        };
        child.stdin.as_mut().unwrap().write_all(&data).unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success());
        let decoded = crate::gzip_decompress(&out.stdout).unwrap();
        assert_eq!(decoded, data);
    }
}

//! `ev-flate` — a from-scratch DEFLATE (RFC 1951) and gzip (RFC 1952)
//! implementation, used as the compression substrate for reading and
//! writing pprof profiles.
//!
//! Real pprof profiles — the inputs to EasyView's data binding layer
//! (paper §IV-B) and to the response-time experiment (§VII-B, Fig. 5) —
//! are gzip-compressed protobuf messages. Reproducing the end-to-end
//! "open a profile" path therefore requires a decompressor on the hot
//! path; this crate provides it without external dependencies.
//!
//! Three encoders are provided, one per DEFLATE block type:
//!
//! * [`CompressionLevel::Store`] emits uncompressed stored blocks —
//!   byte-exact size control, used when calibrating benchmark inputs to a
//!   target file size.
//! * [`CompressionLevel::Fast`] runs greedy LZ77 matching over a hash
//!   chain and codes the result with the fixed Huffman tables.
//! * [`CompressionLevel::High`] searches matches more deeply and codes
//!   each block with per-block dynamic Huffman tables (length-limited
//!   canonical codes shipped through the code-length code) — zlib-class
//!   ratios.
//!
//! The decoder likewise handles all three block types, so it accepts
//! output from any conforming compressor (zlib, gzip(1), Go's
//! `compress/gzip` as used by pprof); interop is tested in both
//! directions against the system `gzip(1)` when present.
//!
//! # Examples
//!
//! ```
//! use ev_flate::{gzip_compress, gzip_decompress, CompressionLevel};
//!
//! # fn main() -> Result<(), ev_flate::FlateError> {
//! let data = b"profiles profiles profiles".repeat(10);
//! let gz = gzip_compress(&data, CompressionLevel::Fast);
//! assert!(gz.len() < data.len());
//! assert_eq!(gzip_decompress(&gz)?, data);
//! # Ok(())
//! # }
//! ```

mod bits;
mod checksum;
mod deflate;
mod dynamic;
mod gzip;
mod huffman;
mod inflate;
mod stream;

/// Cached handles for this crate's `ev-trace` counters, registered on
/// first use so the steady-state bump is one relaxed `fetch_add`.
pub(crate) mod metrics {
    use ev_trace::Counter;
    use std::sync::OnceLock;

    /// Bytes entering the codec (compressed input on inflate,
    /// uncompressed input on deflate).
    pub(crate) fn in_bytes() -> &'static Counter {
        static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
        HANDLE.get_or_init(|| ev_trace::counter("flate.in_bytes"))
    }

    /// Bytes leaving the codec.
    pub(crate) fn out_bytes() -> &'static Counter {
        static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
        HANDLE.get_or_init(|| ev_trace::counter("flate.out_bytes"))
    }

    /// Gzip members decoded (a multi-member file counts once per
    /// member; the parallel split and the sequential walk agree).
    pub(crate) fn members() -> &'static Counter {
        static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
        HANDLE.get_or_init(|| ev_trace::counter("flate.members"))
    }

    /// Huffman symbols resolved by a single primary-table load.
    pub(crate) fn lut_primary() -> &'static Counter {
        static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
        HANDLE.get_or_init(|| ev_trace::counter("flate.lut_primary"))
    }

    /// Huffman symbols that needed the second-tier subtable hop.
    pub(crate) fn lut_sub() -> &'static Counter {
        static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
        HANDLE.get_or_init(|| ev_trace::counter("flate.lut_sub"))
    }

    /// Inner-loop iterations that fell off the fused fast path onto the
    /// checked end-of-stream tail.
    pub(crate) fn lut_tail() -> &'static Counter {
        static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
        HANDLE.get_or_init(|| ev_trace::counter("flate.lut_tail"))
    }

    /// Output chunks yielded by the streaming decoders.
    pub(crate) fn stream_chunks() -> &'static Counter {
        static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
        HANDLE.get_or_init(|| ev_trace::counter("flate.stream_chunks"))
    }

    /// Multi-member files whose average member size cleared the
    /// parallel-split threshold (the split was attempted).
    pub(crate) fn split_parallel() -> &'static Counter {
        static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
        HANDLE.get_or_init(|| ev_trace::counter("flate.split_parallel"))
    }

    /// Multi-member files whose members were too small to parallelize,
    /// decoded by the sequential walk instead.
    pub(crate) fn split_fallback() -> &'static Counter {
        static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
        HANDLE.get_or_init(|| ev_trace::counter("flate.split_fallback"))
    }
}

pub use checksum::{crc32, crc32_reference, Crc32};
pub use deflate::{deflate_compress, CompressionLevel};
pub use gzip::{gzip_compress, gzip_decompress, gzip_decompress_with, is_gzip, PAR_MEMBER_MIN_BYTES};
pub use inflate::{
    inflate, inflate_member, inflate_reference, inflate_reference_member, inflate_with_size_hint,
    MAX_SIZE_HINT,
};
pub use stream::{GzipStream, InflateStream, DEFAULT_CHUNK_SIZE, WINDOW_SIZE};

// Re-exported so container callers can pick a decompression policy
// without depending on `ev-par` directly.
pub use ev_par::ExecPolicy;

use std::error::Error;
use std::fmt;

/// Errors produced while compressing or decompressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlateError {
    /// The input ended before the stream was complete.
    UnexpectedEof,
    /// A block header used the reserved block type 11.
    InvalidBlockType,
    /// A stored block's LEN and NLEN fields were not complements.
    StoredLengthMismatch,
    /// A Huffman code table was over- or under-subscribed.
    InvalidHuffmanTable,
    /// A compressed symbol did not decode to any code in the table.
    InvalidSymbol,
    /// A back-reference pointed before the start of the output.
    DistanceTooFar {
        /// Requested distance.
        distance: usize,
        /// Bytes produced so far.
        produced: usize,
    },
    /// The gzip magic bytes were missing.
    NotGzip,
    /// The gzip header used an unsupported compression method.
    UnsupportedMethod(u8),
    /// The gzip CRC32 trailer did not match the decompressed data.
    ChecksumMismatch {
        /// CRC stored in the trailer.
        expected: u32,
        /// CRC computed over the output.
        actual: u32,
    },
    /// The gzip ISIZE trailer did not match the decompressed length.
    LengthMismatch {
        /// Length stored in the trailer (mod 2^32).
        expected: u32,
        /// Actual decompressed length (mod 2^32).
        actual: u32,
    },
    /// The gzip header declared reserved flag bits.
    ReservedFlags(u8),
    /// Bytes remained after the last member's trailer that do not
    /// begin another gzip member. Trailing garbage is an error, never
    /// silently ignored.
    TrailingGarbage {
        /// Byte offset where the garbage begins.
        offset: usize,
    },
}

impl fmt::Display for FlateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlateError::UnexpectedEof => write!(f, "unexpected end of compressed stream"),
            FlateError::InvalidBlockType => write!(f, "reserved deflate block type"),
            FlateError::StoredLengthMismatch => {
                write!(f, "stored block length check failed")
            }
            FlateError::InvalidHuffmanTable => write!(f, "invalid huffman code lengths"),
            FlateError::InvalidSymbol => write!(f, "undecodable huffman symbol"),
            FlateError::DistanceTooFar { distance, produced } => {
                write!(f, "distance {distance} exceeds output size {produced}")
            }
            FlateError::NotGzip => write!(f, "missing gzip magic bytes"),
            FlateError::UnsupportedMethod(m) => {
                write!(f, "unsupported gzip compression method {m}")
            }
            FlateError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "gzip crc mismatch: stored {expected:#010x}, computed {actual:#010x}"
                )
            }
            FlateError::LengthMismatch { expected, actual } => {
                write!(f, "gzip length mismatch: stored {expected}, computed {actual}")
            }
            FlateError::ReservedFlags(bits) => {
                write!(f, "gzip header sets reserved flag bits {bits:#04x}")
            }
            FlateError::TrailingGarbage { offset } => {
                write!(f, "trailing garbage after gzip member at byte {offset}")
            }
        }
    }
}

impl Error for FlateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let errs = [
            FlateError::UnexpectedEof,
            FlateError::InvalidBlockType,
            FlateError::StoredLengthMismatch,
            FlateError::InvalidHuffmanTable,
            FlateError::InvalidSymbol,
            FlateError::DistanceTooFar {
                distance: 9,
                produced: 1,
            },
            FlateError::NotGzip,
            FlateError::UnsupportedMethod(9),
            FlateError::ChecksumMismatch {
                expected: 1,
                actual: 2,
            },
            FlateError::LengthMismatch {
                expected: 1,
                actual: 2,
            },
            FlateError::ReservedFlags(0xe0),
            FlateError::TrailingGarbage { offset: 42 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}

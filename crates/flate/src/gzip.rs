//! The gzip container format (RFC 1952) around a DEFLATE stream.

use crate::checksum::crc32;
use crate::deflate::{deflate_compress, CompressionLevel};
use crate::inflate::inflate_with_size_hint;
use crate::FlateError;

const MAGIC: [u8; 2] = [0x1f, 0x8b];
const METHOD_DEFLATE: u8 = 8;

const FTEXT: u8 = 1 << 0;
const FHCRC: u8 = 1 << 1;
const FEXTRA: u8 = 1 << 2;
const FNAME: u8 = 1 << 3;
const FCOMMENT: u8 = 1 << 4;
const RESERVED: u8 = 0xe0;

/// Returns `true` if `data` begins with the gzip magic bytes.
///
/// EasyView's format auto-detection (`ev-formats`) uses this to decide
/// whether a profile needs decompression before parsing.
pub fn is_gzip(data: &[u8]) -> bool {
    data.len() >= 2 && data[..2] == MAGIC
}

/// Wraps `data` in a gzip member: header, DEFLATE body, CRC32 + ISIZE
/// trailer. The header carries no name/comment/extra fields and a zero
/// mtime, like Go's `compress/gzip` default used by pprof.
pub fn gzip_compress(data: &[u8], level: CompressionLevel) -> Vec<u8> {
    let _span = ev_trace::span("flate.deflate");
    let body = deflate_compress(data, level);
    if ev_trace::enabled() {
        crate::metrics::in_bytes().add(data.len() as u64);
        crate::metrics::out_bytes().add(body.len() as u64 + 18);
    }
    let mut out = Vec::with_capacity(body.len() + 18);
    out.extend_from_slice(&MAGIC);
    out.push(METHOD_DEFLATE);
    out.push(0); // FLG
    out.extend_from_slice(&[0, 0, 0, 0]); // MTIME
    out.push(0); // XFL
    out.push(255); // OS = unknown
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Decompresses a gzip member, verifying the CRC32 and ISIZE trailer.
///
/// Optional header fields (FEXTRA, FNAME, FCOMMENT, FHCRC) are parsed and
/// skipped, so output from `gzip(1)` (which records file names) is
/// accepted.
///
/// # Errors
///
/// Fails on a missing magic, unsupported method, reserved flags,
/// truncated input, DEFLATE errors, or trailer mismatches.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, FlateError> {
    let _span = ev_trace::span("flate.inflate");
    if ev_trace::enabled() {
        crate::metrics::in_bytes().add(data.len() as u64);
    }
    if !is_gzip(data) {
        return Err(FlateError::NotGzip);
    }
    if data.len() < 18 {
        return Err(FlateError::UnexpectedEof);
    }
    let method = data[2];
    if method != METHOD_DEFLATE {
        return Err(FlateError::UnsupportedMethod(method));
    }
    let flags = data[3];
    if flags & RESERVED != 0 {
        return Err(FlateError::ReservedFlags(flags & RESERVED));
    }
    // Skip MTIME (4), XFL, OS.
    let mut pos = 10usize;

    if flags & FEXTRA != 0 {
        if data.len() < pos + 2 {
            return Err(FlateError::UnexpectedEof);
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    for flag in [FNAME, FCOMMENT] {
        if flags & flag != 0 {
            let nul = data[pos..]
                .iter()
                .position(|&b| b == 0)
                .ok_or(FlateError::UnexpectedEof)?;
            pos += nul + 1;
        }
    }
    if flags & FHCRC != 0 {
        pos += 2;
    }
    let _ = flags & FTEXT; // advisory only

    if data.len() < pos + 8 {
        return Err(FlateError::UnexpectedEof);
    }
    let body = &data[pos..data.len() - 8];
    let trailer = &data[data.len() - 8..];
    let stored_crc = u32::from_le_bytes(trailer[..4].try_into().expect("4 bytes"));
    let stored_len = u32::from_le_bytes(trailer[4..].try_into().expect("4 bytes"));
    // ISIZE records the exact uncompressed size (mod 2^32), so for any
    // well-formed member the output lands in a single allocation. The
    // hint is untrusted: inflate caps it and grows if the trailer lies.
    let out = inflate_with_size_hint(body, stored_len as usize)?;
    let actual_crc = crc32(&out);
    if stored_crc != actual_crc {
        return Err(FlateError::ChecksumMismatch {
            expected: stored_crc,
            actual: actual_crc,
        });
    }
    let actual_len = out.len() as u32;
    if stored_len != actual_len {
        return Err(FlateError::LengthMismatch {
            expected: stored_len,
            actual: actual_len,
        });
    }
    if ev_trace::enabled() {
        crate::metrics::out_bytes().add(out.len() as u64);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_test::prelude::*;

    #[test]
    fn detects_magic() {
        assert!(is_gzip(&[0x1f, 0x8b, 0x08]));
        assert!(!is_gzip(&[0x1f]));
        assert!(!is_gzip(b"plain text"));
    }

    #[test]
    fn rejects_non_gzip() {
        assert_eq!(gzip_decompress(b"hello"), Err(FlateError::NotGzip));
    }

    #[test]
    fn rejects_bad_method() {
        let mut gz = gzip_compress(b"x", CompressionLevel::Store);
        gz[2] = 7;
        assert_eq!(gzip_decompress(&gz), Err(FlateError::UnsupportedMethod(7)));
    }

    #[test]
    fn rejects_reserved_flags() {
        let mut gz = gzip_compress(b"x", CompressionLevel::Store);
        gz[3] = 0x20;
        assert_eq!(gzip_decompress(&gz), Err(FlateError::ReservedFlags(0x20)));
    }

    #[test]
    fn detects_corrupted_payload() {
        let data = b"profile payload for checksum test".repeat(4);
        let mut gz = gzip_compress(&data, CompressionLevel::Store);
        // Flip a byte inside the stored payload.
        let mid = gz.len() / 2;
        gz[mid] ^= 0xff;
        let err = gzip_decompress(&gz).unwrap_err();
        assert!(
            matches!(
                err,
                FlateError::ChecksumMismatch { .. } | FlateError::StoredLengthMismatch
            ),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn detects_bad_isize() {
        let data = b"some data";
        let mut gz = gzip_compress(data, CompressionLevel::Store);
        let n = gz.len();
        gz[n - 1] ^= 1;
        assert!(matches!(
            gzip_decompress(&gz),
            Err(FlateError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn skips_fname_header() {
        // Build a member with FNAME set manually.
        let data = b"named member";
        let body = crate::deflate::deflate_compress(data, CompressionLevel::Store);
        let mut gz = vec![0x1f, 0x8b, 8, FNAME, 0, 0, 0, 0, 0, 255];
        gz.extend_from_slice(b"profile.pb\0");
        gz.extend_from_slice(&body);
        gz.extend_from_slice(&crc32(data).to_le_bytes());
        gz.extend_from_slice(&(data.len() as u32).to_le_bytes());
        assert_eq!(gzip_decompress(&gz).unwrap(), data);
    }

    #[test]
    fn truncated_member() {
        let gz = gzip_compress(b"hello world", CompressionLevel::Fast);
        for cut in [1, 5, 11, gz.len() - 1] {
            assert!(gzip_decompress(&gz[..cut]).is_err(), "cut at {cut}");
        }
    }

    property! {
        #![cases(48)]

        fn roundtrip_store(data in vec(any_u8(), 0..256)) {
            let gz = gzip_compress(&data, CompressionLevel::Store);
            prop_assert_eq!(gzip_decompress(&gz).unwrap(), data);
        }

        fn roundtrip_fast(data in vec(any_u8(), 0..256)) {
            let gz = gzip_compress(&data, CompressionLevel::Fast);
            prop_assert_eq!(gzip_decompress(&gz).unwrap(), data);
        }

        fn arbitrary_bytes_never_panic(data in vec(any_u8(), 0..256)) {
            let _ = gzip_decompress(&data);
        }
    }
}

//! The gzip container format (RFC 1952) around DEFLATE streams.
//!
//! RFC 1952 §2.2 explicitly allows a gzip file to be a *sequence* of
//! members — Go's `compress/gzip` (the pprof writer) and `gzip(1)`
//! pipelines (`gzip a; gzip b; cat a.gz b.gz`) both emit such files —
//! so the decoder here is member-streaming: each member's header is
//! parsed, its DEFLATE stream inflated to its own `BFINAL` boundary,
//! its *own* CRC32/ISIZE trailer verified in place, and decoding then
//! resumes at the next member's magic. Independent members are fanned
//! out onto `ev-par` workers by [`gzip_decompress_with`]; the join is
//! order-preserving and bit-identical at any thread count.

use crate::checksum::crc32;
use crate::deflate::{deflate_compress, CompressionLevel};
use crate::inflate::inflate_member;
use crate::FlateError;
use ev_par::ExecPolicy;

pub(crate) const MAGIC: [u8; 2] = [0x1f, 0x8b];
const METHOD_DEFLATE: u8 = 8;

const FTEXT: u8 = 1 << 0;
const FHCRC: u8 = 1 << 1;
const FEXTRA: u8 = 1 << 2;
const FNAME: u8 = 1 << 3;
const FCOMMENT: u8 = 1 << 4;
const RESERVED: u8 = 0xe0;

/// Smallest possible member: 10-byte header, a 2-byte DEFLATE stream
/// (a fixed-Huffman block holding only end-of-block), 8-byte trailer.
/// Used to prune candidate member starts during the parallel split.
const MIN_MEMBER_LEN: usize = 20;

/// Returns `true` if `data` begins with the gzip magic bytes.
///
/// EasyView's format auto-detection (`ev-formats`) uses this to decide
/// whether a profile needs decompression before parsing.
pub fn is_gzip(data: &[u8]) -> bool {
    data.len() >= 2 && data[..2] == MAGIC
}

/// Wraps `data` in a gzip member: header, DEFLATE body, CRC32 + ISIZE
/// trailer. The header carries no name/comment/extra fields and a zero
/// mtime, like Go's `compress/gzip` default used by pprof.
pub fn gzip_compress(data: &[u8], level: CompressionLevel) -> Vec<u8> {
    let _span = ev_trace::span("flate.deflate");
    let body = deflate_compress(data, level);
    if ev_trace::enabled() {
        crate::metrics::in_bytes().add(data.len() as u64);
        crate::metrics::out_bytes().add(body.len() as u64 + 18);
    }
    let mut out = Vec::with_capacity(body.len() + 18);
    out.extend_from_slice(&MAGIC);
    out.push(METHOD_DEFLATE);
    out.push(0); // FLG
    out.extend_from_slice(&[0, 0, 0, 0]); // MTIME
    out.push(0); // XFL
    out.push(255); // OS = unknown
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Parses one member header starting at `start`, returning the offset
/// of the DEFLATE body. Every optional-field length (FEXTRA's XLEN,
/// the FNAME/FCOMMENT NUL scans, the FHCRC skip) is bounds-checked
/// against the buffer: all fields are attacker-controlled, and an
/// oversized XLEN must surface as [`FlateError::UnexpectedEof`], never
/// as a slice panic.
pub(crate) fn parse_header(data: &[u8], start: usize) -> Result<usize, FlateError> {
    let header = data.get(start..).ok_or(FlateError::UnexpectedEof)?;
    if header.len() < 10 {
        return Err(FlateError::UnexpectedEof);
    }
    if header[..2] != MAGIC {
        return Err(FlateError::NotGzip);
    }
    let method = header[2];
    if method != METHOD_DEFLATE {
        return Err(FlateError::UnsupportedMethod(method));
    }
    let flags = header[3];
    if flags & RESERVED != 0 {
        return Err(FlateError::ReservedFlags(flags & RESERVED));
    }
    // Skip MTIME (4), XFL, OS. `pos <= header.len()` holds at every
    // step below, so the `header.len() - pos` checks cannot underflow.
    let mut pos = 10usize;

    if flags & FEXTRA != 0 {
        let xlen_bytes = header.get(pos..pos + 2).ok_or(FlateError::UnexpectedEof)?;
        let xlen = u16::from_le_bytes(xlen_bytes.try_into().expect("2 bytes")) as usize;
        pos += 2;
        if header.len() - pos < xlen {
            return Err(FlateError::UnexpectedEof);
        }
        pos += xlen;
    }
    for flag in [FNAME, FCOMMENT] {
        if flags & flag != 0 {
            let nul = header[pos..]
                .iter()
                .position(|&b| b == 0)
                .ok_or(FlateError::UnexpectedEof)?;
            pos += nul + 1;
        }
    }
    if flags & FHCRC != 0 {
        // The two CRC16 bytes are skipped, not verified (matching
        // zlib's default), but their presence is still required.
        if header.len() - pos < 2 {
            return Err(FlateError::UnexpectedEof);
        }
        pos += 2;
    }
    let _ = flags & FTEXT; // advisory only

    Ok(start + pos)
}

/// Reads the `(CRC32, ISIZE)` trailer fields at `pos`.
pub(crate) fn read_trailer(data: &[u8], pos: usize) -> (u32, u32) {
    let crc = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
    let len = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
    (crc, len)
}

/// Compares computed CRC32/length against a member's stored trailer —
/// CRC first, then length, an order both the buffered and streaming
/// paths must share for error identity. ISIZE records the uncompressed
/// size **mod 2^32** (RFC 1952), so callers pass a truncated length
/// rather than rejecting >4 GiB streams outright.
pub(crate) fn verify_trailer(
    actual_crc: u32,
    actual_len: u32,
    stored_crc: u32,
    stored_len: u32,
) -> Result<(), FlateError> {
    if stored_crc != actual_crc {
        return Err(FlateError::ChecksumMismatch {
            expected: stored_crc,
            actual: actual_crc,
        });
    }
    if stored_len != actual_len {
        return Err(FlateError::LengthMismatch {
            expected: stored_len,
            actual: actual_len,
        });
    }
    Ok(())
}

/// Verifies one member's trailer against its decompressed bytes.
fn check_trailer(out: &[u8], stored_crc: u32, stored_len: u32) -> Result<(), FlateError> {
    verify_trailer(crc32(out), out.len() as u32, stored_crc, stored_len)
}

/// Decompresses a gzip file: one member, or any number of concatenated
/// members (RFC 1952 §2.2) whose outputs are concatenated in order.
///
/// Optional header fields (FEXTRA, FNAME, FCOMMENT, FHCRC) are parsed
/// and skipped per member, so output from `gzip(1)` (which records
/// file names) is accepted. Each member's CRC32/ISIZE trailer is
/// verified against *that member's* output (ISIZE mod 2^32), not
/// against the file's final 8 bytes.
///
/// Trailing-garbage policy: every byte of the input must belong to a
/// well-formed member. Bytes after a member's trailer that do not
/// start another member's magic are an error
/// ([`FlateError::TrailingGarbage`]), never silently ignored —
/// truncating or padding a profile should be loud.
///
/// # Errors
///
/// Fails on a missing magic, unsupported method, reserved flags,
/// truncated input, DEFLATE errors, trailer mismatches, or trailing
/// garbage.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, FlateError> {
    gzip_decompress_with(data, ExecPolicy::SEQUENTIAL)
}

/// Like [`gzip_decompress`], inflating independent members on `ev-par`
/// workers under `policy`.
///
/// Output and errors are **bit-identical** to the sequential path at
/// any thread count: member boundaries are discovered by an optimistic
/// magic-byte split whose every segment must decode as exactly one
/// whole member (header, stream, matching trailer, nothing left
/// over) — a DEFLATE stream is self-delimiting, so a fully validated
/// split reproduces the sequential walk exactly — and any rejected
/// segment abandons the split for the sequential member walk.
///
/// # Errors
///
/// Same conditions as [`gzip_decompress`].
pub fn gzip_decompress_with(data: &[u8], policy: ExecPolicy) -> Result<Vec<u8>, FlateError> {
    let _span = ev_trace::span("flate.inflate");
    if ev_trace::enabled() {
        crate::metrics::in_bytes().add(data.len() as u64);
    }
    if !is_gzip(data) {
        return Err(FlateError::NotGzip);
    }
    if data.len() < 18 {
        return Err(FlateError::UnexpectedEof);
    }
    let (out, members) = decompress_members(data, policy)?;
    if ev_trace::enabled() {
        crate::metrics::members().add(members);
        crate::metrics::out_bytes().add(out.len() as u64);
    }
    Ok(out)
}

/// Minimum average compressed bytes per candidate member before the
/// parallel split is attempted. Below this, per-member work is too
/// small to amortize the candidate scan and fork-join overhead and the
/// split used to run *slower* than the sequential walk (the `ingest`
/// bench's 8 × ~40 KiB workload measured ~7% under sequential), so
/// small-member files take the sequential path outright. The
/// `flate.split_parallel` / `flate.split_fallback` counters record
/// which way each file went.
pub const PAR_MEMBER_MIN_BYTES: usize = 256 << 10;

fn decompress_members(data: &[u8], policy: ExecPolicy) -> Result<(Vec<u8>, u64), FlateError> {
    // Files too small for even two threshold-sized members skip the
    // candidate scan entirely.
    if !policy.is_sequential() && data.len() >= 2 * PAR_MEMBER_MIN_BYTES {
        let starts = member_start_candidates(data);
        if starts.len() > 1 {
            if data.len() / starts.len() >= PAR_MEMBER_MIN_BYTES {
                if ev_trace::enabled() {
                    crate::metrics::split_parallel().add(1);
                }
                if let Some(out) = decompress_split(data, &starts, policy) {
                    return Ok((out, starts.len() as u64));
                }
            } else if ev_trace::enabled() {
                crate::metrics::split_fallback().add(1);
            }
        }
    }
    decompress_members_seq(data)
}

/// The sequential member walk — the semantic reference the parallel
/// split must reproduce bit-for-bit (and error-for-error).
fn decompress_members_seq(data: &[u8]) -> Result<(Vec<u8>, u64), FlateError> {
    let mut out: Vec<u8> = Vec::new();
    let mut pos = 0usize;
    let mut members = 0u64;
    while pos < data.len() {
        if data.len() - pos < 2 || data[pos..pos + 2] != MAGIC {
            return Err(FlateError::TrailingGarbage { offset: pos });
        }
        let body = parse_header(data, pos)?;
        // Size hint: the first member of a single-member file (the
        // common case — every pprof from Go's runtime) finds its exact
        // ISIZE in the file's final 8 bytes, so typical profiles
        // decompress into one exact allocation. Later members (or a
        // multi-member first) fall back to an expansion heuristic; the
        // hint is untrusted either way and capped by inflate.
        let hint = if members == 0 {
            read_trailer(data, data.len() - 8).1 as usize
        } else {
            (data.len() - body).saturating_mul(3)
        };
        let (piece, consumed) = inflate_member(&data[body..], hint)?;
        let trailer = body + consumed;
        if data.len() - trailer < 8 {
            return Err(FlateError::UnexpectedEof);
        }
        let (stored_crc, stored_len) = read_trailer(data, trailer);
        check_trailer(&piece, stored_crc, stored_len)?;
        if members == 0 {
            out = piece;
        } else {
            out.extend_from_slice(&piece);
        }
        members += 1;
        pos = trailer + 8;
    }
    Ok((out, members))
}

/// Scans for plausible member starts: byte offsets where the gzip
/// magic, the DEFLATE method byte, and a clean flag byte line up, far
/// enough from the previous candidate to fit a whole member. Offset 0
/// is always a candidate. False positives (the pattern occurring
/// inside compressed data) cost only a rejected split, never
/// correctness.
fn member_start_candidates(data: &[u8]) -> Vec<usize> {
    let mut starts = vec![0usize];
    if data.len() < 2 * MIN_MEMBER_LEN {
        return starts;
    }
    let last = data.len() - MIN_MEMBER_LEN;
    let mut i = MIN_MEMBER_LEN;
    while i <= last {
        // memchr-style skip to the next 0x1f before the full check.
        match data[i..=last].iter().position(|&b| b == 0x1f) {
            None => break,
            Some(off) => i += off,
        }
        if data[i + 1] == MAGIC[1]
            && data[i + 2] == METHOD_DEFLATE
            && data[i + 3] & RESERVED == 0
            && i - starts.last().expect("non-empty") >= MIN_MEMBER_LEN
        {
            starts.push(i);
        }
        i += 1;
    }
    starts
}

/// Optimistically decodes the candidate split in parallel. Returns
/// `None` — falling back to the sequential walk — unless **every**
/// segment decodes as exactly one whole member. In the all-valid case
/// the concatenation equals the sequential result by induction:
/// segment 0 starts where the sequential walk starts, and a segment
/// that fully decodes consumes exactly the bytes the walk would,
/// placing the walk at the next segment's start.
fn decompress_split(data: &[u8], starts: &[usize], policy: ExecPolicy) -> Option<Vec<u8>> {
    let segments: Vec<&[u8]> = starts
        .iter()
        .zip(starts[1..].iter().chain(std::iter::once(&data.len())))
        .map(|(&a, &b)| &data[a..b])
        .collect();
    let pieces = ev_par::parallel_map(&segments, policy, |seg| decode_whole_member(seg));
    // Parallel ordered join: prefix-sum the piece offsets, then let each
    // task memcpy its piece into its disjoint range. The sequential
    // `extend_from_slice` walk this replaces was a measurable fraction
    // of multi-member wall-clock once inflate itself was parallel.
    let mut offsets = Vec::with_capacity(pieces.len());
    let mut total = 0usize;
    for piece in &pieces {
        offsets.push(total);
        total += piece.as_ref()?.len();
    }
    let mut out = vec![0u8; total];
    let shared = ev_par::SharedSlice::new(&mut out);
    ev_par::parallel_tasks(pieces.len(), policy, &|i| {
        let piece = pieces[i].as_deref().expect("validated above");
        // Ranges are disjoint by construction of the prefix sums.
        unsafe { shared.copy_from_slice_at(offsets[i], piece) };
    });
    Some(out)
}

/// Decodes `segment` if and only if it is exactly one well-formed
/// member: header, DEFLATE stream ending precisely 8 bytes before the
/// segment end, and a matching trailer. Anything else (including any
/// decode error) returns `None`.
fn decode_whole_member(segment: &[u8]) -> Option<Vec<u8>> {
    let body = parse_header(segment, 0).ok()?;
    if segment.len() - body < 8 {
        return None;
    }
    let (stored_crc, stored_len) = read_trailer(segment, segment.len() - 8);
    let (out, consumed) = inflate_member(&segment[body..], stored_len as usize).ok()?;
    if body + consumed + 8 != segment.len() {
        return None;
    }
    check_trailer(&out, stored_crc, stored_len).ok()?;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_test::prelude::*;

    /// Builds a member with arbitrary header flags/fields for tests.
    fn member_with_header(data: &[u8], flags: u8, fields: &[u8]) -> Vec<u8> {
        let body = deflate_compress(data, CompressionLevel::Store);
        let mut gz = vec![MAGIC[0], MAGIC[1], METHOD_DEFLATE, flags, 0, 0, 0, 0, 0, 255];
        gz.extend_from_slice(fields);
        gz.extend_from_slice(&body);
        gz.extend_from_slice(&crc32(data).to_le_bytes());
        gz.extend_from_slice(&(data.len() as u32).to_le_bytes());
        gz
    }

    #[test]
    fn detects_magic() {
        assert!(is_gzip(&[0x1f, 0x8b, 0x08]));
        assert!(!is_gzip(&[0x1f]));
        assert!(!is_gzip(b"plain text"));
    }

    #[test]
    fn rejects_non_gzip() {
        assert_eq!(gzip_decompress(b"hello"), Err(FlateError::NotGzip));
    }

    #[test]
    fn rejects_bad_method() {
        let mut gz = gzip_compress(b"x", CompressionLevel::Store);
        gz[2] = 7;
        assert_eq!(gzip_decompress(&gz), Err(FlateError::UnsupportedMethod(7)));
    }

    #[test]
    fn rejects_reserved_flags() {
        let mut gz = gzip_compress(b"x", CompressionLevel::Store);
        gz[3] = 0x20;
        assert_eq!(gzip_decompress(&gz), Err(FlateError::ReservedFlags(0x20)));
    }

    #[test]
    fn detects_corrupted_payload() {
        let data = b"profile payload for checksum test".repeat(4);
        let mut gz = gzip_compress(&data, CompressionLevel::Store);
        // Flip a byte inside the stored payload.
        let mid = gz.len() / 2;
        gz[mid] ^= 0xff;
        let err = gzip_decompress(&gz).unwrap_err();
        assert!(
            matches!(
                err,
                FlateError::ChecksumMismatch { .. } | FlateError::StoredLengthMismatch
            ),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn detects_bad_isize() {
        let data = b"some data";
        let mut gz = gzip_compress(data, CompressionLevel::Store);
        let n = gz.len();
        gz[n - 1] ^= 1;
        assert!(matches!(
            gzip_decompress(&gz),
            Err(FlateError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn lying_isize_cannot_mask_or_overallocate() {
        // ISIZE claiming 4 GiB - 1: must fail as a clean length
        // mismatch after decoding, not pre-allocate the claimed size
        // (inflate caps hints at MAX_SIZE_HINT) and not mask the real
        // length.
        let data = b"short member";
        let mut gz = gzip_compress(data, CompressionLevel::Fast);
        let n = gz.len();
        gz[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            gzip_decompress(&gz),
            Err(FlateError::LengthMismatch {
                expected: u32::MAX,
                actual: data.len() as u32,
            })
        );
    }

    #[test]
    fn skips_fname_header() {
        let data = b"named member";
        let gz = member_with_header(data, FNAME, b"profile.pb\0");
        assert_eq!(gzip_decompress(&gz).unwrap(), data);
    }

    #[test]
    fn skips_fextra_fcomment_fhcrc() {
        let data = b"full-option member";
        let mut fields = Vec::new();
        fields.extend_from_slice(&4u16.to_le_bytes()); // XLEN
        fields.extend_from_slice(b"EVxx"); // extra payload
        fields.extend_from_slice(b"name.pb\0");
        fields.extend_from_slice(b"a comment\0");
        fields.extend_from_slice(&[0xab, 0xcd]); // header CRC16 (skipped)
        let gz = member_with_header(data, FEXTRA | FNAME | FCOMMENT | FHCRC, &fields);
        assert_eq!(gzip_decompress(&gz).unwrap(), data);
    }

    #[test]
    fn oversized_xlen_is_eof_not_panic() {
        // Regression: an XLEN past the end of the buffer used to drive
        // the header cursor out of bounds and panic on the FNAME scan.
        let data = b"payload";
        let real = member_with_header(data, FEXTRA | FNAME, b"\x04\x00EVxxname\0");
        for xlen in [0xffffu16, (real.len() + 1) as u16, 0x7f00] {
            let mut gz = real.clone();
            gz[10..12].copy_from_slice(&xlen.to_le_bytes());
            assert_eq!(
                gzip_decompress(&gz),
                Err(FlateError::UnexpectedEof),
                "xlen {xlen:#06x}"
            );
        }
    }

    #[test]
    fn truncated_optional_fields_are_eof() {
        let data = b"x";
        // FNAME flag set but no NUL terminator anywhere.
        let mut gz = member_with_header(data, 0, &[]);
        gz[3] = FNAME;
        let truncated = &gz[..12];
        assert_eq!(gzip_decompress(truncated), Err(FlateError::UnexpectedEof));
        // FHCRC flag set on a header cut right after the fixed fields.
        let mut short = gz[..10].to_vec();
        short[3] = FHCRC;
        short.extend_from_slice(&[0u8; 8]); // pad past the 18-byte floor
        assert!(gzip_decompress(&short).is_err());
    }

    #[test]
    fn truncated_member() {
        let gz = gzip_compress(b"hello world", CompressionLevel::Fast);
        for cut in [1, 5, 11, gz.len() - 1] {
            assert!(gzip_decompress(&gz[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn two_member_concatenation() {
        let a = b"first member payload ".repeat(3);
        let b = b"second member, different bytes".repeat(2);
        let mut gz = gzip_compress(&a, CompressionLevel::Fast);
        gz.extend_from_slice(&gzip_compress(&b, CompressionLevel::High));
        let mut expected = a.clone();
        expected.extend_from_slice(&b);
        assert_eq!(gzip_decompress(&gz).unwrap(), expected);
    }

    #[test]
    fn three_member_concatenation_with_header_fields() {
        let parts: [&[u8]; 3] = [b"alpha alpha alpha", b"", b"gamma"];
        let mut gz = gzip_compress(parts[0], CompressionLevel::Store);
        gz.extend_from_slice(&member_with_header(parts[1], FNAME, b"empty.bin\0"));
        let mut fields = Vec::new();
        fields.extend_from_slice(&2u16.to_le_bytes());
        fields.extend_from_slice(b"xy");
        gz.extend_from_slice(&member_with_header(parts[2], FEXTRA, &fields));
        let expected: Vec<u8> = parts.concat();
        for threads in [1, 2, 8] {
            assert_eq!(
                gzip_decompress_with(&gz, ExecPolicy::with_threads(threads)).unwrap(),
                expected,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let mut gz = gzip_compress(b"clean member", CompressionLevel::Fast);
        let end = gz.len();
        gz.extend_from_slice(b"not a gzip member");
        assert_eq!(
            gzip_decompress(&gz),
            Err(FlateError::TrailingGarbage { offset: end })
        );
    }

    #[test]
    fn truncated_second_member_is_an_error() {
        let mut gz = gzip_compress(b"whole first member", CompressionLevel::Fast);
        let second = gzip_compress(b"second member that gets cut", CompressionLevel::Fast);
        gz.extend_from_slice(&second[..second.len() - 3]);
        for threads in [1, 4] {
            assert!(
                gzip_decompress_with(&gz, ExecPolicy::with_threads(threads)).is_err(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential_on_many_members() {
        // Enough members that the pool actually fans out, with bodies
        // containing 0x1f bytes to exercise false-positive candidates.
        let parts: Vec<Vec<u8>> = (0..12)
            .map(|i| {
                let mut p = format!("member {i} ").repeat(20 + i).into_bytes();
                p.extend_from_slice(&[0x1f, 0x8b, 0x08, 0x00, 0x1f, 0x8b]);
                p
            })
            .collect();
        let mut gz = Vec::new();
        let mut expected = Vec::new();
        for (i, p) in parts.iter().enumerate() {
            let level = if i % 2 == 0 { CompressionLevel::Fast } else { CompressionLevel::High };
            gz.extend_from_slice(&gzip_compress(p, level));
            expected.extend_from_slice(p);
        }
        let seq = gzip_decompress(&gz).unwrap();
        assert_eq!(seq, expected);
        for threads in [2, 4, 8] {
            assert_eq!(
                gzip_decompress_with(&gz, ExecPolicy::with_threads(threads)).unwrap(),
                seq,
                "threads {threads}"
            );
        }
    }

    property! {
        #![cases(48)]

        fn roundtrip_store(data in vec(any_u8(), 0..256)) {
            let gz = gzip_compress(&data, CompressionLevel::Store);
            prop_assert_eq!(gzip_decompress(&gz).unwrap(), data);
        }

        fn roundtrip_fast(data in vec(any_u8(), 0..256)) {
            let gz = gzip_compress(&data, CompressionLevel::Fast);
            prop_assert_eq!(gzip_decompress(&gz).unwrap(), data);
        }

        fn arbitrary_bytes_never_panic(data in vec(any_u8(), 0..256)) {
            let _ = gzip_decompress(&data);
        }

        fn arbitrary_header_fields_never_panic(
            flags in any_u8(),
            fields in vec(any_u8(), 0..64),
            body in vec(any_u8(), 0..64),
        ) {
            // Fully adversarial header: random flag byte (reserved bits
            // masked off so parsing proceeds) over random field bytes.
            let mut gz = vec![MAGIC[0], MAGIC[1], METHOD_DEFLATE, flags & !RESERVED,
                              0, 0, 0, 0, 0, 255];
            gz.extend_from_slice(&fields);
            gz.extend_from_slice(&body);
            let _ = gzip_decompress(&gz);
        }

        fn concatenated_members_equal_individual(
            parts in vec(vec(any_u8(), 0..96), 1..5),
            threads in 1usize..9,
        ) {
            let mut gz = Vec::new();
            let mut expected = Vec::new();
            for part in &parts {
                gz.extend_from_slice(&gzip_compress(part, CompressionLevel::Fast));
                expected.extend_from_slice(part);
            }
            let got = gzip_decompress_with(&gz, ExecPolicy::with_threads(threads)).unwrap();
            prop_assert_eq!(got, expected);
        }
    }
}

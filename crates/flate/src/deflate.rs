//! DEFLATE compression: stored blocks, a greedy fixed-Huffman encoder,
//! and a dynamic-Huffman encoder.

use crate::bits::BitWriter;
use crate::dynamic::{distance_code, length_code, write_dynamic_block, Token};
use crate::huffman::{canonical_codes, fixed_distance_lengths, fixed_literal_lengths};

/// Maximum payload of one stored block.
const STORED_BLOCK_MAX: usize = 0xffff;
/// Maximum LZ77 match length.
const MATCH_MAX: usize = 258;
/// Minimum LZ77 match length worth encoding.
const MATCH_MIN: usize = 3;
/// Maximum back-reference distance.
const WINDOW: usize = 32 * 1024;
/// Number of hash-head buckets (power of two).
const HASH_SIZE: usize = 1 << 15;

/// How hard [`deflate_compress`] works.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompressionLevel {
    /// Emit uncompressed stored blocks. Output size is
    /// `len + 5 * ceil(len / 65535)` bytes — used to calibrate benchmark
    /// profiles to exact file sizes.
    Store,
    /// Greedy LZ77 over a hash chain, coded with the fixed Huffman tables.
    #[default]
    Fast,
    /// Deeper match search coded with per-block dynamic Huffman tables
    /// (RFC 1951 §3.2.7) — zlib-class ratios at a few times the cost.
    High,
}

/// Compresses `data` into a raw DEFLATE stream (no gzip/zlib wrapper).
///
/// The output always decodes back to `data` with [`crate::inflate`]; this
/// roundtrip is property-tested.
///
/// # Examples
///
/// ```
/// use ev_flate::{deflate_compress, inflate, CompressionLevel};
///
/// let raw = deflate_compress(b"aaaaaaaaaaaaaaaa", CompressionLevel::Fast);
/// assert_eq!(inflate(&raw).unwrap(), b"aaaaaaaaaaaaaaaa");
/// ```
pub fn deflate_compress(data: &[u8], level: CompressionLevel) -> Vec<u8> {
    match level {
        CompressionLevel::Store => deflate_stored(data),
        CompressionLevel::Fast => deflate_fixed(data),
        CompressionLevel::High => deflate_dynamic(data),
    }
}

/// Runs the hash-chain match finder over `data`, producing LZ77 tokens.
fn tokenize(data: &[u8], tries_limit: u32) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(data.len() / 3 + 16);
    // head[h] = most recent position with hash h (+1, 0 = none);
    // prev[i % WINDOW] = previous position in the same chain.
    let mut head = vec![0usize; HASH_SIZE];
    let mut prev = vec![0usize; WINDOW];
    let mut i = 0usize;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MATCH_MIN <= data.len() {
            let h = hash3(data, i);
            let mut candidate = head[h];
            let mut tries = tries_limit;
            while candidate > 0 && tries > 0 {
                let pos = candidate - 1;
                if i - pos > WINDOW {
                    break;
                }
                let limit = MATCH_MAX.min(data.len() - i);
                let mut len = 0;
                while len < limit && data[pos + len] == data[i + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = i - pos;
                    if len == limit {
                        break;
                    }
                }
                candidate = prev[pos % WINDOW];
                tries -= 1;
            }
            prev[i % WINDOW] = head[h];
            head[h] = i + 1;
        }
        if best_len >= MATCH_MIN {
            tokens.push(Token::Match {
                len: best_len as u16,
                dist: best_dist as u16,
            });
            // Insert skipped positions so later matches can find them.
            let end = (i + best_len).min(data.len().saturating_sub(MATCH_MIN - 1));
            let mut j = i + 1;
            while j < end {
                let h = hash3(data, j);
                prev[j % WINDOW] = head[h];
                head[h] = j + 1;
                j += 1;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

fn deflate_dynamic(data: &[u8]) -> Vec<u8> {
    let tokens = tokenize(data, 48);
    let mut w = BitWriter::new();
    write_dynamic_block(&mut w, &tokens);
    w.into_bytes()
}

fn deflate_stored(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let mut chunks = data.chunks(STORED_BLOCK_MAX).peekable();
    // An empty input still needs one (empty, final) block.
    if chunks.peek().is_none() {
        w.bits(1, 1);
        w.bits(0, 2);
        w.align_to_byte();
        w.raw_bytes(&0u16.to_le_bytes());
        w.raw_bytes(&0xffffu16.to_le_bytes());
        return w.into_bytes();
    }
    while let Some(chunk) = chunks.next() {
        let bfinal = u32::from(chunks.peek().is_none());
        w.bits(bfinal, 1);
        w.bits(0, 2);
        w.align_to_byte();
        let len = chunk.len() as u16;
        w.raw_bytes(&len.to_le_bytes());
        w.raw_bytes(&(!len).to_le_bytes());
        w.raw_bytes(chunk);
    }
    w.into_bytes()
}

fn hash3(data: &[u8], i: usize) -> usize {
    let h = u32::from(data[i])
        .wrapping_mul(506832829)
        .wrapping_add(u32::from(data[i + 1]).wrapping_mul(65599))
        .wrapping_add(u32::from(data[i + 2]));
    (h as usize) & (HASH_SIZE - 1)
}

fn deflate_fixed(data: &[u8]) -> Vec<u8> {
    let lit_codes = canonical_codes(&fixed_literal_lengths());
    let dist_codes = canonical_codes(&fixed_distance_lengths());
    let mut w = BitWriter::new();
    w.bits(1, 1); // single final block
    w.bits(1, 2); // fixed Huffman

    let emit_literal = |w: &mut BitWriter, byte: u8| {
        let (code, len) = lit_codes[byte as usize];
        w.huffman_code(code, u32::from(len));
    };

    // head[h] = most recent position with hash h (+1, 0 = none);
    // prev[i % WINDOW] = previous position in the same chain.
    let mut head = vec![0usize; HASH_SIZE];
    let mut prev = vec![0usize; WINDOW];

    let mut i = 0usize;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MATCH_MIN <= data.len() {
            let h = hash3(data, i);
            let mut candidate = head[h];
            let mut tries = 8;
            while candidate > 0 && tries > 0 {
                let pos = candidate - 1;
                if i - pos > WINDOW {
                    break;
                }
                let limit = MATCH_MAX.min(data.len() - i);
                let mut len = 0;
                while len < limit && data[pos + len] == data[i + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = i - pos;
                    if len == limit {
                        break;
                    }
                }
                candidate = prev[pos % WINDOW];
                tries -= 1;
            }
            // Insert current position into the chain.
            prev[i % WINDOW] = head[h];
            head[h] = i + 1;
        }

        if best_len >= MATCH_MIN {
            let (lidx, lextra_bits, lextra) = length_code(best_len);
            let (code, clen) = lit_codes[257 + lidx];
            w.huffman_code(code, u32::from(clen));
            w.bits(lextra, lextra_bits);
            let (didx, dextra_bits, dextra) = distance_code(best_dist);
            let (dcode, dlen) = dist_codes[didx];
            w.huffman_code(dcode, u32::from(dlen));
            w.bits(dextra, dextra_bits);
            // Insert the skipped positions so later matches can find them.
            let end = (i + best_len).min(data.len().saturating_sub(MATCH_MIN - 1));
            let mut j = i + 1;
            while j < end {
                let h = hash3(data, j);
                prev[j % WINDOW] = head[h];
                head[h] = j + 1;
                j += 1;
            }
            i += best_len;
        } else {
            emit_literal(&mut w, data[i]);
            i += 1;
        }
    }

    let (code, len) = lit_codes[256];
    w.huffman_code(code, u32::from(len));
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate;
    use ev_test::prelude::*;

    #[test]
    fn stored_empty_roundtrip() {
        let raw = deflate_compress(&[], CompressionLevel::Store);
        assert_eq!(inflate(&raw).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn fast_empty_roundtrip() {
        let raw = deflate_compress(&[], CompressionLevel::Fast);
        assert_eq!(inflate(&raw).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn stored_multi_block_roundtrip() {
        // Forces 3 stored blocks.
        let data: Vec<u8> = (0..150_000u32).map(|i| (i % 251) as u8).collect();
        let raw = deflate_compress(&data, CompressionLevel::Store);
        // Exact size: len + 5 bytes per block.
        assert_eq!(raw.len(), data.len() + 5 * 3);
        assert_eq!(inflate(&raw).unwrap(), data);
    }

    #[test]
    fn fast_compresses_repetitive_data() {
        let data = b"func_name_12345;".repeat(1000);
        let raw = deflate_compress(&data, CompressionLevel::Fast);
        assert!(
            raw.len() < data.len() / 4,
            "expected >4x ratio, got {} -> {}",
            data.len(),
            raw.len()
        );
        assert_eq!(inflate(&raw).unwrap(), data);
    }

    #[test]
    fn fast_handles_incompressible_data() {
        // Pseudo-random bytes: fixed-Huffman literals cost slightly over
        // 8 bits each, so output may exceed input, but must roundtrip.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect();
        let raw = deflate_compress(&data, CompressionLevel::Fast);
        assert_eq!(inflate(&raw).unwrap(), data);
    }

    #[test]
    fn fast_long_run_uses_max_matches() {
        let data = vec![b'z'; 100_000];
        let raw = deflate_compress(&data, CompressionLevel::Fast);
        assert!(raw.len() < 1000, "run-length data should collapse, got {}", raw.len());
        assert_eq!(inflate(&raw).unwrap(), data);
    }

    #[test]
    fn high_empty_roundtrip() {
        let raw = deflate_compress(&[], CompressionLevel::High);
        assert_eq!(inflate(&raw).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn high_beats_fast_on_text() {
        let data: Vec<u8> = (0..3000u32)
            .flat_map(|i| format!("pkg.Function{:05} src/file_{}.go\n", i % 300, i % 41).into_bytes())
            .collect();
        let fast = deflate_compress(&data, CompressionLevel::Fast);
        let high = deflate_compress(&data, CompressionLevel::High);
        assert_eq!(inflate(&high).unwrap(), data);
        assert!(
            high.len() < fast.len(),
            "dynamic tables should beat fixed: {} vs {}",
            high.len(),
            fast.len()
        );
    }

    #[test]
    fn high_output_decodes_with_system_gzip() {
        // Cross-validate the dynamic block against a real decoder.
        use std::io::Write as _;
        use std::process::{Command, Stdio};
        let data = b"dynamic huffman blocks interop test ".repeat(400);
        let gz = crate::gzip_compress(&data, CompressionLevel::High);
        let child = Command::new("gzip")
            .args(["-d", "-c"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn();
        let Ok(mut child) = child else {
            eprintln!("gzip not available; skipping");
            return;
        };
        child.stdin.as_mut().unwrap().write_all(&gz).unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "gzip -d failed: {:?}", out);
        assert_eq!(out.stdout, data);
    }

    #[test]
    fn length_code_boundaries() {
        assert_eq!(length_code(3).0, 0);
        assert_eq!(length_code(10).0, 7);
        assert_eq!(length_code(11).0, 8);
        assert_eq!(length_code(258).0, 28);
    }

    #[test]
    fn distance_code_boundaries() {
        assert_eq!(distance_code(1).0, 0);
        assert_eq!(distance_code(4).0, 3);
        assert_eq!(distance_code(5).0, 4);
        assert_eq!(distance_code(24577).0, 29);
        assert_eq!(distance_code(32768).0, 29);
    }

    property! {
        #![cases(64)]

        fn stored_roundtrip(data in vec(any_u8(), 0..256)) {
            let raw = deflate_compress(&data, CompressionLevel::Store);
            prop_assert_eq!(inflate(&raw).unwrap(), data);
        }

        fn fast_roundtrip(data in vec(any_u8(), 0..256)) {
            let raw = deflate_compress(&data, CompressionLevel::Fast);
            prop_assert_eq!(inflate(&raw).unwrap(), data);
        }

        fn high_roundtrip(data in vec(any_u8(), 0..256)) {
            let raw = deflate_compress(&data, CompressionLevel::High);
            prop_assert_eq!(inflate(&raw).unwrap(), data);
        }

        fn fast_roundtrip_repetitive(
            seed in vec(any_u8(), 1..32),
            repeats in 1usize..200,
        ) {
            let data: Vec<u8> = seed.iter().copied().cycle().take(seed.len() * repeats).collect();
            let raw = deflate_compress(&data, CompressionLevel::Fast);
            prop_assert_eq!(inflate(&raw).unwrap(), data);
        }
    }
}

//! Pull-based streaming decompression with bounded output memory.
//!
//! The buffered path ([`crate::gzip_decompress_with`]) materializes a
//! whole member's output before anything downstream runs, so peak
//! memory is O(raw profile). The two types here invert that into a
//! pull pipeline:
//!
//! * [`InflateStream`] resumes the LUT DEFLATE decoder across calls,
//!   yielding output in chunks of roughly `chunk_size` bytes while
//!   retaining only the 32 KiB LZ77 window between calls.
//! * [`GzipStream`] walks gzip members the same way the sequential
//!   buffered walk does, folding each emitted chunk into an
//!   incremental CRC32 — pipelined on an `ev-par` worker so chunk N−1
//!   is checksummed while chunk N inflates — and verifying each
//!   member's trailer the moment its stream ends.
//!
//! # Differential contract
//!
//! Concatenating every chunk a stream yields is **byte-identical** to
//! the buffered decoder's output, and a failing input fails with the
//! **identical [`FlateError`] value**, at any chunk size (including 1)
//! and any thread policy. Two structural facts carry the proof:
//!
//! * Budget checks in the block decoder sit *between* symbols, so the
//!   decoded symbol sequence never depends on where a block is
//!   suspended; partial stored-block copies preserve byte alignment
//!   and fail with the same `UnexpectedEof` the one-shot copy would.
//! * DEFLATE's maximum back-reference distance is 32768 bytes —
//!   exactly the retained window — so once any chunk has been emitted
//!   the window covers every reachable distance and
//!   [`FlateError::DistanceTooFar`] (whose `produced` field counts
//!   total output) can only fire before the first emit, where the
//!   internal buffer *is* the total output.

use crate::bits::BitReader;
use crate::checksum::Crc32;
use crate::gzip::{parse_header, read_trailer, verify_trailer, MAGIC};
use crate::huffman::HuffmanLut;
use crate::inflate::{
    fixed_luts, inflate_block_fast, read_dynamic_luts, read_stored_header, BlockProgress, LutStats,
};
use crate::{is_gzip, FlateError};
use ev_par::ExecPolicy;

/// The LZ77 history a resumable DEFLATE decoder must retain: RFC 1951's
/// maximum back-reference distance (`DIST_BASE[29] + 2^13 - 1 = 32768`).
pub const WINDOW_SIZE: usize = 32 * 1024;

/// Default streaming chunk size. Large enough that per-chunk overhead
/// (state machine re-entry, CRC hand-off, downstream refills) is noise,
/// small enough that peak memory stays megabytes even for GB profiles.
pub const DEFAULT_CHUNK_SIZE: usize = 256 * 1024;

/// Where the resumable decoder stands between [`InflateStream`] pulls.
enum BlockState {
    /// Before a block header (BFINAL + BTYPE).
    Header,
    /// Mid stored block, `remaining` bytes of its payload unread.
    Stored { remaining: usize },
    /// Mid fixed-Huffman block (tables are process-global).
    Fixed,
    /// Mid dynamic-Huffman block, carrying its decoded tables. Boxed:
    /// the LUT pair is large and this variant would otherwise dominate
    /// the enum's size.
    Dynamic(Box<(HuffmanLut, HuffmanLut)>),
    /// Final block fully decoded (or the stream failed).
    Done,
}

/// A resumable raw-DEFLATE decoder yielding bounded output chunks.
///
/// Feed it the full compressed input slice; each
/// [`next_chunk`](Self::next_chunk) call decodes roughly `chunk_size`
/// further output bytes. Between calls the stream holds only the
/// 32 KiB window plus in-flight chunk — input bytes are consumed in
/// place, never copied.
///
/// # Examples
///
/// ```
/// use ev_flate::{deflate_compress, inflate, CompressionLevel, InflateStream};
///
/// # fn main() -> Result<(), ev_flate::FlateError> {
/// let raw = deflate_compress(&b"data ".repeat(10_000), CompressionLevel::Fast);
/// let mut stream = InflateStream::new(&raw, 4096);
/// let mut streamed = Vec::new();
/// let mut chunk = Vec::new();
/// while stream.next_chunk(&mut chunk)? {
///     streamed.extend_from_slice(&chunk);
/// }
/// assert_eq!(streamed, inflate(&raw)?);
/// # Ok(())
/// # }
/// ```
pub struct InflateStream<'a> {
    reader: BitReader<'a>,
    state: BlockState,
    /// BFINAL bit of the block currently in `state`.
    bfinal: bool,
    /// Window + pending output. Everything before `len - WINDOW_SIZE`
    /// is emitted on the next pull; the tail stays as LZ77 history.
    out: Vec<u8>,
    chunk_size: usize,
    stats: LutStats,
}

impl<'a> InflateStream<'a> {
    /// Creates a stream over a raw DEFLATE input, yielding chunks of
    /// roughly `chunk_size` bytes (clamped to at least 1).
    pub fn new(input: &'a [u8], chunk_size: usize) -> InflateStream<'a> {
        InflateStream {
            reader: BitReader::new(input),
            state: BlockState::Header,
            bfinal: false,
            out: Vec::new(),
            chunk_size: chunk_size.max(1),
            stats: LutStats::default(),
        }
    }

    /// Decodes the next output chunk into `dst` (cleared first).
    ///
    /// Returns `Ok(true)` if `dst` now holds a non-empty chunk,
    /// `Ok(false)` once the stream is exhausted. After an error or
    /// `Ok(false)` the stream is finished and further calls return
    /// `Ok(false)`.
    ///
    /// # Errors
    ///
    /// Exactly the conditions — and values — of [`crate::inflate`] on
    /// the same input.
    pub fn next_chunk(&mut self, dst: &mut Vec<u8>) -> Result<bool, FlateError> {
        dst.clear();
        // Decode until a full chunk sits in front of the window (so the
        // emit below never exposes window bytes) or the stream ends. A
        // single match can overshoot `target` by at most 258 bytes.
        let target = WINDOW_SIZE + self.chunk_size;
        while !matches!(self.state, BlockState::Done) && self.out.len() < target {
            if let Err(e) = self.step(target) {
                self.state = BlockState::Done;
                self.out.clear();
                self.stats.flush();
                return Err(e);
            }
        }
        if matches!(self.state, BlockState::Done) {
            // Final drain: the window is no longer needed, emit it all.
            self.stats.flush();
            self.stats = LutStats::default();
            if self.out.is_empty() {
                return Ok(false);
            }
            dst.append(&mut self.out);
            if ev_trace::enabled() {
                crate::metrics::stream_chunks().add(1);
            }
            return Ok(true);
        }
        let emit = self.out.len() - WINDOW_SIZE;
        dst.extend_from_slice(&self.out[..emit]);
        self.out.copy_within(emit.., 0);
        self.out.truncate(WINDOW_SIZE);
        if ev_trace::enabled() {
            crate::metrics::stream_chunks().add(1);
        }
        Ok(true)
    }

    /// Runs one resumable decode step: either a block header or a
    /// budget-bounded slice of the current block's body.
    fn step(&mut self, target: usize) -> Result<(), FlateError> {
        match std::mem::replace(&mut self.state, BlockState::Header) {
            BlockState::Header => {
                self.bfinal = self.reader.bit()? == 1;
                let btype = self.reader.bits(2)?;
                match btype {
                    0 => {
                        let remaining = read_stored_header(&mut self.reader)?;
                        self.state = BlockState::Stored { remaining };
                    }
                    1 => self.state = BlockState::Fixed,
                    2 => {
                        let luts = read_dynamic_luts(&mut self.reader)?;
                        self.state = BlockState::Dynamic(Box::new(luts));
                    }
                    _ => return Err(FlateError::InvalidBlockType),
                }
            }
            BlockState::Stored { remaining } => {
                // Partial copies keep the reader byte-aligned, and a
                // truncated payload fails with the same UnexpectedEof
                // the buffered one-shot copy produces.
                let take = remaining.min(target - self.out.len());
                self.reader.copy_bytes(take, &mut self.out)?;
                if remaining > take {
                    self.state = BlockState::Stored {
                        remaining: remaining - take,
                    };
                } else {
                    self.finish_block();
                }
            }
            BlockState::Fixed => {
                let (lit, dist) = fixed_luts();
                match inflate_block_fast(
                    &mut self.reader,
                    lit,
                    dist,
                    &mut self.out,
                    target,
                    &mut self.stats,
                )? {
                    BlockProgress::Done => self.finish_block(),
                    BlockProgress::Budget => self.state = BlockState::Fixed,
                }
            }
            BlockState::Dynamic(luts) => {
                match inflate_block_fast(
                    &mut self.reader,
                    &luts.0,
                    &luts.1,
                    &mut self.out,
                    target,
                    &mut self.stats,
                )? {
                    BlockProgress::Done => self.finish_block(),
                    BlockProgress::Budget => self.state = BlockState::Dynamic(luts),
                }
            }
            BlockState::Done => unreachable!("step is never called after Done"),
        }
        Ok(())
    }

    fn finish_block(&mut self) {
        self.state = if self.bfinal {
            BlockState::Done
        } else {
            BlockState::Header
        };
    }

    /// Whole input bytes the DEFLATE stream has consumed so far. After
    /// the final block this is the member-framing offset — the same
    /// count [`crate::inflate_member`] returns.
    pub fn bytes_consumed(&self) -> usize {
        self.reader.bytes_consumed()
    }
}

/// One gzip member mid-decode inside a [`GzipStream`].
struct GzipMember<'a> {
    inflate: InflateStream<'a>,
    /// Absolute offset of the member's DEFLATE body in the file.
    body_start: usize,
    /// Incremental CRC over every chunk *handed back to the caller so
    /// far except* `pending`.
    crc: Crc32,
    /// Total bytes this member has produced (for the ISIZE check).
    total_len: u64,
    /// The chunk emitted by the previous pull: already returned to the
    /// caller, not yet folded into `crc` — that fold runs concurrently
    /// with the next pull's inflate.
    pending: Vec<u8>,
    /// Recycled buffer (last round's `pending`) for the next chunk.
    spare: Vec<u8>,
}

/// A streaming gzip decoder: the member walk of
/// [`crate::gzip_decompress_with`] as a pull pipeline.
///
/// Each [`next_chunk`](Self::next_chunk) yields the next slice of
/// decompressed output. CRC32 runs one chunk behind inflate on an
/// `ev-par` worker when the policy allows, and each member's
/// CRC32/ISIZE trailer is verified as soon as its stream ends — errors
/// therefore surface on the pull *after* the last chunk of a corrupt
/// member, with the identical [`FlateError`] the buffered decoder
/// returns.
///
/// # Examples
///
/// ```
/// use ev_flate::{gzip_compress, gzip_decompress, CompressionLevel, ExecPolicy, GzipStream};
///
/// # fn main() -> Result<(), ev_flate::FlateError> {
/// let gz = gzip_compress(&b"sample ".repeat(50_000), CompressionLevel::High);
/// let mut stream = GzipStream::new(&gz, 64 * 1024, ExecPolicy::auto())?;
/// let mut streamed = Vec::new();
/// let mut chunk = Vec::new();
/// while stream.next_chunk(&mut chunk)? {
///     streamed.extend_from_slice(&chunk);
/// }
/// assert_eq!(streamed, gzip_decompress(&gz)?);
/// # Ok(())
/// # }
/// ```
pub struct GzipStream<'a> {
    data: &'a [u8],
    /// Offset of the next member header (when no member is in flight).
    pos: usize,
    chunk_size: usize,
    policy: ExecPolicy,
    member: Option<GzipMember<'a>>,
    finished: bool,
}

impl<'a> GzipStream<'a> {
    /// Creates a stream over a gzip file (one or more members),
    /// yielding chunks of roughly `chunk_size` bytes.
    ///
    /// # Errors
    ///
    /// [`FlateError::NotGzip`] / [`FlateError::UnexpectedEof`] for
    /// inputs the buffered decoder rejects up front.
    pub fn new(
        data: &'a [u8],
        chunk_size: usize,
        policy: ExecPolicy,
    ) -> Result<GzipStream<'a>, FlateError> {
        if ev_trace::enabled() {
            crate::metrics::in_bytes().add(data.len() as u64);
        }
        if !is_gzip(data) {
            return Err(FlateError::NotGzip);
        }
        if data.len() < 18 {
            return Err(FlateError::UnexpectedEof);
        }
        Ok(GzipStream {
            data,
            pos: 0,
            chunk_size,
            policy,
            member: None,
            finished: false,
        })
    }

    /// Decodes the next chunk of decompressed output into `dst`
    /// (cleared first). Member boundaries are invisible: a pull that
    /// finishes one member continues into the next, so `Ok(true)`
    /// always means a non-empty chunk and `Ok(false)` means the whole
    /// file is done (every trailer verified).
    ///
    /// # Errors
    ///
    /// Exactly the conditions — and values — of
    /// [`crate::gzip_decompress`] on the same input. After an error the
    /// stream is finished.
    pub fn next_chunk(&mut self, dst: &mut Vec<u8>) -> Result<bool, FlateError> {
        dst.clear();
        let policy = self.policy;
        loop {
            if self.finished {
                return Ok(false);
            }
            if self.member.is_none() {
                if self.pos >= self.data.len() {
                    self.finished = true;
                    return Ok(false);
                }
                // Same per-member gate order as the buffered walk:
                // magic, then full header parse.
                if self.data.len() - self.pos < 2 || self.data[self.pos..self.pos + 2] != MAGIC {
                    self.finished = true;
                    return Err(FlateError::TrailingGarbage { offset: self.pos });
                }
                let body = match parse_header(self.data, self.pos) {
                    Ok(body) => body,
                    Err(e) => {
                        self.finished = true;
                        return Err(e);
                    }
                };
                self.member = Some(GzipMember {
                    inflate: InflateStream::new(&self.data[body..], self.chunk_size),
                    body_start: body,
                    crc: Crc32::new(),
                    total_len: 0,
                    pending: Vec::new(),
                    spare: Vec::new(),
                });
            }
            let m = self.member.as_mut().expect("member installed above");
            let mut next = std::mem::take(&mut m.spare);
            // Pipeline: inflate the next chunk while the previous one
            // (already in the caller's hands) is checksummed. The two
            // closures touch disjoint buffers; sequential policies run
            // inflate-then-crc inline, which is order-equivalent.
            let GzipMember {
                inflate,
                crc,
                pending,
                ..
            } = m;
            let (more, ()) = ev_par::parallel_join(
                policy,
                || inflate.next_chunk(&mut next),
                || {
                    if !pending.is_empty() {
                        crc.update(pending);
                    }
                },
            );
            // Whatever `more` says, `pending` is folded into the CRC
            // now; retire it as the recycle buffer for the next round.
            m.spare = std::mem::take(&mut m.pending);
            match more {
                Err(e) => {
                    self.finished = true;
                    self.member = None;
                    return Err(e);
                }
                Ok(true) => {
                    m.total_len += next.len() as u64;
                    if ev_trace::enabled() {
                        crate::metrics::out_bytes().add(next.len() as u64);
                    }
                    dst.extend_from_slice(&next);
                    m.pending = next;
                    return Ok(true);
                }
                Ok(false) => {
                    // Member stream complete and every chunk is now in
                    // the CRC. Verify framing + trailer in the buffered
                    // walk's exact order, then continue into the next
                    // member within this same pull.
                    let result = self.finish_member();
                    self.member = None;
                    if let Err(e) = result {
                        self.finished = true;
                        return Err(e);
                    }
                }
            }
        }
    }

    /// Trailer verification for the member that just finished.
    fn finish_member(&mut self) -> Result<(), FlateError> {
        let m = self.member.as_ref().expect("called with a live member");
        let trailer = m.body_start + m.inflate.bytes_consumed();
        if self.data.len() - trailer < 8 {
            return Err(FlateError::UnexpectedEof);
        }
        let (stored_crc, stored_len) = read_trailer(self.data, trailer);
        verify_trailer(m.crc.finish(), m.total_len as u32, stored_crc, stored_len)?;
        if ev_trace::enabled() {
            crate::metrics::members().add(1);
        }
        self.pos = trailer + 8;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::{deflate_compress, CompressionLevel};
    use crate::gzip::gzip_compress;
    use crate::{gzip_decompress, inflate};
    use ev_test::prelude::*;

    fn drain_inflate(input: &[u8], chunk_size: usize) -> Result<Vec<u8>, FlateError> {
        let mut stream = InflateStream::new(input, chunk_size);
        let mut out = Vec::new();
        let mut chunk = Vec::new();
        while stream.next_chunk(&mut chunk)? {
            assert!(!chunk.is_empty(), "streams never yield empty chunks");
            out.extend_from_slice(&chunk);
        }
        Ok(out)
    }

    fn drain_gzip(input: &[u8], chunk_size: usize, threads: usize) -> Result<Vec<u8>, FlateError> {
        let mut stream = GzipStream::new(input, chunk_size, ExecPolicy::with_threads(threads))?;
        let mut out = Vec::new();
        let mut chunk = Vec::new();
        while stream.next_chunk(&mut chunk)? {
            assert!(!chunk.is_empty(), "streams never yield empty chunks");
            out.extend_from_slice(&chunk);
        }
        Ok(out)
    }

    /// Varied test corpus: matches shorter and longer than the window,
    /// stored blocks, high-entropy-ish regions, and an RLE run.
    fn mixed_payload(n: usize) -> Vec<u8> {
        let mut data = Vec::with_capacity(n);
        let mut state = 0x9e37_79b9u32;
        while data.len() < n {
            match (data.len() / 977) % 3 {
                0 => data.extend_from_slice(b"shared/frame/path/segment;"),
                1 => data.extend_from_slice(&[b'=' ; 61]),
                _ => {
                    for _ in 0..13 {
                        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                        data.push((state >> 24) as u8);
                    }
                }
            }
        }
        data.truncate(n);
        data
    }

    #[test]
    fn inflate_stream_matches_buffered_across_levels_and_chunks() {
        let data = mixed_payload(200_000);
        for level in [
            CompressionLevel::Store,
            CompressionLevel::Fast,
            CompressionLevel::High,
        ] {
            let raw = deflate_compress(&data, level);
            let expected = inflate(&raw).unwrap();
            for chunk_size in [1, 7, 4096, 100_000, 1 << 22] {
                assert_eq!(
                    drain_inflate(&raw, chunk_size).unwrap(),
                    expected,
                    "level {level:?} chunk {chunk_size}"
                );
            }
        }
    }

    #[test]
    fn inflate_stream_empty_output() {
        let raw = deflate_compress(b"", CompressionLevel::Fast);
        assert_eq!(drain_inflate(&raw, 64).unwrap(), b"");
    }

    #[test]
    fn inflate_stream_error_identity_on_truncation() {
        let data = mixed_payload(50_000);
        for level in [CompressionLevel::Fast, CompressionLevel::High] {
            let raw = deflate_compress(&data, level);
            for cut in [0, 1, 2, 5, raw.len() / 2, raw.len() - 1] {
                let buffered = inflate(&raw[..cut]);
                for chunk_size in [1, 333, 1 << 20] {
                    assert_eq!(
                        drain_inflate(&raw[..cut], chunk_size),
                        buffered,
                        "cut {cut} chunk {chunk_size}"
                    );
                }
            }
        }
    }

    #[test]
    fn inflate_stream_exhausted_returns_false_forever() {
        let raw = deflate_compress(b"tail behavior", CompressionLevel::Fast);
        let mut stream = InflateStream::new(&raw, 4);
        let mut chunk = Vec::new();
        while stream.next_chunk(&mut chunk).unwrap() {}
        assert!(!stream.next_chunk(&mut chunk).unwrap());
        assert!(!stream.next_chunk(&mut chunk).unwrap());
    }

    #[test]
    fn inflate_stream_bytes_consumed_matches_member_decoder() {
        let data = mixed_payload(30_000);
        let raw = deflate_compress(&data, CompressionLevel::High);
        let (_, consumed) = crate::inflate_member(&raw, 0).unwrap();
        let mut stream = InflateStream::new(&raw, 1024);
        let mut chunk = Vec::new();
        while stream.next_chunk(&mut chunk).unwrap() {}
        assert_eq!(stream.bytes_consumed(), consumed);
    }

    #[test]
    fn gzip_stream_matches_buffered_multi_member() {
        let parts = [
            mixed_payload(70_000),
            Vec::new(),
            mixed_payload(5),
            mixed_payload(40_000),
        ];
        let mut gz = Vec::new();
        let mut expected = Vec::new();
        for (i, p) in parts.iter().enumerate() {
            let level = if i % 2 == 0 { CompressionLevel::High } else { CompressionLevel::Fast };
            gz.extend_from_slice(&gzip_compress(p, level));
            expected.extend_from_slice(p);
        }
        assert_eq!(gzip_decompress(&gz).unwrap(), expected);
        for chunk_size in [1, 1000, 64 * 1024, 1 << 24] {
            for threads in [1, 4] {
                assert_eq!(
                    drain_gzip(&gz, chunk_size, threads).unwrap(),
                    expected,
                    "chunk {chunk_size} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn gzip_stream_error_identity_on_corruption() {
        let data = mixed_payload(60_000);
        let clean = gzip_compress(&data, CompressionLevel::Fast);
        let mut cases: Vec<Vec<u8>> = Vec::new();
        // Bad CRC, bad ISIZE, truncations at every framing boundary,
        // trailing garbage, a second corrupt member.
        let mut bad_crc = clean.clone();
        let n = bad_crc.len();
        bad_crc[n - 5] ^= 0xff;
        cases.push(bad_crc);
        let mut bad_len = clean.clone();
        bad_len[n - 1] ^= 0x01;
        cases.push(bad_len);
        for cut in [1, 9, 12, n / 2, n - 9, n - 1] {
            cases.push(clean[..cut].to_vec());
        }
        let mut garbage = clean.clone();
        garbage.extend_from_slice(b"#not-gzip#");
        cases.push(garbage);
        let mut two = clean.clone();
        two.extend_from_slice(&clean);
        let mid = two.len() - 7;
        two[mid] ^= 0x40;
        cases.push(two);
        for (i, case) in cases.iter().enumerate() {
            let buffered = gzip_decompress(case);
            for chunk_size in [1, 509, 1 << 20] {
                for threads in [1, 4] {
                    let streamed = drain_gzip(case, chunk_size, threads);
                    match (&buffered, &streamed) {
                        (Err(be), Err(se)) => {
                            assert_eq!(be, se, "case {i} chunk {chunk_size} threads {threads}")
                        }
                        (Ok(b), Ok(s)) => {
                            assert_eq!(b, s, "case {i} chunk {chunk_size} threads {threads}")
                        }
                        _ => panic!(
                            "case {i} chunk {chunk_size} threads {threads}: buffered {buffered:?} vs streamed {streamed:?}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn gzip_stream_rejects_non_gzip_up_front() {
        assert_eq!(
            GzipStream::new(b"plainly not gzip bytes", 1024, ExecPolicy::SEQUENTIAL).err(),
            Some(FlateError::NotGzip)
        );
        assert_eq!(
            GzipStream::new(&[0x1f, 0x8b, 0x08], 1024, ExecPolicy::SEQUENTIAL).err(),
            Some(FlateError::UnexpectedEof)
        );
    }

    property! {
        #![cases(32)]

        fn stream_differential_random_inputs(
            data in vec(any_u8(), 0..4096),
            chunk_size in 1usize..8192,
            threads in 1usize..5,
        ) {
            let gz = gzip_compress(&data, CompressionLevel::Fast);
            let buffered = gzip_decompress(&gz).unwrap();
            prop_assert_eq!(&buffered, &data);
            prop_assert_eq!(drain_gzip(&gz, chunk_size, threads).unwrap(), buffered);
        }

        fn stream_differential_corrupted(
            data in vec(any_u8(), 64..512),
            flip in 0usize..512,
            chunk_size in 1usize..600,
        ) {
            let mut gz = gzip_compress(&data, CompressionLevel::Fast);
            let i = flip % gz.len();
            gz[i] ^= 0x10;
            let buffered = gzip_decompress(&gz);
            let streamed = drain_gzip(&gz, chunk_size, 2);
            match (buffered, streamed) {
                (Ok(b), Ok(s)) => prop_assert_eq!(b, s),
                (Err(be), Err(se)) => prop_assert_eq!(be, se),
                (b, s) => prop_assert!(false, "buffered {:?} vs streamed {:?}", b, s),
            }
        }
    }
}

//! LSB-first bit readers and writers over byte buffers.
//!
//! DEFLATE packs data elements starting at the least-significant bit of
//! each byte; Huffman codes are packed most-significant-bit first *within
//! the code* but the code's bits still fill bytes LSB-first (RFC 1951
//! §3.1.1). The reader below exposes `bits()` for integer fields and
//! leaves code-bit assembly to the Huffman decoder.

use crate::FlateError;

/// An LSB-first bit cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    input: &'a [u8],
    /// Next byte to load.
    pos: usize,
    /// Bit accumulator, LSB = next bit.
    acc: u64,
    /// Number of valid bits in `acc`.
    count: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the first bit of `input`.
    pub fn new(input: &'a [u8]) -> BitReader<'a> {
        BitReader {
            input,
            pos: 0,
            acc: 0,
            count: 0,
        }
    }

    /// Tops the accumulator up to at least 56 valid bits while input
    /// remains. With ≥ 8 unread bytes this is a single unaligned
    /// `u64` load; `pos` advances only over the bytes that fit, so the
    /// surplus bits sitting above `count` duplicate upcoming input and
    /// the next refill's OR lands on identical bit values. Near the
    /// tail it falls back to the byte loop, which keeps `count` exact —
    /// that exactness is what lets [`peek`](Self::peek) zero-pad at EOF.
    #[inline]
    pub(crate) fn refill(&mut self) {
        if self.pos + 8 <= self.input.len() {
            let word = u64::from_le_bytes(
                self.input[self.pos..self.pos + 8]
                    .try_into()
                    .expect("8 bytes"),
            );
            self.acc |= word << self.count;
            self.pos += ((63 - self.count) >> 3) as usize;
            self.count |= 56;
        } else {
            while self.count <= 56 && self.pos < self.input.len() {
                self.acc |= u64::from(self.input[self.pos]) << self.count;
                self.pos += 1;
                self.count += 8;
            }
        }
    }

    /// Number of bits currently buffered in the accumulator.
    #[inline]
    pub(crate) fn buffered(&self) -> u32 {
        self.count
    }

    /// Total bits left in the stream (buffered + unread bytes). Surplus
    /// accumulator bits above `count` are duplicates of unread input and
    /// are not double-counted.
    #[inline]
    pub(crate) fn bits_left(&self) -> usize {
        self.count as usize + 8 * (self.input.len() - self.pos)
    }

    /// Number of input bits consumed so far. Buffered-but-unconsumed
    /// bits do not count: `refill` keeps the invariant that `count`
    /// grows by exactly 8 per byte `pos` advances over (surplus
    /// accumulator bits above `count` never advance `pos`), so
    /// `8 * pos - count` is exact at any point in the stream.
    #[inline]
    pub(crate) fn bits_consumed(&self) -> usize {
        self.pos * 8 - self.count as usize
    }

    /// Number of whole input bytes consumed, rounding a partially
    /// consumed byte up. After a DEFLATE stream's final block this is
    /// where byte-aligned container framing (the gzip trailer, a
    /// following member's header) resumes.
    #[inline]
    pub(crate) fn bytes_consumed(&self) -> usize {
        self.bits_consumed().div_ceil(8)
    }

    /// Returns the next `n` bits without consuming them, zero-padded
    /// past end of input. The caller must have called
    /// [`refill`](Self::refill) since the last consume; `n` must not
    /// exceed 32.
    #[inline]
    pub(crate) fn peek(&self, n: u32) -> u32 {
        debug_assert!(n <= 32);
        (self.acc & ((1u64 << n) - 1)) as u32
    }

    /// Discards `n` previously peeked bits. `n` must not exceed the
    /// buffered bit count.
    #[inline]
    pub(crate) fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.count);
        self.acc >>= n;
        self.count -= n;
    }

    /// Peek-and-consume in one step, for extra-bits fields on the fast
    /// path where the caller has already guaranteed availability.
    #[inline]
    pub(crate) fn take(&mut self, n: u32) -> u32 {
        let value = self.peek(n);
        self.consume(n);
        value
    }

    /// Reads `n` bits (0–32) as an integer, LSB first.
    ///
    /// # Errors
    ///
    /// Returns [`FlateError::UnexpectedEof`] if fewer than `n` bits remain.
    pub fn bits(&mut self, n: u32) -> Result<u32, FlateError> {
        debug_assert!(n <= 32);
        if self.count < n {
            self.refill();
            if self.count < n {
                return Err(FlateError::UnexpectedEof);
            }
        }
        let value = if n == 0 {
            0
        } else {
            (self.acc & ((1u64 << n) - 1)) as u32
        };
        self.acc >>= n;
        self.count -= n;
        Ok(value)
    }

    /// Reads a single bit.
    pub fn bit(&mut self) -> Result<u32, FlateError> {
        self.bits(1)
    }

    /// Discards buffered bits up to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        let drop = self.count % 8;
        self.acc >>= drop;
        self.count -= drop;
    }

    /// Copies `n` raw bytes into `out`; the reader must be byte-aligned.
    ///
    /// # Errors
    ///
    /// Returns [`FlateError::UnexpectedEof`] if fewer than `n` bytes remain.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the reader is not byte-aligned.
    pub fn copy_bytes(&mut self, n: usize, out: &mut Vec<u8>) -> Result<(), FlateError> {
        debug_assert_eq!(self.count % 8, 0, "copy_bytes requires byte alignment");
        let mut remaining = n;
        // Drain whole bytes buffered in the accumulator first.
        while remaining > 0 && self.count >= 8 {
            out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.count -= 8;
            remaining -= 1;
        }
        if self.input.len() - self.pos < remaining {
            return Err(FlateError::UnexpectedEof);
        }
        if remaining > 0 {
            // The accumulator may hold surplus bits above `count` that
            // duplicate bytes at `pos` (see `refill`); advancing `pos`
            // past them would leave the surplus stale, so drop it.
            debug_assert_eq!(self.count, 0);
            self.acc = 0;
            out.extend_from_slice(&self.input[self.pos..self.pos + remaining]);
            self.pos += remaining;
        }
        Ok(())
    }
}

/// An LSB-first bit accumulator that appends to a byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    count: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends the low `n` bits of `value`, LSB first.
    pub fn bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || u64::from(value) < (1u64 << n));
        self.acc |= u64::from(value) << self.count;
        self.count += n;
        while self.count >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.count -= 8;
        }
    }

    /// Appends a Huffman code of `len` bits. DEFLATE stores Huffman codes
    /// with the most-significant code bit first, so the code is
    /// bit-reversed before packing.
    pub fn huffman_code(&mut self, code: u32, len: u32) {
        let mut reversed = 0u32;
        for i in 0..len {
            reversed |= ((code >> i) & 1) << (len - 1 - i);
        }
        self.bits(reversed, len);
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        if self.count > 0 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc = 0;
            self.count = 0;
        }
    }

    /// Appends raw bytes; the writer must be byte-aligned.
    pub fn raw_bytes(&mut self, bytes: &[u8]) {
        debug_assert_eq!(self.count, 0, "raw_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Finishes the stream (zero-padding the final byte) and returns it.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_test::prelude::*;

    #[test]
    fn read_single_bits_lsb_first() {
        // 0b1010_0110 → bits come out 0,1,1,0,0,1,0,1.
        let mut r = BitReader::new(&[0xa6]);
        let got: Vec<u32> = (0..8).map(|_| r.bit().unwrap()).collect();
        assert_eq!(got, [0, 1, 1, 0, 0, 1, 0, 1]);
        assert_eq!(r.bit(), Err(FlateError::UnexpectedEof));
    }

    #[test]
    fn read_multibit_fields() {
        // Bytes 0xe5 0x03 → LSB stream; 3 bits = 0b101 = 5, then 7 bits.
        let mut r = BitReader::new(&[0xe5, 0x03]);
        assert_eq!(r.bits(3).unwrap(), 5);
        assert_eq!(r.bits(7).unwrap(), 0x7c);
    }

    #[test]
    fn zero_width_read() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.bits(0).unwrap(), 0);
    }

    #[test]
    fn align_then_copy() {
        let mut r = BitReader::new(&[0xff, 0xab, 0xcd]);
        r.bits(3).unwrap();
        r.align_to_byte();
        let mut out = Vec::new();
        r.copy_bytes(2, &mut out).unwrap();
        assert_eq!(out, [0xab, 0xcd]);
    }

    #[test]
    fn copy_bytes_eof() {
        let mut r = BitReader::new(&[0x01]);
        let mut out = Vec::new();
        assert_eq!(r.copy_bytes(2, &mut out), Err(FlateError::UnexpectedEof));
    }

    #[test]
    fn consumed_position_is_exact_across_refills() {
        let data: Vec<u8> = (0..32).collect();
        let mut r = BitReader::new(&data);
        assert_eq!(r.bits_consumed(), 0);
        r.bits(3).unwrap();
        assert_eq!(r.bits_consumed(), 3);
        assert_eq!(r.bytes_consumed(), 1);
        // Cross several refill boundaries with mixed widths.
        let mut total = 3usize;
        for width in [16u32, 7, 9, 1, 13, 16, 16, 16, 5] {
            r.bits(width).unwrap();
            total += width as usize;
            assert_eq!(r.bits_consumed(), total, "after {width}-bit read");
        }
        r.align_to_byte();
        assert_eq!(r.bits_consumed() % 8, 0);
        let mut out = Vec::new();
        let at = r.bits_consumed() / 8;
        r.copy_bytes(4, &mut out).unwrap();
        assert_eq!(out, data[at..at + 4]);
        assert_eq!(r.bytes_consumed(), at + 4);
    }

    #[test]
    fn writer_packs_lsb_first() {
        let mut w = BitWriter::new();
        w.bits(0b101, 3);
        w.bits(0b11111, 5);
        assert_eq!(w.into_bytes(), [0b1111_1101]);
    }

    #[test]
    fn huffman_code_is_bit_reversed() {
        let mut w = BitWriter::new();
        // Code 0b110 (MSB-first) must appear as 0,1,1 in the bit stream.
        w.huffman_code(0b110, 3);
        w.bits(0, 5);
        let byte = w.into_bytes()[0];
        assert_eq!(byte & 0b111, 0b011);
    }

    property! {
        fn write_read_roundtrip(fields in vec((0u32..=0xffff, 1u32..=16), 0..64)) {
            let mut w = BitWriter::new();
            for &(value, width) in &fields {
                w.bits(value & ((1 << width) - 1), width);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &(value, width) in &fields {
                prop_assert_eq!(r.bits(width).unwrap(), value & ((1 << width) - 1));
            }
        }

        fn copy_roundtrip(prefix_bits in 0u32..8, data in vec(any_u8(), 0..256)) {
            let mut w = BitWriter::new();
            w.bits(0, prefix_bits);
            w.align_to_byte();
            w.raw_bytes(&data);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            r.bits(prefix_bits).unwrap();
            r.align_to_byte();
            let mut out = Vec::new();
            r.copy_bytes(data.len(), &mut out).unwrap();
            prop_assert_eq!(out, data);
        }
    }
}

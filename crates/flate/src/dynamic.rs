//! Dynamic-Huffman DEFLATE encoding (RFC 1951 §3.2.7).
//!
//! The third block type: literal/length and distance codes are built
//! from the block's own symbol frequencies and shipped in the header,
//! RLE-compressed through the code-length code. This is what real
//! compressors emit for text-like data; having it makes `ev-flate` a
//! complete DEFLATE implementation on both sides and gives the profile
//! generator zlib-class ratios.

use crate::bits::BitWriter;
use crate::huffman::{canonical_codes, MAX_BITS};

/// Permuted order of code-length-code lengths (RFC 1951 §3.2.7).
const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// One LZ77 token produced by the match finder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference.
    Match {
        /// Match length (3–258).
        len: u16,
        /// Match distance (1–32768).
        dist: u16,
    },
}

/// Length code lookup: (code index 0–28, extra bits, extra value).
pub(crate) fn length_code(len: usize) -> (usize, u32, u32) {
    const BASE: [u16; 29] = [
        3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115,
        131, 163, 195, 227, 258,
    ];
    const EXTRA: [u8; 29] = [
        0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
    ];
    let idx = (0..29).rev().find(|&i| BASE[i] as usize <= len).expect("len >= 3");
    (idx, u32::from(EXTRA[idx]), (len - BASE[idx] as usize) as u32)
}

/// Distance code lookup: (code 0–29, extra bits, extra value).
pub(crate) fn distance_code(dist: usize) -> (usize, u32, u32) {
    const BASE: [u32; 30] = [
        1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
        2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
    ];
    const EXTRA: [u8; 30] = [
        0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12,
        13, 13,
    ];
    let idx = (0..30).rev().find(|&i| BASE[i] as usize <= dist).expect("dist >= 1");
    (idx, u32::from(EXTRA[idx]), (dist - BASE[idx] as usize) as u32)
}

/// Builds length-limited Huffman code lengths from symbol frequencies.
///
/// Standard heap-based Huffman, then a Kraft-sum repair pass when any
/// length exceeds `limit` (zlib's `bl_count` adjustment, expressed
/// directly): overlong codes are clamped and the code space rebalanced
/// by lengthening the cheapest symbols until the Kraft inequality holds.
fn huffman_lengths(freqs: &[u64], limit: u8) -> Vec<u8> {
    let n = freqs.len();
    let mut lengths = vec![0u8; n];
    let used: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match used.len() {
        0 => return lengths,
        1 => {
            // A single symbol still needs a 1-bit code.
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Heap of (weight, node id); internal nodes get ids >= n.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Entry(u64, usize);
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<Entry>> = used
        .iter()
        .map(|&i| std::cmp::Reverse(Entry(freqs[i], i)))
        .collect();
    // parent[id] for every node; leaves 0..n, internals n..
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    let mut next_id = n;
    while heap.len() > 1 {
        let std::cmp::Reverse(Entry(w1, id1)) = heap.pop().expect("len > 1");
        let std::cmp::Reverse(Entry(w2, id2)) = heap.pop().expect("len > 1");
        let id = next_id;
        next_id += 1;
        parent.resize(next_id, usize::MAX);
        parent[id1] = id;
        parent[id2] = id;
        heap.push(std::cmp::Reverse(Entry(w1 + w2, id)));
    }
    let root = next_id - 1;
    for &leaf in &used {
        let mut depth = 0u32;
        let mut node = leaf;
        while node != root {
            node = parent[node];
            depth += 1;
        }
        lengths[leaf] = depth.min(255) as u8;
    }

    // Clamp and repair the Kraft sum if anything exceeded the limit.
    if lengths.iter().any(|&l| l > limit) {
        for l in lengths.iter_mut() {
            if *l > limit {
                *l = limit;
            }
        }
        let kraft = |lengths: &[u8]| -> f64 {
            lengths
                .iter()
                .filter(|&&l| l > 0)
                .map(|&l| (0.5f64).powi(i32::from(l)))
                .sum()
        };
        while kraft(&lengths) > 1.0 {
            // Lengthen the least-frequent symbol that still has room.
            let victim = used
                .iter()
                .copied()
                .filter(|&i| lengths[i] < limit)
                .min_by_key(|&i| freqs[i])
                .expect("some symbol below the limit");
            lengths[victim] += 1;
        }
    }
    lengths
}

/// Encodes the token stream as one final dynamic-Huffman block.
pub(crate) fn write_dynamic_block(w: &mut BitWriter, tokens: &[Token]) {
    // 1. Frequencies.
    let mut lit_freq = [0u64; 286];
    let mut dist_freq = [0u64; 30];
    for token in tokens {
        match *token {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freq[257 + length_code(len as usize).0] += 1;
                dist_freq[distance_code(dist as usize).0] += 1;
            }
        }
    }
    lit_freq[256] += 1; // end of block

    // 2. Code lengths (limits per spec).
    let lit_lengths = huffman_lengths(&lit_freq, MAX_BITS as u8);
    let mut dist_lengths = huffman_lengths(&dist_freq, MAX_BITS as u8);
    // A block with no matches still must declare >= 1 distance code.
    if dist_lengths.iter().all(|&l| l == 0) {
        dist_lengths[0] = 1;
    }

    let hlit = lit_lengths
        .iter()
        .rposition(|&l| l != 0)
        .map_or(257, |i| (i + 1).max(257));
    let hdist = dist_lengths
        .iter()
        .rposition(|&l| l != 0)
        .map_or(1, |i| i + 1);

    // 3. RLE the combined length array through symbols 16/17/18.
    let mut all_lengths: Vec<u8> = Vec::with_capacity(hlit + hdist);
    all_lengths.extend_from_slice(&lit_lengths[..hlit]);
    all_lengths.extend_from_slice(&dist_lengths[..hdist]);
    #[derive(Clone, Copy)]
    enum Clc {
        Len(u8),
        CopyPrev(u8),  // 16 + 2 extra bits (3-6)
        ZeroShort(u8), // 17 + 3 extra bits (3-10)
        ZeroLong(u8),  // 18 + 7 extra bits (11-138)
    }
    let mut clc_stream: Vec<Clc> = Vec::new();
    let mut i = 0usize;
    while i < all_lengths.len() {
        let value = all_lengths[i];
        let mut run = 1usize;
        while i + run < all_lengths.len() && all_lengths[i + run] == value {
            run += 1;
        }
        if value == 0 {
            let mut remaining = run;
            while remaining >= 11 {
                let take = remaining.min(138);
                clc_stream.push(Clc::ZeroLong(take as u8));
                remaining -= take;
            }
            while remaining >= 3 {
                let take = remaining.min(10);
                clc_stream.push(Clc::ZeroShort(take as u8));
                remaining -= take;
            }
            for _ in 0..remaining {
                clc_stream.push(Clc::Len(0));
            }
        } else {
            clc_stream.push(Clc::Len(value));
            let mut remaining = run - 1;
            while remaining >= 3 {
                let take = remaining.min(6);
                clc_stream.push(Clc::CopyPrev(take as u8));
                remaining -= take;
            }
            for _ in 0..remaining {
                clc_stream.push(Clc::Len(value));
            }
        }
        i += run;
    }

    // 4. The code-length code itself.
    let mut clc_freq = [0u64; 19];
    for entry in &clc_stream {
        let symbol = match entry {
            Clc::Len(l) => *l as usize,
            Clc::CopyPrev(_) => 16,
            Clc::ZeroShort(_) => 17,
            Clc::ZeroLong(_) => 18,
        };
        clc_freq[symbol] += 1;
    }
    let clc_lengths = huffman_lengths(&clc_freq, 7);
    let hclen = CLC_ORDER
        .iter()
        .rposition(|&idx| clc_lengths[idx] != 0)
        .map_or(4, |i| (i + 1).max(4));

    // 5. Emit: header, code-length code, lengths, tokens.
    w.bits(1, 1); // BFINAL
    w.bits(2, 2); // dynamic
    w.bits((hlit - 257) as u32, 5);
    w.bits((hdist - 1) as u32, 5);
    w.bits((hclen - 4) as u32, 4);
    for &idx in CLC_ORDER.iter().take(hclen) {
        w.bits(u32::from(clc_lengths[idx]), 3);
    }
    let clc_codes = canonical_codes(&clc_lengths);
    let emit_clc = |w: &mut BitWriter, symbol: usize| {
        let (code, len) = clc_codes[symbol];
        debug_assert!(len > 0, "emitting symbol {symbol} with no code");
        w.huffman_code(code, u32::from(len));
    };
    for entry in &clc_stream {
        match *entry {
            Clc::Len(l) => emit_clc(w, l as usize),
            Clc::CopyPrev(n) => {
                emit_clc(w, 16);
                w.bits(u32::from(n) - 3, 2);
            }
            Clc::ZeroShort(n) => {
                emit_clc(w, 17);
                w.bits(u32::from(n) - 3, 3);
            }
            Clc::ZeroLong(n) => {
                emit_clc(w, 18);
                w.bits(u32::from(n) - 11, 7);
            }
        }
    }

    let lit_codes = canonical_codes(&lit_lengths);
    let dist_codes = canonical_codes(&dist_lengths);
    for token in tokens {
        match *token {
            Token::Literal(b) => {
                let (code, len) = lit_codes[b as usize];
                w.huffman_code(code, u32::from(len));
            }
            Token::Match { len, dist } => {
                let (lidx, lextra_bits, lextra) = length_code(len as usize);
                let (code, clen) = lit_codes[257 + lidx];
                w.huffman_code(code, u32::from(clen));
                w.bits(lextra, lextra_bits);
                let (didx, dextra_bits, dextra) = distance_code(dist as usize);
                let (dcode, dlen) = dist_codes[didx];
                w.huffman_code(dcode, u32::from(dlen));
                w.bits(dextra, dextra_bits);
            }
        }
    }
    let (code, len) = lit_codes[256];
    w.huffman_code(code, u32::from(len));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huffman_lengths_basic() {
        // Four symbols with balanced frequencies -> 2 bits each.
        let lengths = huffman_lengths(&[10, 10, 10, 10], 15);
        assert_eq!(lengths, [2, 2, 2, 2]);
        // Skewed frequencies -> short code for the hot symbol.
        let lengths = huffman_lengths(&[100, 1, 1, 1], 15);
        assert!(lengths[0] <= lengths[1]);
        // Kraft inequality always holds.
        let kraft: f64 = lengths.iter().map(|&l| (0.5f64).powi(i32::from(l))).sum();
        assert!(kraft <= 1.0 + 1e-12);
    }

    #[test]
    fn huffman_lengths_edge_cases() {
        assert_eq!(huffman_lengths(&[0, 0, 0], 15), [0, 0, 0]);
        assert_eq!(huffman_lengths(&[0, 7, 0], 15), [0, 1, 0]);
    }

    #[test]
    fn huffman_lengths_respects_limit() {
        // Fibonacci-ish frequencies force deep trees in unlimited
        // Huffman; the limit must clamp them with a valid Kraft sum.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let next = a + b;
            a = b;
            b = next;
        }
        let lengths = huffman_lengths(&freqs, 15);
        assert!(lengths.iter().all(|&l| l <= 15 && l > 0));
        let kraft: f64 = lengths.iter().map(|&l| (0.5f64).powi(i32::from(l))).sum();
        assert!(kraft <= 1.0 + 1e-12, "kraft {kraft}");
        crate::huffman::Huffman::from_lengths(&lengths).expect("decodable");
    }

    #[test]
    fn length_and_distance_code_boundaries() {
        assert_eq!(length_code(3).0, 0);
        assert_eq!(length_code(258).0, 28);
        assert_eq!(distance_code(1).0, 0);
        assert_eq!(distance_code(32768).0, 29);
    }
}

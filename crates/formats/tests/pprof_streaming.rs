//! Chunk-boundary differential conformance suite for the streaming
//! pprof decoder.
//!
//! `pprof::parse_streaming_with` re-derives the buffered one-pass
//! decode from a bounded-memory inflate→walk pipeline, so its contract
//! is **identical profiles and identical errors** to
//! `pprof::parse_with` at *any* chunk size — including 1 byte, where
//! every wire field straddles a refill — and any thread count (the
//! `ExecPolicy` reaches the pipelined per-chunk CRC). Fixtures cover
//! valid, truncated, and bit-flipped payloads, raw and gzip'd, so both
//! the wire-error and the container-error precedence paths are
//! differentially pinned.

mod common;

use common::{synth_deep_stacks, synth_degenerate, synth_multi_type, synth_pprof};
use ev_flate::{gzip_compress, CompressionLevel, ExecPolicy};
use ev_formats::pprof;
use ev_test::prelude::*;
use ev_test::Rng;

const THREAD_COUNTS: [usize; 2] = [1, 8];

/// Asserts the streaming decoder matches the buffered one on `data`
/// at `chunk_size`, across thread counts. The buffered result is the
/// sequential reference; `ev-par` determinism makes any-thread
/// streaming comparable against it directly.
fn assert_stream_matches(data: &[u8], chunk_size: usize) {
    let buffered = pprof::parse(data);
    for &threads in &THREAD_COUNTS {
        let policy = ExecPolicy::with_threads(threads);
        let streamed = pprof::parse_streaming_with(data, policy, chunk_size);
        assert_eq!(
            streamed, buffered,
            "chunk={chunk_size} threads={threads} len={}",
            data.len()
        );
    }
}

/// Draws a chunk size biased toward the interesting small end.
fn chunk_from(raw: u64) -> usize {
    match raw % 4 {
        0 => 1,
        1 => 1 + (raw / 4) as usize % 7,
        2 => 1 + (raw / 4) as usize % 300,
        _ => 1 + (raw / 4) as usize % (64 << 10),
    }
}

property! {
    fn streaming_matches_buffered_on_synthetic_profiles(
        data in seeded(1..12, synth_pprof),
        raw_chunk in any_u64(),
    ) {
        assert_stream_matches(&data, chunk_from(raw_chunk));
    }

    fn streaming_matches_buffered_on_deep_stacks(
        data in seeded(1..8, synth_deep_stacks),
        raw_chunk in any_u64(),
    ) {
        // Heavy path-prefix sharing: the replay pass must feed the
        // fixup the exact id chains the buffered replay decodes from
        // its deferred payload slices.
        assert_stream_matches(&data, chunk_from(raw_chunk));
    }

    fn streaming_matches_buffered_on_multi_sample_type(
        data in seeded(1..6, synth_multi_type),
        raw_chunk in any_u64(),
    ) {
        assert_stream_matches(&data, chunk_from(raw_chunk));
    }

    fn streaming_matches_buffered_on_degenerate_tables(
        data in seeded(1..4, synth_degenerate),
        raw_chunk in any_u64(),
    ) {
        assert_stream_matches(&data, chunk_from(raw_chunk));
    }

    fn streaming_matches_buffered_on_truncations(
        data in seeded(1..6, synth_pprof),
        cut in any_u64(),
        raw_chunk in any_u64(),
    ) {
        // Truncating a gzip'd fixture yields container errors,
        // truncating a raw one yields wire errors; both must surface
        // the identical FormatError value the buffered path reports.
        let cut = (cut as usize) % (data.len() + 1);
        assert_stream_matches(&data[..cut], chunk_from(raw_chunk));
    }

    fn streaming_matches_buffered_on_bitflips(
        data in seeded(1..6, synth_pprof),
        pos in any_u64(),
        bit in any_u64(),
        raw_chunk in any_u64(),
    ) {
        let mut data = data.clone();
        if !data.is_empty() {
            let n = data.len();
            data[(pos as usize) % n] ^= 1 << (bit % 8);
        }
        assert_stream_matches(&data, chunk_from(raw_chunk));
    }

    fn streaming_matches_buffered_on_arbitrary_bytes(
        data in vec(any_u8(), 0..512),
        raw_chunk in any_u64(),
    ) {
        assert_stream_matches(&data, chunk_from(raw_chunk));
    }
}

#[test]
fn one_byte_chunks_match_buffered_exhaustively() {
    // The pathological floor: every refill adds a single byte, so
    // every varint, tag, and length prefix straddles chunk boundaries.
    let mut rng = Rng::new(0x57e4);
    for size in 1..6 {
        let raw = synth_pprof(&mut rng, size);
        assert_stream_matches(&raw, 1);
        let gz = gzip_compress(&raw, CompressionLevel::High);
        assert_stream_matches(&gz, 1);
    }
}

#[test]
fn gzip_error_precedence_over_wire_error() {
    // A fixture whose body is wire-invalid *and* whose container is
    // corrupted downstream of the wire error: the buffered path
    // decompresses first and reports the container error, so the
    // streaming path must drain past the wire error and report the
    // same. A multi-member file puts the corruption in a member the
    // walk has not yet pulled when the wire error surfaces.
    let mut rng = Rng::new(0xfade);
    let good = synth_deep_stacks(&mut rng, 3);
    let mut first = gzip_compress(&good, CompressionLevel::Fast);
    let bad_wire = vec![0xffu8; 64]; // invalid tags mid-body
    let mut second = gzip_compress(&bad_wire, CompressionLevel::Fast);
    let n = second.len();
    second[n - 6] ^= 0x01; // corrupt the second member's CRC trailer
    first.extend_from_slice(&second);
    let buffered = pprof::parse(&first);
    assert!(buffered.is_err(), "fixture must not parse");
    for chunk in [1usize, 37, 4096, 1 << 22] {
        for &threads in &THREAD_COUNTS {
            let streamed =
                pprof::parse_streaming_with(&first, ExecPolicy::with_threads(threads), chunk);
            assert_eq!(streamed, buffered, "chunk={chunk} threads={threads}");
        }
    }
}

#[test]
fn every_prefix_of_a_small_profile_matches() {
    let mut rng = Rng::new(0x5eed);
    let data = synth_pprof(&mut rng, 4);
    for cut in 0..=data.len() {
        assert_stream_matches(&data[..cut], 3);
    }
}

//! Shared pprof payload fabricators for the differential conformance
//! suites (`pprof_differential.rs`, `pprof_streaming.rs`).
//!
//! Payloads are built directly with `ev_wire::Writer` rather than
//! `ev-gen` (which would create a dev-dependency cycle), which also
//! lets the generators reach states a well-formed writer never emits:
//! duplicate ids, dangling references, wrong wire types, unknown
//! fields, samples preceding the tables they point into.

#![allow(dead_code)]

use ev_flate::{gzip_compress, CompressionLevel};
use ev_test::Rng;
use ev_wire::Writer;

/// Emits a location message; `lines` pairs are (function_id, line).
pub fn write_location(w: &mut Writer, id: u64, mapping_id: u64, address: u64, lines: &[(u64, i64)]) {
    w.write_message_with(4, |m| {
        m.write_uint64(1, id);
        if mapping_id != 0 {
            m.write_uint64(2, mapping_id);
        }
        if address != 0 {
            m.write_uint64(3, address);
        }
        for &(function_id, line) in lines {
            m.write_message_with(4, |lm| {
                lm.write_uint64(1, function_id);
                lm.write_int64(2, line);
            });
        }
    });
}

/// Emits a sample message, packed or unpacked per flag.
pub fn write_sample(w: &mut Writer, location_ids: &[u64], values: &[i64], packed: bool) {
    w.write_message_with(2, |m| {
        if packed {
            m.write_packed_uint64(1, location_ids);
            m.write_packed_int64(2, values);
        } else {
            for &id in location_ids {
                m.write_uint64(1, id);
            }
            for &v in values {
                m.write_int64(2, v);
            }
        }
    });
}

/// Fully structured synthetic profile: random table sizes, random id
/// assignment (dense, offset, duplicated, or huge-sparse), samples
/// drawn from the location pool with occasional dangling ids, random
/// section order, random packed/unpacked encoding, optional gzip.
pub fn synth_pprof(rng: &mut Rng, size: usize) -> Vec<u8> {
    let n_strings = rng.gen_range(0..(size + 2));
    let n_functions = rng.gen_range(0..(size + 1));
    let n_mappings = rng.gen_range(0..4usize);
    let n_locations = rng.gen_range(0..(size + 1));
    let n_types = rng.gen_range(0..3usize);
    let n_samples = rng.gen_range(0..(2 * size + 1));

    // Id assignment style exercises the dense/sparse IdIndex split and
    // the duplicate-id last-wins rule.
    let id_of = |rng: &mut Rng, i: usize| -> u64 {
        match rng.gen_range(0..10u32) {
            0 => rng.gen_range(1..(i as u64 + 2)),     // duplicates likely
            1 => (i as u64 + 1) * 1_000_003,           // sparse
            2 => rng.next_u64() | 1,                   // huge
            _ => i as u64 + 1,                         // dense from 1
        }
    };
    let str_idx = |rng: &mut Rng, n: usize| -> i64 {
        match rng.gen_range(0..8u32) {
            0 => -1,                                   // negative: clamps to 0
            1 => n as i64 + rng.gen_range(0..5u64) as i64, // out of range
            _ => rng.gen_range(0..(n as u64 + 1)) as i64,
        }
    };

    let mut w = Writer::new();
    let mut location_ids: Vec<u64> = Vec::new();

    // Sometimes emit samples before the tables they reference — the
    // forward-reference case the one-pass fixup exists for.
    let samples_first = rng.gen_bool(0.5);
    let emit_samples = |w: &mut Writer, rng: &mut Rng, location_ids: &[u64]| {
        for _ in 0..n_samples {
            let depth = rng.gen_range(0..9usize);
            let mut chain = Vec::with_capacity(depth);
            for _ in 0..depth {
                if !location_ids.is_empty() && rng.gen_bool(0.95) {
                    chain.push(location_ids[rng.gen_range(0..location_ids.len())]);
                } else {
                    // Dangling id: must yield the identical Schema
                    // error from both decoders.
                    chain.push(rng.next_u64());
                }
            }
            let n_vals = rng.gen_range(0..4usize);
            let values: Vec<i64> = (0..n_vals)
                .map(|_| rng.gen_range(0..1000u64) as i64 - 100)
                .collect();
            write_sample(w, &chain, &values, rng.gen_bool(0.8));
        }
    };

    for i in 0..n_locations {
        location_ids.push(id_of(rng, i));
    }

    if !samples_first {
        // Tables first: string table, types, mappings, functions, locations.
        for i in 0..n_strings {
            w.write_string(6, &format!("s{i}"));
        }
    }
    for _ in 0..n_types {
        w.write_message_with(1, |m| {
            m.write_int64(1, str_idx(rng, n_strings));
            m.write_int64(2, str_idx(rng, n_strings));
        });
    }
    if samples_first {
        emit_samples(&mut w, rng, &location_ids);
    }
    for i in 0..n_mappings {
        w.write_message_with(3, |m| {
            m.write_uint64(1, i as u64 + 1);
            m.write_int64(5, str_idx(rng, n_strings));
        });
    }
    for i in 0..n_functions {
        w.write_message_with(5, |m| {
            m.write_uint64(1, id_of(rng, i));
            m.write_int64(2, str_idx(rng, n_strings));
            m.write_int64(4, str_idx(rng, n_strings));
        });
    }
    for (i, &id) in location_ids.iter().enumerate() {
        let n_lines = rng.gen_range(0..4usize);
        let lines: Vec<(u64, i64)> = (0..n_lines)
            .map(|_| {
                let fi = rng.gen_range(0..(n_functions + 1));
                (id_of(rng, fi), rng.gen_range(0..500u64) as i64 - 5)
            })
            .collect();
        let mapping_id = rng.gen_range(0..(n_mappings as u64 + 2));
        write_location(&mut w, id, mapping_id, (i as u64) << 4, &lines);
    }
    if samples_first {
        for i in 0..n_strings {
            w.write_string(6, &format!("s{i}"));
        }
    } else {
        emit_samples(&mut w, rng, &location_ids);
    }
    if rng.gen_bool(0.5) {
        w.write_int64(9, rng.next_u64() as i64);
    }
    // Unknown fields and wrong wire types for known fields, scattered
    // at the end (the walk must treat both as skippable).
    if rng.gen_bool(0.3) {
        w.write_uint64(4, rng.next_u64()); // location as varint: mismatched
        w.write_fixed64(6, 0xdeadbeef); // string table as fixed64: mismatched
        w.write_bytes(9, b"not a varint"); // time_nanos as bytes: mismatched
        w.write_uint64(15, 7); // unknown field
        w.write_fixed32(200, 42); // unknown field
    }

    let body = w.into_bytes();
    if rng.gen_bool(0.3) {
        gzip_compress(&body, CompressionLevel::Fast)
    } else {
        body
    }
}

/// Deep stacks over a small shared location pool: tens of frames per
/// sample, heavy path-prefix sharing — the edge-memo hot case.
pub fn synth_deep_stacks(rng: &mut Rng, size: usize) -> Vec<u8> {
    let n_locations = rng.gen_range(1..6usize);
    let mut w = Writer::new();
    w.write_message_with(1, |m| {
        m.write_int64(1, 1);
        m.write_int64(2, 2);
    });
    for i in 0..n_locations {
        write_location(
            &mut w,
            i as u64 + 1,
            0,
            0x1000 + i as u64,
            &[(i as u64 + 1, i as i64 * 10)],
        );
        w.write_message_with(5, |m| {
            m.write_uint64(1, i as u64 + 1);
            m.write_int64(2, 3 + i as i64);
        });
    }
    for _ in 0..(size + 1) {
        let depth = rng.gen_range(1..(8 * size + 2));
        let chain: Vec<u64> = (0..depth)
            .map(|_| rng.gen_range(0..n_locations as u64) + 1)
            .collect();
        write_sample(&mut w, &chain, &[rng.gen_range(0..50u64) as i64], true);
    }
    let mut strings = vec!["".to_owned(), "cpu".to_owned(), "nanoseconds".to_owned()];
    for i in 0..n_locations {
        strings.push(format!("fn_{i}"));
    }
    for s in &strings {
        w.write_string(6, s);
    }
    w.into_bytes()
}

/// Multi-sample-type profiles where sample value vectors are shorter,
/// equal to, or longer than the declared sample_type list.
pub fn synth_multi_type(rng: &mut Rng, size: usize) -> Vec<u8> {
    let n_types = rng.gen_range(1..(size + 2));
    let mut w = Writer::new();
    for i in 0..n_types {
        w.write_message_with(1, |m| {
            m.write_int64(1, 1 + 2 * i as i64);
            m.write_int64(2, 2 + 2 * i as i64);
        });
    }
    write_location(&mut w, 1, 0, 0xabc, &[(1, 1)]);
    w.write_message_with(5, |m| {
        m.write_uint64(1, 1);
        m.write_int64(2, 1);
    });
    for _ in 0..rng.gen_range(1..8usize) {
        let n_vals = rng.gen_range(0..(n_types + 3));
        let values: Vec<i64> = (0..n_vals).map(|_| rng.gen_range(0..9u64) as i64).collect();
        write_sample(&mut w, &[1], &values, rng.gen_bool(0.5));
    }
    let mut strings = vec![String::new()];
    for i in 0..n_types {
        strings.push(format!("metric_{i}"));
        strings.push(if i % 2 == 0 { "bytes".to_owned() } else { "nanoseconds".to_owned() });
    }
    for s in &strings {
        w.write_string(6, s);
    }
    w.into_bytes()
}

/// Empty and degenerate tables: no strings, no samples, empty
/// messages, locations without lines, mappings/functions that nothing
/// references, and every combination the size budget allows.
pub fn synth_degenerate(rng: &mut Rng, _size: usize) -> Vec<u8> {
    let mut w = Writer::new();
    if rng.gen_bool(0.5) {
        w.write_message_with(1, |_| {}); // empty ValueType
    }
    if rng.gen_bool(0.5) {
        w.write_message_with(2, |_| {}); // empty Sample (no locations, no values)
    }
    if rng.gen_bool(0.5) {
        w.write_message_with(3, |_| {}); // Mapping with id 0
    }
    if rng.gen_bool(0.5) {
        w.write_message_with(4, |_| {}); // Location with id 0, no lines
        if rng.gen_bool(0.5) {
            // A sample can legitimately reference location id 0 then.
            write_sample(&mut w, &[0], &[1], true);
        }
    }
    if rng.gen_bool(0.5) {
        w.write_message_with(5, |_| {}); // Function with id 0
    }
    if rng.gen_bool(0.3) {
        w.write_string(6, ""); // explicit empty first string
    }
    if rng.gen_bool(0.3) {
        // Duplicate location ids: last definition must win in both.
        write_location(&mut w, 7, 0, 0x100, &[]);
        write_location(&mut w, 7, 0, 0x200, &[]);
        write_sample(&mut w, &[7], &[5], rng.gen_bool(0.5));
    }
    w.into_bytes()
}

//! Differential decode-conformance suite for the pprof decoders.
//!
//! The one-pass arena-backed decoder (`pprof::parse_with`) is only
//! shippable because the two-pass reference decoder
//! (`pprof::parse_reference_with`) is retained and these properties
//! prove the two produce **identical profiles and identical errors**
//! on any input — the `inflate_reference`/`crc32_reference` pattern
//! applied to wire decode. Every property runs both decoders at
//! thread counts 1, 2, and 8 (the `ExecPolicy` reaches the gzip
//! member inflation; profile output must be bit-identical at any
//! count).
//!
//! Payload fabricators live in `common/mod.rs`, shared with the
//! streaming chunk-boundary suite (`pprof_streaming.rs`).

mod common;

use common::{synth_deep_stacks, synth_degenerate, synth_multi_type, synth_pprof};
use ev_core::Profile;
use ev_flate::{CompressionLevel, ExecPolicy};
use ev_formats::{pprof, FormatError};
use ev_test::prelude::*;
use ev_test::Rng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs both decoders under `policy` and returns their results.
fn decode_both(
    data: &[u8],
    threads: usize,
) -> (
    Result<Profile, FormatError>,
    Result<Profile, FormatError>,
) {
    let policy = ExecPolicy::with_threads(threads);
    (
        pprof::parse_with(data, policy),
        pprof::parse_reference_with(data, policy),
    )
}

property! {
    fn decoders_agree_on_synthetic_profiles(data in seeded(1..12, synth_pprof)) {
        for &threads in &THREAD_COUNTS {
            let (one, reference) = decode_both(&data, threads);
            prop_assert_eq!(one, reference);
        }
    }

    fn decoders_agree_on_deep_stacks(data in seeded(1..8, synth_deep_stacks)) {
        for &threads in &THREAD_COUNTS {
            let (one, reference) = decode_both(&data, threads);
            prop_assert_eq!(one, reference);
        }
    }

    fn decoders_agree_on_multi_sample_type(data in seeded(1..6, synth_multi_type)) {
        for &threads in &THREAD_COUNTS {
            let (one, reference) = decode_both(&data, threads);
            prop_assert_eq!(one, reference);
        }
    }

    fn decoders_agree_on_degenerate_tables(data in seeded(1..4, synth_degenerate)) {
        for &threads in &THREAD_COUNTS {
            let (one, reference) = decode_both(&data, threads);
            prop_assert_eq!(one, reference);
        }
    }

    fn decoders_agree_on_truncations(data in seeded(1..6, synth_pprof), cut in any_u64()) {
        // Any prefix of a valid payload must fail (or succeed)
        // identically in both decoders.
        let cut = (cut as usize) % (data.len() + 1);
        let (one, reference) = decode_both(&data[..cut], 1);
        prop_assert_eq!(one, reference);
    }

    fn decoders_agree_on_bitflips(
        data in seeded(1..6, synth_pprof),
        pos in any_u64(),
        bit in any_u64(),
    ) {
        let mut data = data.clone();
        if !data.is_empty() {
            let n = data.len();
            data[(pos as usize) % n] ^= 1 << (bit % 8);
        }
        for &threads in &THREAD_COUNTS {
            let (one, reference) = decode_both(&data, threads);
            prop_assert_eq!(one, reference);
        }
    }

    fn decoders_agree_on_arbitrary_bytes(data in vec(any_u8(), 0..512)) {
        let (one, reference) = decode_both(&data, 1);
        prop_assert_eq!(one, reference);
    }
}

#[test]
fn decoders_agree_on_every_prefix_of_a_small_profile() {
    // Exhaustive truncation sweep of one representative payload:
    // every cut must yield identical results (usually identical
    // errors) from both decoders.
    let mut rng = Rng::new(0x5eed);
    let data = synth_pprof(&mut rng, 4);
    for cut in 0..=data.len() {
        let (one, reference) = decode_both(&data[..cut], 1);
        assert_eq!(one, reference, "prefix of {cut}/{} bytes", data.len());
    }
}

#[test]
fn roundtrip_through_writer_agrees() {
    // A profile written by our own writer decodes identically through
    // both decoders and survives a write→parse→write fixpoint.
    let mut rng = Rng::new(42);
    for size in 1..8 {
        let data = synth_deep_stacks(&mut rng, size);
        let (one, reference) = decode_both(&data, 1);
        let profile = one.expect("writer output must parse");
        assert_eq!(Ok(&profile), reference.as_ref());
        let rewritten = pprof::write(
            &profile,
            pprof::WriteOptions {
                gzip: false,
                level: CompressionLevel::Store,
            },
        );
        let (one2, reference2) = decode_both(&rewritten, 1);
        assert_eq!(one2, reference2);
        assert!(one2.is_ok());
    }
}

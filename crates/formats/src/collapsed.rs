//! The folded/collapsed stacks binding — Brendan Gregg's FlameGraph
//! intermediate format (`stackcollapse-*.pl` output), one line per
//! unique call path:
//!
//! ```text
//! main;parse;read_token 105
//! main;eval 240
//! ```
//!
//! Many profilers can emit this format, which makes it the lingua franca
//! for flame-graph tooling; supporting it gives EasyView a binding to
//! every one of them at once.

use crate::FormatError;
use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit, Profile};

/// Quick structural sniff used by [`crate::detect`]: at least one
/// non-empty line, and every non-empty line is `frames... <integer>` with
/// `;`-separated frames.
pub fn looks_like(text: &str) -> bool {
    let mut any = false;
    for line in text.lines().take(50) {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((stack, count)) = line.rsplit_once(' ') else {
            return false;
        };
        if stack.is_empty() || count.parse::<f64>().is_err() {
            return false;
        }
        any = true;
    }
    any
}

/// Parses folded stacks into a profile with one `samples` count metric.
///
/// FlameGraph annotation suffixes (`_[k]`, `_[i]`, `_[j]` for
/// kernel/inlined/jit) are preserved verbatim in the frame name; frames
/// of the form `name (module)` put the module into the code-mapping
/// field.
///
/// # Errors
///
/// Fails on lines without a trailing number.
pub fn parse(text: &str) -> Result<Profile, FormatError> {
    let _span = ev_trace::span("convert.collapsed");
    let mut profile = Profile::new("collapsed");
    profile.meta_mut().profiler = "collapsed".to_owned();
    let samples = profile.add_metric(MetricDescriptor::new(
        "samples",
        MetricUnit::Count,
        MetricKind::Exclusive,
    ));

    let mut path: Vec<Frame> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (stack, count) = line.rsplit_once(' ').ok_or_else(|| {
            FormatError::Schema(format!("line {}: missing sample count", lineno + 1))
        })?;
        let count: f64 = count.parse().map_err(|_| {
            FormatError::Schema(format!("line {}: bad sample count {count:?}", lineno + 1))
        })?;
        path.clear();
        for part in stack.split(';') {
            // "name (module)" keeps the module as code mapping.
            if let Some((name, module)) = part.rsplit_once(" (") {
                if let Some(module) = module.strip_suffix(')') {
                    path.push(Frame::function(name).with_module(module));
                    continue;
                }
            }
            path.push(Frame::function(part));
        }
        profile.add_sample(&path, &[(samples, count)]);
    }
    Ok(profile)
}

/// Writes a profile as folded stacks: one line per node that carries a
/// value of `metric_index` 0. The inverse of [`parse`] up to line order.
pub fn write(profile: &Profile) -> String {
    let mut out = String::new();
    let Some(metric) = profile.metrics().first() else {
        return out;
    };
    let metric = profile
        .metric_by_name(&metric.name)
        .expect("first metric exists");
    for node in profile.node_ids() {
        let value = profile.value(node, metric);
        if value == 0.0 {
            continue;
        }
        let path = profile.path(node);
        if path.is_empty() {
            continue;
        }
        let names: Vec<String> = path
            .iter()
            .map(|&id| {
                let f = profile.resolve_frame(id);
                if f.module.is_empty() {
                    f.name
                } else {
                    format!("{} ({})", f.name, f.module)
                }
            })
            .collect();
        out.push_str(&names.join(";"));
        out.push(' ');
        if value == value.trunc() {
            out.push_str(&format!("{}\n", value as i64));
        } else {
            out.push_str(&format!("{value}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sniffing() {
        assert!(looks_like("main;a 1\nmain;b 2\n"));
        assert!(looks_like("single 42"));
        assert!(!looks_like("just some words without trailing count x"));
        assert!(!looks_like(""));
        assert!(!looks_like("no-count-here"));
    }

    #[test]
    fn parse_builds_merged_cct() {
        let p = parse("main;a;b 5\nmain;a;c 3\nmain 2\n").unwrap();
        p.validate().unwrap();
        assert_eq!(p.node_count(), 5); // root, main, a, b, c
        let m = p.metric_by_name("samples").unwrap();
        assert_eq!(p.total(m), 10.0);
    }

    #[test]
    fn module_annotation_parsed() {
        let p = parse("main (app);brk (libc-2.31.so) 7\n").unwrap();
        let brk = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).name == "brk")
            .unwrap();
        assert_eq!(p.resolve_frame(brk).module, "libc-2.31.so");
    }

    #[test]
    fn bad_lines_error() {
        assert!(parse("main;a notanumber\n").is_err());
        // A line that is a bare word has no space separator.
        assert!(parse("mainonly\n").is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let p = parse("\n\nmain 1\n\n").unwrap();
        assert_eq!(p.node_count(), 2);
    }

    #[test]
    fn write_parse_roundtrip() {
        let input = "main;a;b 5\nmain;a;c 3\nmain 2\n";
        let p = parse(input).unwrap();
        let emitted = write(&p);
        let q = parse(&emitted).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn fractional_counts_accepted() {
        let p = parse("main 2.5\n").unwrap();
        let m = p.metric_by_name("samples").unwrap();
        assert_eq!(p.total(m), 2.5);
    }
}

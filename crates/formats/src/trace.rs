//! Exporters for `ev-trace` recordings: EasyView's own execution as an
//! EasyView profile (dogfooding the paper's generic representation) and
//! as Chrome trace-event JSON, plus the glue the CLI uses for
//! `--trace-out`.
//!
//! The self-profile exporter turns the recorded span forest into a
//! calling-context tree via [`ev_core::ProfileBuilder`]: each span
//! becomes a context whose path is its ancestor chain, carrying its
//! *exclusive* wall time (duration minus direct children) and a span
//! count. The result renders with `easyview flame`, so EasyView can
//! profile itself with itself.

use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit, Profile};
use ev_json::Value;
use ev_trace::SpanRecord;
use std::collections::HashMap;

/// Converts recorded spans into an EasyView [`Profile`].
///
/// Each span contributes one sample at the path formed by its ancestor
/// chain (orphaned parents degrade to root level), with two metrics:
/// `wall` — exclusive nanoseconds (duration minus direct children) —
/// and `spans` — the number of spans at that context. Span ids are
/// allocated in open order and [`ev_trace::take_spans`] sorts by
/// `(start_ns, id)`, so the output is deterministic for a recording.
pub fn self_profile(spans: &[SpanRecord]) -> Profile {
    let mut builder = ev_core::ProfileBuilder::new("easyview-self-trace");
    builder.profiler("ev-trace");
    let wall = builder.add_metric(MetricDescriptor::new(
        "wall",
        MetricUnit::Nanoseconds,
        MetricKind::Exclusive,
    ));
    let count = builder.add_metric(MetricDescriptor::new(
        "spans",
        MetricUnit::Count,
        MetricKind::Exclusive,
    ));

    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for span in spans {
        if span.parent != 0 && by_id.contains_key(&span.parent) {
            *child_ns.entry(span.parent).or_insert(0) += span.duration_ns();
        }
    }

    let mut path: Vec<Frame> = Vec::new();
    for span in spans {
        path.clear();
        path.push(Frame::function(span.name));
        let mut cursor = span.parent;
        while let Some(ancestor) = by_id.get(&cursor) {
            path.push(Frame::function(ancestor.name));
            cursor = ancestor.parent;
        }
        path.reverse();
        let exclusive = span
            .duration_ns()
            .saturating_sub(child_ns.get(&span.id).copied().unwrap_or(0));
        builder.sample_path(&path, &[(wall, exclusive as f64), (count, 1.0)]);
    }
    builder.finish()
}

/// Converts recorded spans into a Chrome trace-event [`Value`]:
/// complete (`ph: "X"`) events with microsecond `ts`/`dur`, one `tid`
/// per recording thread. The shape round-trips through this crate's own
/// [`crate::chrome`] importer, and `ev-json` serializes object keys in
/// sorted order, so the output is byte-deterministic.
pub fn chrome_trace(spans: &[SpanRecord]) -> Value {
    let events = spans.iter().map(|span| {
        Value::object([
            ("args", Value::object([
                ("id", Value::Int(span.id as i64)),
                ("parent", Value::Int(span.parent as i64)),
            ])),
            ("cat", Value::String("easyview".to_owned())),
            ("dur", Value::Float(span.duration_ns() as f64 / 1000.0)),
            ("name", Value::String(span.name.to_owned())),
            ("ph", Value::String("X".to_owned())),
            ("pid", Value::Int(1)),
            ("tid", Value::Int(i64::from(span.thread) + 1)),
            ("ts", Value::Float(span.start_ns as f64 / 1000.0)),
        ])
    });
    Value::object([
        ("displayTimeUnit", Value::String("ms".to_owned())),
        ("traceEvents", Value::array(events)),
    ])
}

/// [`chrome_trace`] serialized to a compact JSON string.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    ev_json::to_string(&chrome_trace(spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                id: 1,
                parent: 0,
                name: "flame.layout",
                thread: 0,
                start_ns: 1_000,
                end_ns: 11_000,
            },
            SpanRecord {
                id: 2,
                parent: 1,
                name: "analysis.metric_view",
                thread: 0,
                start_ns: 2_000,
                end_ns: 6_000,
            },
            SpanRecord {
                id: 3,
                parent: 0,
                name: "flame.render",
                thread: 1,
                start_ns: 12_000,
                end_ns: 12_500,
            },
        ]
    }

    #[test]
    fn self_profile_builds_context_tree() {
        let profile = self_profile(&fixture_spans());
        profile.validate().unwrap();
        let wall = profile.metric_by_name("wall").unwrap();
        // flame.layout: 10µs − 4µs child = 6µs exclusive.
        let names: Vec<String> = profile
            .node_ids()
            .map(|id| profile.resolve_frame(id).name)
            .collect();
        assert!(names.iter().any(|n| n == "flame.layout"));
        assert!(names.iter().any(|n| n == "analysis.metric_view"));
        assert!(names.iter().any(|n| n == "flame.render"));
        assert_eq!(profile.total(wall) as u64, 6_000 + 4_000 + 500);
    }

    #[test]
    fn self_profile_roundtrips_through_easyview_format() {
        let profile = self_profile(&fixture_spans());
        let bytes = ev_core::format::to_bytes(&profile);
        let back = crate::easyview::parse(&bytes).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn self_profile_tolerates_orphan_parents() {
        let spans = [SpanRecord {
            id: 7,
            parent: 99,
            name: "orphan",
            thread: 0,
            start_ns: 0,
            end_ns: 10,
        }];
        let profile = self_profile(&spans);
        profile.validate().unwrap();
        assert_eq!(profile.node_count(), 2); // root + orphan at top level
    }

    #[test]
    fn chrome_trace_matches_golden_json() {
        let json = chrome_trace_json(&fixture_spans()[..1]);
        assert_eq!(
            json,
            concat!(
                r#"{"displayTimeUnit":"ms","traceEvents":["#,
                r#"{"args":{"id":1,"parent":0},"cat":"easyview","dur":10.0,"#,
                r#""name":"flame.layout","ph":"X","pid":1,"tid":1,"ts":1.0}]}"#,
            )
        );
    }

    #[test]
    fn chrome_trace_reimports_through_chrome_converter() {
        let json = chrome_trace_json(&fixture_spans());
        let profile = crate::chrome::parse(&json).unwrap();
        profile.validate().unwrap();
        let names: Vec<String> = profile
            .node_ids()
            .map(|id| profile.resolve_frame(id).name)
            .collect();
        assert!(names.iter().any(|n| n == "flame.layout"), "{names:?}");
    }
}

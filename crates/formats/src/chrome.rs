//! The Chrome profiler binding: the Trace Event JSON format emitted by
//! `chrome://tracing`, the DevTools performance panel, and many
//! user-space tracers.
//!
//! Two layouts are accepted (per the spec): a bare JSON array of events,
//! or an object with a `traceEvents` array. Supported event phases:
//!
//! * `B`/`E` — nested duration begin/end per (pid, tid);
//! * `X` — complete events with `dur`, nested by timestamp containment.
//!
//! Durations become a `wall` metric in nanoseconds (trace timestamps are
//! microseconds), attributed exclusively: a parent's self time excludes
//! its children.

use crate::FormatError;
use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit, Profile};
use ev_json::Value;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Complete {
    name: String,
    cat: String,
    start: f64,
    duration: f64,
}

/// Parses a Chrome trace into a profile with one exclusive `wall`
/// metric (nanoseconds).
///
/// # Errors
///
/// Fails on malformed JSON, a missing `traceEvents` array, unbalanced
/// `B`/`E` pairs, or events with non-numeric timestamps.
pub fn parse(text: &str) -> Result<Profile, FormatError> {
    let _span = ev_trace::span("convert.chrome");
    let root = ev_json::parse(text)?;
    let events = match &root {
        Value::Array(items) => items.as_slice(),
        Value::Object(_) => root
            .get("traceEvents")
            .and_then(Value::as_array)
            .ok_or_else(|| FormatError::Schema("missing traceEvents array".to_owned()))?,
        _ => return Err(FormatError::Schema("trace must be array or object".to_owned())),
    };

    let mut profile = Profile::new("chrome-trace");
    profile.meta_mut().profiler = "chrome".to_owned();
    let wall = profile.add_metric(MetricDescriptor::new(
        "wall",
        MetricUnit::Nanoseconds,
        MetricKind::Exclusive,
    ));

    // Group events per (pid, tid) track.
    type OpenFrame = (String, String, f64);
    let mut completes: HashMap<(i64, i64), Vec<Complete>> = HashMap::new();
    let mut open_stacks: HashMap<(i64, i64), Vec<OpenFrame>> = HashMap::new();

    for (i, event) in events.iter().enumerate() {
        let ph = event.get("ph").and_then(Value::as_str).unwrap_or("");
        match ph {
            "X" | "B" | "E" => {}
            // Metadata, counters, async, flows… not call structure.
            _ => continue,
        }
        let ts = event
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| FormatError::Schema(format!("event {i}: missing ts")))?;
        let pid = event.get("pid").and_then(Value::as_i64).unwrap_or(0);
        let tid = event.get("tid").and_then(Value::as_i64).unwrap_or(0);
        let key = (pid, tid);
        let name = event
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("(unnamed)")
            .to_owned();
        let cat = event
            .get("cat")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_owned();
        match ph {
            "X" => {
                let dur = event.get("dur").and_then(Value::as_f64).unwrap_or(0.0);
                completes.entry(key).or_default().push(Complete {
                    name,
                    cat,
                    start: ts,
                    duration: dur,
                });
            }
            "B" => {
                open_stacks.entry(key).or_default().push((name, cat, ts));
            }
            "E" => {
                let stack = open_stacks.entry(key).or_default();
                let (bname, bcat, bts) = stack.pop().ok_or_else(|| {
                    FormatError::Schema(format!("event {i}: E without matching B"))
                })?;
                completes.entry(key).or_default().push(Complete {
                    name: bname,
                    cat: bcat,
                    start: bts,
                    duration: ts - bts,
                });
            }
            _ => unreachable!(),
        }
    }
    for (key, stack) in &open_stacks {
        if !stack.is_empty() {
            return Err(FormatError::Schema(format!(
                "track {key:?}: {} unclosed B events",
                stack.len()
            )));
        }
    }

    // Nest complete events by interval containment per track.
    for ((pid, tid), mut track) in completes {
        // Sort by start ascending, then duration descending so parents
        // precede their children.
        track.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    b.duration
                        .partial_cmp(&a.duration)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        });
        let thread_frame = Frame::thread(format!("pid {pid} tid {tid}"));
        let thread_node = profile.child(profile.root(), &thread_frame);
        // Stack of (node, end_ts) for currently containing events.
        let mut stack: Vec<(ev_core::NodeId, f64)> = Vec::new();
        for event in &track {
            let end = event.start + event.duration;
            while let Some(&(_, parent_end)) = stack.last() {
                if event.start >= parent_end {
                    stack.pop();
                } else {
                    break;
                }
            }
            let parent = stack.last().map_or(thread_node, |&(node, _)| node);
            let mut frame = Frame::function(&event.name);
            if !event.cat.is_empty() {
                frame = frame.with_module(&event.cat);
            }
            let node = profile.child(parent, &frame);
            // Exclusive attribution: add own duration, subtract from parent.
            let nanos = event.duration * 1000.0;
            profile.add_value(node, wall, nanos);
            if parent != thread_node {
                profile.add_value(parent, wall, -nanos);
            }
            stack.push((node, end));
        }
    }

    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_events_nest_by_containment() {
        let trace = r#"{"traceEvents": [
            {"ph": "X", "name": "main", "ts": 0, "dur": 100, "pid": 1, "tid": 1},
            {"ph": "X", "name": "child", "ts": 10, "dur": 30, "pid": 1, "tid": 1},
            {"ph": "X", "name": "child", "ts": 50, "dur": 20, "pid": 1, "tid": 1}
        ]}"#;
        let p = parse(trace).unwrap();
        p.validate().unwrap();
        let wall = p.metric_by_name("wall").unwrap();
        // Total = 100 µs = 100_000 ns.
        assert_eq!(p.total(wall), 100_000.0);
        let main = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).name == "main")
            .unwrap();
        // Exclusive: 100 - 30 - 20 = 50 µs.
        assert_eq!(p.value(main, wall), 50_000.0);
        // Both child events merged into one CCT node.
        let child = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).name == "child")
            .unwrap();
        assert_eq!(p.value(child, wall), 50_000.0);
        assert_eq!(p.node(main).children().len(), 1);
    }

    #[test]
    fn begin_end_pairs() {
        let trace = r#"[
            {"ph": "B", "name": "outer", "ts": 0, "pid": 1, "tid": 1},
            {"ph": "B", "name": "inner", "ts": 5, "pid": 1, "tid": 1},
            {"ph": "E", "ts": 15, "pid": 1, "tid": 1},
            {"ph": "E", "ts": 40, "pid": 1, "tid": 1}
        ]"#;
        let p = parse(trace).unwrap();
        let wall = p.metric_by_name("wall").unwrap();
        let outer = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).name == "outer")
            .unwrap();
        let inner = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).name == "inner")
            .unwrap();
        assert_eq!(p.value(outer, wall), 30_000.0);
        assert_eq!(p.value(inner, wall), 10_000.0);
        assert_eq!(p.node(inner).parent(), Some(outer));
    }

    #[test]
    fn tracks_are_separate_subtrees() {
        let trace = r#"[
            {"ph": "X", "name": "a", "ts": 0, "dur": 10, "pid": 1, "tid": 1},
            {"ph": "X", "name": "a", "ts": 0, "dur": 10, "pid": 1, "tid": 2}
        ]"#;
        let p = parse(trace).unwrap();
        // root -> two thread frames -> one "a" each.
        assert_eq!(p.node(p.root()).children().len(), 2);
        assert_eq!(p.node_count(), 5);
    }

    #[test]
    fn metadata_events_ignored() {
        let trace = r#"[
            {"ph": "M", "name": "process_name", "ts": 0, "pid": 1, "tid": 1},
            {"ph": "X", "name": "work", "ts": 0, "dur": 5, "pid": 1, "tid": 1}
        ]"#;
        let p = parse(trace).unwrap();
        assert!(p.node_ids().any(|id| p.resolve_frame(id).name == "work"));
        assert!(!p
            .node_ids()
            .any(|id| p.resolve_frame(id).name == "process_name"));
    }

    #[test]
    fn category_becomes_module() {
        let trace = r#"[{"ph": "X", "name": "f", "cat": "v8", "ts": 0, "dur": 1, "pid": 1, "tid": 1}]"#;
        let p = parse(trace).unwrap();
        let f = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).name == "f")
            .unwrap();
        assert_eq!(p.resolve_frame(f).module, "v8");
    }

    #[test]
    fn errors() {
        assert!(parse("not json").is_err());
        assert!(parse(r#"{"noTraceEvents": []}"#).is_err());
        assert!(parse(r#""scalar""#).is_err());
        // E without B.
        assert!(parse(r#"[{"ph": "E", "ts": 1, "pid": 1, "tid": 1}]"#).is_err());
        // Unclosed B.
        assert!(parse(r#"[{"ph": "B", "name": "x", "ts": 1, "pid": 1, "tid": 1}]"#).is_err());
        // Missing ts.
        assert!(parse(r#"[{"ph": "X", "name": "x", "dur": 1}]"#).is_err());
    }
}

//! `ev-formats` — EasyView's data-binding layer (paper §IV-B).
//!
//! Profilers have their own output formats, built on different
//! technologies (protobuf for pprof/perf/Cloud Profiler, JSON for the
//! Chrome profiler/speedscope/pyinstrument/Scalene, XML for HPCToolkit,
//! plain text for `perf script` and folded stacks). This crate translates
//! each of them into `ev-core`'s generic representation through a *format
//! converter*, the mechanism the paper uses to support existing profilers
//! "without major changes" to them.
//!
//! Supported formats:
//!
//! | Format | Module | Input technology |
//! |---|---|---|
//! | EasyView native | [`easyview`] | protobuf (`ev-wire`) |
//! | pprof (Go, Cloud Profiler, perf via `perf_to_profile`) | [`pprof`] | gzip'd protobuf |
//! | `perf script` output | [`perf_script`] | text |
//! | folded/collapsed stacks (FlameGraph tooling) | [`collapsed`] | text |
//! | Chrome trace events | [`chrome`] | JSON |
//! | speedscope | [`speedscope`] | JSON |
//! | pyinstrument | [`pyinstrument`] | JSON |
//! | Scalene | [`scalene`] | JSON |
//! | HPCToolkit experiment databases | [`hpctoolkit`] | XML |
//!
//! [`detect`] sniffs a byte buffer and [`parse_auto`] dispatches to the
//! right converter, which is how the EasyView front end opens arbitrary
//! profile files.
//!
//! # Examples
//!
//! ```
//! use ev_formats::{detect, parse_auto, Format};
//!
//! # fn main() -> Result<(), ev_formats::FormatError> {
//! let folded = b"main;compute 90\nmain;io 10\n";
//! assert_eq!(detect(folded), Format::Collapsed);
//! let profile = parse_auto(folded)?;
//! assert_eq!(profile.node_count(), 4);
//! # Ok(())
//! # }
//! ```

pub mod chrome;
pub mod collapsed;
pub mod easyview;
pub mod hpctoolkit;
pub mod perf_script;
pub mod pprof;
pub mod pyinstrument;
pub mod scalene;
pub mod speedscope;
pub mod trace;

use ev_core::Profile;
use std::error::Error;
use std::fmt;

/// A profile file format EasyView can bind to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// EasyView's native binary format.
    EasyView,
    /// pprof protobuf, optionally gzip-compressed.
    Pprof,
    /// `perf script` text output.
    PerfScript,
    /// Folded stack lines (`a;b;c 42`).
    Collapsed,
    /// Chrome trace-event JSON.
    ChromeTrace,
    /// speedscope JSON.
    Speedscope,
    /// pyinstrument session JSON.
    Pyinstrument,
    /// Scalene profile JSON.
    Scalene,
    /// HPCToolkit `experiment.xml`.
    HpcToolkit,
    /// Unrecognized input.
    Unknown,
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Format::EasyView => "easyview",
            Format::Pprof => "pprof",
            Format::PerfScript => "perf-script",
            Format::Collapsed => "collapsed",
            Format::ChromeTrace => "chrome-trace",
            Format::Speedscope => "speedscope",
            Format::Pyinstrument => "pyinstrument",
            Format::Scalene => "scalene",
            Format::HpcToolkit => "hpctoolkit",
            Format::Unknown => "unknown",
        };
        f.write_str(name)
    }
}

/// Errors produced while converting foreign profile data.
#[derive(Debug, Clone, PartialEq)]
pub enum FormatError {
    /// The input could not be assigned to any known format.
    UnknownFormat,
    /// Structured data failed to decode at the container level.
    Container(String),
    /// The data decoded but violated the format's schema.
    Schema(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::UnknownFormat => write!(f, "unrecognized profile format"),
            FormatError::Container(msg) => write!(f, "container error: {msg}"),
            FormatError::Schema(msg) => write!(f, "schema error: {msg}"),
        }
    }
}

impl Error for FormatError {}

impl From<ev_flate::FlateError> for FormatError {
    fn from(err: ev_flate::FlateError) -> FormatError {
        FormatError::Container(err.to_string())
    }
}

impl From<ev_wire::WireError> for FormatError {
    fn from(err: ev_wire::WireError) -> FormatError {
        FormatError::Container(err.to_string())
    }
}

impl From<ev_json::JsonError> for FormatError {
    fn from(err: ev_json::JsonError) -> FormatError {
        FormatError::Container(err.to_string())
    }
}

impl From<ev_xml::XmlError> for FormatError {
    fn from(err: ev_xml::XmlError) -> FormatError {
        FormatError::Container(err.to_string())
    }
}

impl From<ev_core::CoreError> for FormatError {
    fn from(err: ev_core::CoreError) -> FormatError {
        FormatError::Schema(err.to_string())
    }
}

/// Sniffs the format of a profile byte buffer.
///
/// Detection looks at magic bytes first (EasyView, gzip → pprof), then at
/// structural cues in text formats. It never reads more than a prefix.
pub fn detect(data: &[u8]) -> Format {
    if ev_core::format::is_easyview(data) {
        return Format::EasyView;
    }
    if ev_flate::is_gzip(data) {
        // pprof files are gzip'd protobuf; other gzip'd formats are
        // decompressed and re-detected by parse_auto.
        return Format::Pprof;
    }
    let text_prefix = String::from_utf8_lossy(&data[..data.len().min(4096)]);
    let trimmed = text_prefix.trim_start();
    if trimmed.starts_with("<?xml") || trimmed.starts_with("<HPCToolkit") {
        return Format::HpcToolkit;
    }
    if trimmed.starts_with('{') || trimmed.starts_with('[') {
        if trimmed.contains("\"$schema\"") && trimmed.contains("speedscope") {
            return Format::Speedscope;
        }
        if trimmed.contains("\"traceEvents\"")
            || (trimmed.starts_with('[') && trimmed.contains("\"ph\""))
        {
            return Format::ChromeTrace;
        }
        if trimmed.contains("\"root_frame\"") {
            return Format::Pyinstrument;
        }
        if trimmed.contains("\"files\"") && trimmed.contains("\"n_cpu_percent") {
            return Format::Scalene;
        }
        return Format::Unknown;
    }
    // Raw (uncompressed) pprof protobuf tends to start with field 1
    // tags; distinguish from text by non-ascii content.
    if !data.is_empty() && data.iter().take(64).any(|&b| b < 0x09) {
        return Format::Pprof;
    }
    if collapsed::looks_like(&text_prefix) {
        return Format::Collapsed;
    }
    if perf_script::looks_like(&text_prefix) {
        return Format::PerfScript;
    }
    Format::Unknown
}

/// Detects the format of `data` and converts it to a [`Profile`].
///
/// # Errors
///
/// Returns [`FormatError::UnknownFormat`] if no converter claims the
/// input, or the converter's own error otherwise.
pub fn parse_auto(data: &[u8]) -> Result<Profile, FormatError> {
    parse_auto_with(data, ev_flate::ExecPolicy::SEQUENTIAL)
}

/// Like [`parse_auto`], passing an execution policy to converters with
/// parallelizable ingest (currently pprof's multi-member gzip
/// decompression). Output is bit-identical at any thread count.
///
/// # Errors
///
/// Same conditions as [`parse_auto`].
pub fn parse_auto_with(
    data: &[u8],
    policy: ev_flate::ExecPolicy,
) -> Result<Profile, FormatError> {
    match detect(data) {
        Format::EasyView => easyview::parse(data),
        Format::Pprof if ev_flate::is_gzip(data) && data.len() >= STREAM_SIZE_THRESHOLD => {
            pprof::parse_streaming_with(data, policy, ev_flate::DEFAULT_CHUNK_SIZE)
        }
        Format::Pprof => pprof::parse_with(data, policy),
        Format::PerfScript => {
            perf_script::parse(&String::from_utf8_lossy(data))
        }
        Format::Collapsed => collapsed::parse(&String::from_utf8_lossy(data)),
        Format::ChromeTrace => chrome::parse(&String::from_utf8_lossy(data)),
        Format::Speedscope => speedscope::parse(&String::from_utf8_lossy(data)),
        Format::Pyinstrument => pyinstrument::parse(&String::from_utf8_lossy(data)),
        Format::Scalene => scalene::parse(&String::from_utf8_lossy(data)),
        Format::HpcToolkit => hpctoolkit::parse(&String::from_utf8_lossy(data)),
        Format::Unknown => Err(FormatError::UnknownFormat),
    }
}

pub use ev_flate::DEFAULT_CHUNK_SIZE;

/// Compressed sizes at or above this route gzip'd pprof input through
/// the bounded-memory streaming decoder in [`parse_auto_with`]. Below
/// it the buffered one-pass decoder wins: its sample payloads stay
/// borrowed slices into the decompressed body instead of being copied
/// into the spill, and the whole body comfortably fits in memory
/// anyway. 64 MiB compressed is roughly half a GiB decompressed at
/// typical pprof ratios — the point where holding the body *and* the
/// tables starts to hurt.
pub const STREAM_SIZE_THRESHOLD: usize = 64 << 20;

/// Like [`parse_auto_with`], forcing gzip'd and raw pprof input
/// through the bounded-memory streaming decoder at the given chunk
/// size regardless of input size (the CLI's `--stream` flag). Formats
/// without a streaming path fall back to [`parse_auto_with`].
///
/// # Errors
///
/// Same conditions as [`parse_auto`].
pub fn parse_auto_streaming_with(
    data: &[u8],
    policy: ev_flate::ExecPolicy,
    chunk_size: usize,
) -> Result<Profile, FormatError> {
    match detect(data) {
        Format::Pprof => pprof::parse_streaming_with(data, policy, chunk_size),
        _ => parse_auto_with(data, policy),
    }
}

/// Like [`parse_auto_with`], but routing pprof input through the
/// retained two-pass [`pprof::parse_reference_with`] decoder instead of
/// the one-pass fast path. This is the escape hatch behind the CLI's
/// `EASYVIEW_PPROF_REFERENCE` environment variable: if the fast decoder
/// is ever suspected of misreading a profile, rerunning through this
/// entry point isolates the question in seconds. All other formats
/// parse identically to [`parse_auto_with`].
///
/// # Errors
///
/// Same conditions as [`parse_auto`].
pub fn parse_auto_reference_with(
    data: &[u8],
    policy: ev_flate::ExecPolicy,
) -> Result<Profile, FormatError> {
    match detect(data) {
        Format::Pprof => pprof::parse_reference_with(data, policy),
        _ => parse_auto_with(data, policy),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_easyview() {
        let bytes = ev_core::format::to_bytes(&Profile::new("x"));
        assert_eq!(detect(&bytes), Format::EasyView);
    }

    #[test]
    fn detect_gzip_as_pprof() {
        let gz = ev_flate::gzip_compress(b"anything", ev_flate::CompressionLevel::Store);
        assert_eq!(detect(&gz), Format::Pprof);
    }

    #[test]
    fn detect_text_formats() {
        assert_eq!(detect(b"main;a;b 10\nmain;c 5\n"), Format::Collapsed);
        assert_eq!(detect(b"<?xml version=\"1.0\"?><HPCToolkitExperiment/>"), Format::HpcToolkit);
        assert_eq!(
            detect(br#"{"traceEvents": []}"#),
            Format::ChromeTrace
        );
        assert_eq!(
            detect(br#"{"$schema": "https://www.speedscope.app/file-format-schema.json"}"#),
            Format::Speedscope
        );
        assert_eq!(
            detect(br#"{"root_frame": {"function": "main"}}"#),
            Format::Pyinstrument
        );
        assert_eq!(detect(b"garbage that is nothing"), Format::Unknown);
        assert_eq!(detect(b""), Format::Unknown);
    }

    #[test]
    fn detect_perf_script() {
        let text = b"prog 1 1.0: 5 cycles:\n\tdeadbeef f+0x1 (m)\n\n";
        assert_eq!(detect(text), Format::PerfScript);
        let p = parse_auto(text).unwrap();
        assert_eq!(p.meta().profiler, "perf");
    }

    #[test]
    fn parse_auto_roundtrips_native_and_pprof() {
        let mut p = Profile::new("auto");
        let m = p.add_metric(ev_core::MetricDescriptor::new(
            "cpu",
            ev_core::MetricUnit::Count,
            ev_core::MetricKind::Exclusive,
        ));
        p.add_sample(&[ev_core::Frame::function("f")], &[(m, 3.0)]);
        let native = ev_core::format::to_bytes(&p);
        assert_eq!(parse_auto(&native).unwrap(), p);
        let pprof = pprof::write(&p, pprof::WriteOptions::default());
        let q = parse_auto(&pprof).unwrap();
        assert_eq!(q.node_count(), p.node_count());
    }

    #[test]
    fn parse_auto_unknown_errors() {
        assert_eq!(
            parse_auto(b"garbage that is nothing").unwrap_err(),
            FormatError::UnknownFormat
        );
    }

    #[test]
    fn format_display() {
        assert_eq!(Format::Pprof.to_string(), "pprof");
        assert_eq!(Format::HpcToolkit.to_string(), "hpctoolkit");
    }

    mod fuzz {
        use super::super::*;
        use ev_test::prelude::*;

        property! {
            #![cases(64)]

            fn parse_auto_never_panics(data in vec(any_u8(), 0..256)) {
                let _ = parse_auto(&data);
            }

            fn every_converter_survives_arbitrary_text(s in string_printable(0..257)) {
                let _ = collapsed::parse(&s);
                let _ = perf_script::parse(&s);
                let _ = chrome::parse(&s);
                let _ = speedscope::parse(&s);
                let _ = pyinstrument::parse(&s);
                let _ = scalene::parse(&s);
                let _ = hpctoolkit::parse(&s);
            }

            fn pprof_parser_survives_arbitrary_bytes(data in vec(any_u8(), 0..256)) {
                if let Ok(p) = pprof::parse(&data) {
                    p.validate().unwrap();
                }
            }
        }
    }
}

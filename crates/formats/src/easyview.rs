//! The identity binding: EasyView's own binary format.
//!
//! Exists so [`crate::parse_auto`] has a uniform converter per format and
//! so tools that already emit the native format (the paper's "direct
//! output" path: DrCCTProf, JXPerf) go through the same entry point.

use crate::FormatError;
use ev_core::Profile;

/// Parses an EasyView-native profile.
///
/// # Errors
///
/// Propagates format errors from `ev_core::format::from_bytes`.
pub fn parse(data: &[u8]) -> Result<Profile, FormatError> {
    let _span = ev_trace::span("convert.easyview");
    Ok(ev_core::format::from_bytes(data)?)
}

/// Serializes a profile to the native format (alias of
/// `ev_core::format::to_bytes` for symmetry).
pub fn write(profile: &Profile) -> Vec<u8> {
    ev_core::format::to_bytes(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit};

    #[test]
    fn roundtrip_via_converter() {
        let mut p = Profile::new("identity");
        let m = p.add_metric(MetricDescriptor::new(
            "cpu",
            MetricUnit::Count,
            MetricKind::Exclusive,
        ));
        p.add_sample(&[Frame::function("main")], &[(m, 1.0)]);
        let bytes = write(&p);
        assert_eq!(parse(&bytes).unwrap(), p);
    }

    #[test]
    fn garbage_is_schema_error() {
        assert!(parse(b"not a profile").is_err());
    }
}

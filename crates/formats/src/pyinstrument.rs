//! The pyinstrument binding: the JSON session dump of the pyinstrument
//! Python profiler (`--renderer json`), one of the converters the paper
//! lists explicitly (§IV-B).
//!
//! The layout is a recursive `root_frame` object:
//!
//! ```json
//! {"root_frame": {"function": "main", "file_path": "app.py",
//!                 "line_no": 3, "time": 1.25, "children": [...]}}
//! ```
//!
//! `time` is inclusive seconds; the converter derives exclusive time by
//! subtracting children so the stored metric follows EasyView's
//! exclusive-attribution convention.

use crate::FormatError;
use ev_core::{Frame, MetricDescriptor, MetricId, MetricKind, MetricUnit, NodeId, Profile};
use ev_json::Value;

/// Parses a pyinstrument JSON session.
///
/// # Errors
///
/// Fails on malformed JSON or a missing/ill-typed `root_frame`.
pub fn parse(text: &str) -> Result<Profile, FormatError> {
    let _span = ev_trace::span("convert.pyinstrument");
    let root = ev_json::parse(text)?;
    let root_frame = root
        .get("root_frame")
        .ok_or_else(|| FormatError::Schema("missing root_frame".to_owned()))?;

    let mut profile = Profile::new(
        root.get("program")
            .and_then(Value::as_str)
            .unwrap_or("pyinstrument"),
    );
    profile.meta_mut().profiler = "pyinstrument".to_owned();
    if let Some(ts) = root.get("start_time").and_then(Value::as_f64) {
        profile.meta_mut().timestamp_nanos = (ts * 1e9) as u64;
    }
    let time = profile.add_metric(MetricDescriptor::new(
        "time",
        MetricUnit::Nanoseconds,
        MetricKind::Exclusive,
    ));

    let parent = profile.root();
    convert_frame(&mut profile, time, parent, root_frame, 0)?;
    Ok(profile)
}

const MAX_DEPTH: usize = 4096;

/// Converts one frame object, returning its inclusive time (seconds).
fn convert_frame(
    profile: &mut Profile,
    time: MetricId,
    parent: NodeId,
    value: &Value,
    depth: usize,
) -> Result<f64, FormatError> {
    if depth > MAX_DEPTH {
        return Err(FormatError::Schema("frame nesting too deep".to_owned()));
    }
    let function = value
        .get("function")
        .and_then(Value::as_str)
        .ok_or_else(|| FormatError::Schema("frame missing function".to_owned()))?;
    let mut frame = Frame::function(function);
    if let Some(file) = value.get("file_path").and_then(Value::as_str) {
        let line = value
            .get("line_no")
            .and_then(Value::as_i64)
            .unwrap_or(0)
            .max(0) as u32;
        frame = frame.with_source(file, line);
    }
    let node = profile.child(parent, &frame);
    let inclusive = value.get("time").and_then(Value::as_f64).unwrap_or(0.0);

    let mut child_total = 0.0;
    if let Some(children) = value.get("children").and_then(Value::as_array) {
        for child in children {
            child_total += convert_frame(profile, time, node, child, depth + 1)?;
        }
    }
    // Exclusive nanoseconds; clamp tiny negative residue from float noise.
    let exclusive = ((inclusive - child_total) * 1e9).max(0.0);
    profile.add_value(node, time, exclusive);
    Ok(inclusive)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SESSION: &str = r#"{
        "program": "app.py",
        "start_time": 1700000000.5,
        "root_frame": {
            "function": "main", "file_path": "app.py", "line_no": 3, "time": 2.0,
            "children": [
                {"function": "load", "file_path": "io.py", "line_no": 10, "time": 0.5, "children": []},
                {"function": "train", "file_path": "ml.py", "line_no": 50, "time": 1.25,
                 "children": [
                    {"function": "step", "file_path": "ml.py", "line_no": 80, "time": 1.0, "children": []}
                 ]}
            ]
        }
    }"#;

    #[test]
    fn converts_tree_with_exclusive_times() {
        let p = parse(SESSION).unwrap();
        p.validate().unwrap();
        let t = p.metric_by_name("time").unwrap();
        // Total exclusive must equal root inclusive: 2 s.
        assert!((p.total(t) - 2e9).abs() < 1.0);
        let main = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).name == "main")
            .unwrap();
        // main self = 2.0 - 0.5 - 1.25 = 0.25 s.
        assert!((p.value(main, t) - 0.25e9).abs() < 1.0);
        let step = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).name == "step")
            .unwrap();
        assert!((p.value(step, t) - 1e9).abs() < 1.0);
        assert_eq!(p.resolve_frame(step).file, "ml.py");
        assert_eq!(p.resolve_frame(step).line, 80);
        assert_eq!(p.meta().profiler, "pyinstrument");
        assert_eq!(p.meta().name, "app.py");
        assert_eq!(p.meta().timestamp_nanos, 1_700_000_000_500_000_000);
    }

    #[test]
    fn missing_root_frame_is_error() {
        assert!(parse(r#"{"program": "x"}"#).is_err());
        assert!(parse("[]").is_err());
        assert!(parse("{bad json").is_err());
    }

    #[test]
    fn frame_without_function_is_error() {
        assert!(parse(r#"{"root_frame": {"time": 1.0}}"#).is_err());
    }

    #[test]
    fn negative_residue_clamped() {
        // Children report slightly more than the parent (float noise).
        let text = r#"{"root_frame": {"function": "m", "time": 1.0,
            "children": [{"function": "c", "time": 1.0000001, "children": []}]}}"#;
        let p = parse(text).unwrap();
        let t = p.metric_by_name("time").unwrap();
        let m = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).name == "m")
            .unwrap();
        assert_eq!(p.value(m, t), 0.0);
    }
}

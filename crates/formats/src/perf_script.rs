//! The Linux `perf` binding, via `perf script` text output.
//!
//! `perf script` prints one sample header line followed by indented
//! stack frames (leaf first) and a blank line:
//!
//! ```text
//! prog 12345 4001.123456:     250000 cycles:
//!         ffffffff8104f45a do_sys_open+0x1a ([kernel.kallsyms])
//!              55d6e34a1b2c parse_input+0x3c (/usr/bin/prog)
//!              55d6e34a1000 main+0x40 (/usr/bin/prog)
//!
//! ```
//!
//! The converter accumulates one exclusive metric per event name seen
//! (`cycles`, `instructions`, …), attributing the sample period from the
//! header to the leaf of each stack.

use crate::FormatError;
use ev_core::{Frame, MetricDescriptor, MetricId, MetricKind, MetricUnit, Profile};
use std::collections::HashMap;

/// Structural sniff for [`crate::detect`]: a header line ending in
/// `<event>:` followed by an indented hex-address frame line.
pub fn looks_like(text: &str) -> bool {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let Some(header) = lines.next() else {
        return false;
    };
    if header.starts_with(|c: char| c.is_whitespace()) || !header.trim_end().ends_with(':') {
        return false;
    }
    let Some(frame) = lines.next() else {
        return false;
    };
    frame.starts_with(|c: char| c.is_whitespace()) && parse_frame_line(frame).is_some()
}

/// Parses one `perf script` frame line: `ADDR symbol+0xOFF (module)`.
fn parse_frame_line(line: &str) -> Option<Frame> {
    let line = line.trim();
    let (addr_str, rest) = line.split_once(' ')?;
    let address = u64::from_str_radix(addr_str, 16).ok()?;
    // Module is the trailing parenthesized component, if present.
    let (symbol_part, module) = match rest.rfind(" (") {
        Some(i) if rest.ends_with(')') => (&rest[..i], &rest[i + 2..rest.len() - 1]),
        _ => (rest, ""),
    };
    // Strip the +0x offset from the symbol.
    let name = symbol_part
        .rsplit_once("+0x")
        .map(|(n, _)| n)
        .unwrap_or(symbol_part);
    let name = if name.is_empty() || name == "[unknown]" {
        format!("0x{address:x}")
    } else {
        name.to_owned()
    };
    Some(Frame::function(name).with_module(module).with_address(address))
}

/// Parses a sample header: `comm pid [cpu] time: period event:` →
/// (period, event name). Period defaults to 1 when missing.
fn parse_header(line: &str) -> Option<(f64, String)> {
    let line = line.trim_end();
    let line = line.strip_suffix(':')?;
    // The event name is the last whitespace token.
    let (rest, event) = line.rsplit_once(char::is_whitespace)?;
    // The token before it is the period, when numeric.
    let period = rest
        .rsplit_once(char::is_whitespace)
        .and_then(|(_, p)| p.parse::<f64>().ok())
        .unwrap_or(1.0);
    Some((period, event.to_owned()))
}

/// Parses `perf script` output.
///
/// # Errors
///
/// Fails when no samples can be extracted (the input was misdetected).
pub fn parse(text: &str) -> Result<Profile, FormatError> {
    let _span = ev_trace::span("convert.perf_script");
    let mut profile = Profile::new("perf");
    profile.meta_mut().profiler = "perf".to_owned();
    let mut metrics: HashMap<String, MetricId> = HashMap::new();
    let mut samples = 0usize;

    // Leaf-first stack for the sample being accumulated.
    let mut stack: Vec<Frame> = Vec::new();
    let mut current: Option<(f64, MetricId)> = None;

    let flush =
        |profile: &mut Profile, stack: &mut Vec<Frame>, current: &mut Option<(f64, MetricId)>| {
            if let Some((period, metric)) = current.take() {
                if !stack.is_empty() {
                    stack.reverse(); // outermost first
                    profile.add_sample(stack, &[(metric, period)]);
                }
            }
            stack.clear();
        };

    for line in text.lines() {
        if line.trim().is_empty() {
            flush(&mut profile, &mut stack, &mut current);
            continue;
        }
        if !line.starts_with(|c: char| c.is_whitespace()) {
            flush(&mut profile, &mut stack, &mut current);
            if let Some((period, event)) = parse_header(line) {
                let unit = if event.contains("cycles") {
                    MetricUnit::Cycles
                } else {
                    MetricUnit::Count
                };
                let metric = *metrics.entry(event.clone()).or_insert_with(|| {
                    profile.add_metric(MetricDescriptor::new(
                        event.clone(),
                        unit,
                        MetricKind::Exclusive,
                    ))
                });
                current = Some((period, metric));
                samples += 1;
            }
            continue;
        }
        if current.is_some() {
            if let Some(frame) = parse_frame_line(line) {
                stack.push(frame);
            }
        }
    }
    flush(&mut profile, &mut stack, &mut current);

    if samples == 0 {
        return Err(FormatError::Schema(
            "no perf samples found in input".to_owned(),
        ));
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
prog 12345 4001.123456:     250000 cycles:
\tffffffff8104f45a do_sys_open+0x1a ([kernel.kallsyms])
\t    55d6e34a1b2c parse_input+0x3c (/usr/bin/prog)
\t    55d6e34a1000 main+0x40 (/usr/bin/prog)

prog 12345 4001.133456:     250000 cycles:
\t    55d6e34a2fff compute+0x8ff (/usr/bin/prog)
\t    55d6e34a1000 main+0x40 (/usr/bin/prog)

";

    #[test]
    fn sniffing() {
        assert!(looks_like(SAMPLE));
        assert!(!looks_like("main;a 1\n"));
        assert!(!looks_like(""));
    }

    #[test]
    fn frame_line_parsing() {
        let f = parse_frame_line("\t    55d6e34a1b2c parse_input+0x3c (/usr/bin/prog)").unwrap();
        assert_eq!(f.name, "parse_input");
        assert_eq!(f.module, "/usr/bin/prog");
        assert_eq!(f.address, 0x55d6e34a1b2c);

        let f = parse_frame_line("\tffffffff8104f45a [unknown] ([kernel.kallsyms])").unwrap();
        assert_eq!(f.name, "0xffffffff8104f45a");

        assert!(parse_frame_line("not hex at all").is_none());
    }

    #[test]
    fn header_parsing() {
        let (period, event) = parse_header("prog 12345 4001.123456:     250000 cycles:").unwrap();
        assert_eq!(period, 250000.0);
        assert_eq!(event, "cycles");
        // Headers without an explicit period default to 1.
        let (period, event) = parse_header("prog 1 1.0: instructions:").unwrap();
        assert_eq!(period, 1.0);
        assert_eq!(event, "instructions");
        assert!(parse_header("no trailing colon").is_none());
    }

    #[test]
    fn parse_builds_cct() {
        let p = parse(SAMPLE).unwrap();
        p.validate().unwrap();
        // root, main, parse_input, do_sys_open, compute
        assert_eq!(p.node_count(), 5);
        let cycles = p.metric_by_name("cycles").unwrap();
        assert_eq!(p.total(cycles), 500_000.0);
        assert_eq!(p.metric(cycles).unit, MetricUnit::Cycles);
        // The leaf frame do_sys_open sits under parse_input under main.
        let leaf = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).name == "do_sys_open")
            .unwrap();
        let mid = p.node(leaf).parent().unwrap();
        assert_eq!(p.resolve_frame(mid).name, "parse_input");
    }

    #[test]
    fn trailing_sample_without_blank_line_flushes() {
        let text = "p 1 1.0: 5 cycles:\n\tdeadbeef f+0x1 (m)\n";
        let p = parse(text).unwrap();
        let m = p.metric_by_name("cycles").unwrap();
        assert_eq!(p.total(m), 5.0);
    }

    #[test]
    fn multiple_events_make_multiple_metrics() {
        let text = "\
p 1 1.0: 5 cycles:
\tdeadbeef f+0x1 (m)

p 1 1.1: 9 instructions:
\tdeadbeef f+0x1 (m)

";
        let p = parse(text).unwrap();
        assert_eq!(p.metrics().len(), 2);
        assert_eq!(p.total(p.metric_by_name("instructions").unwrap()), 9.0);
    }

    #[test]
    fn no_samples_is_error() {
        assert!(parse("just\nnoise\n").is_err());
    }
}

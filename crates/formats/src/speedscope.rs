//! The speedscope binding: the JSON file format of
//! <https://www.speedscope.app>, itself a common export target for many
//! profilers (py-spy, rbspy, Hermes, pprof conversions…).
//!
//! A file holds a `shared.frames` array and one or more profiles, either
//! `"type": "sampled"` (a `samples` array of frame-index stacks plus
//! `weights`) or `"type": "evented"` (open/close frame events). Both are
//! supported; all profiles in the file land in one CCT under per-profile
//! thread frames.

use crate::FormatError;
use ev_core::{Frame, MetricDescriptor, MetricId, MetricKind, MetricUnit, Profile};
use ev_json::Value;

fn frame_from_shared(value: &Value) -> Frame {
    let name = value
        .get("name")
        .and_then(Value::as_str)
        .unwrap_or("(anonymous)");
    let mut frame = Frame::function(name);
    if let Some(file) = value.get("file").and_then(Value::as_str) {
        let line = value
            .get("line")
            .and_then(Value::as_i64)
            .unwrap_or(0)
            .max(0) as u32;
        frame = frame.with_source(file, line);
    }
    frame
}

fn unit_from_str(unit: Option<&str>) -> MetricUnit {
    match unit {
        Some("nanoseconds") | Some("microseconds") | Some("milliseconds") | Some("seconds") => {
            MetricUnit::Nanoseconds
        }
        Some("bytes") => MetricUnit::Bytes,
        _ => MetricUnit::Count,
    }
}

fn unit_scale(unit: Option<&str>) -> f64 {
    match unit {
        Some("seconds") => 1e9,
        Some("milliseconds") => 1e6,
        Some("microseconds") => 1e3,
        _ => 1.0,
    }
}

/// Parses a speedscope file.
///
/// # Errors
///
/// Fails on malformed JSON, missing `shared.frames`/`profiles`,
/// out-of-range frame indices, or unbalanced evented profiles.
pub fn parse(text: &str) -> Result<Profile, FormatError> {
    let _span = ev_trace::span("convert.speedscope");
    let root = ev_json::parse(text)?;
    let frames: Vec<Frame> = root
        .get("shared")
        .and_then(|s| s.get("frames"))
        .and_then(Value::as_array)
        .ok_or_else(|| FormatError::Schema("missing shared.frames".to_owned()))?
        .iter()
        .map(frame_from_shared)
        .collect();
    let profiles = root
        .get("profiles")
        .and_then(Value::as_array)
        .ok_or_else(|| FormatError::Schema("missing profiles".to_owned()))?;

    let mut out = Profile::new(
        root.get("name")
            .and_then(Value::as_str)
            .unwrap_or("speedscope"),
    );
    out.meta_mut().profiler = "speedscope".to_owned();

    let frame_at = |idx: i64| -> Result<&Frame, FormatError> {
        frames
            .get(idx.max(0) as usize)
            .ok_or_else(|| FormatError::Schema(format!("frame index {idx} out of range")))
    };

    for (pi, prof) in profiles.iter().enumerate() {
        let ty = prof.get("type").and_then(Value::as_str).unwrap_or("");
        let name = prof
            .get("name")
            .and_then(Value::as_str)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("profile {pi}"));
        let unit = prof.get("unit").and_then(Value::as_str);
        let metric: MetricId = match out.metric_by_name("weight") {
            Some(m) => m,
            None => out.add_metric(MetricDescriptor::new(
                "weight",
                unit_from_str(unit),
                MetricKind::Exclusive,
            )),
        };
        let scale = unit_scale(unit);
        let thread = out.child(out.root(), &Frame::thread(&name));

        match ty {
            "sampled" => {
                let samples = prof
                    .get("samples")
                    .and_then(Value::as_array)
                    .ok_or_else(|| FormatError::Schema("sampled profile missing samples".to_owned()))?;
                let weights = prof
                    .get("weights")
                    .and_then(Value::as_array)
                    .ok_or_else(|| FormatError::Schema("sampled profile missing weights".to_owned()))?;
                if samples.len() != weights.len() {
                    return Err(FormatError::Schema(
                        "samples/weights length mismatch".to_owned(),
                    ));
                }
                for (stack, weight) in samples.iter().zip(weights) {
                    let stack = stack
                        .as_array()
                        .ok_or_else(|| FormatError::Schema("sample is not an array".to_owned()))?;
                    let weight = weight.as_f64().unwrap_or(0.0) * scale;
                    let mut node = thread;
                    // speedscope stacks are root-first.
                    for idx in stack {
                        let idx = idx
                            .as_i64()
                            .ok_or_else(|| FormatError::Schema("frame index not an int".to_owned()))?;
                        let frame = frame_at(idx)?.clone();
                        node = out.child(node, &frame);
                    }
                    out.add_value(node, metric, weight);
                }
            }
            "evented" => {
                let events = prof
                    .get("events")
                    .and_then(Value::as_array)
                    .ok_or_else(|| FormatError::Schema("evented profile missing events".to_owned()))?;
                // Stack of (node, open timestamp, child time so far).
                let mut stack: Vec<(ev_core::NodeId, f64, f64)> = Vec::new();
                for event in events {
                    let ty = event.get("type").and_then(Value::as_str).unwrap_or("");
                    let at = event.get("at").and_then(Value::as_f64).unwrap_or(0.0);
                    match ty {
                        "O" => {
                            let idx = event
                                .get("frame")
                                .and_then(Value::as_i64)
                                .ok_or_else(|| FormatError::Schema("O event missing frame".to_owned()))?;
                            let frame = frame_at(idx)?.clone();
                            let parent = stack.last().map_or(thread, |&(n, _, _)| n);
                            let node = out.child(parent, &frame);
                            stack.push((node, at, 0.0));
                        }
                        "C" => {
                            let (node, opened, child_time) = stack.pop().ok_or_else(|| {
                                FormatError::Schema("C event without matching O".to_owned())
                            })?;
                            let total = at - opened;
                            out.add_value(node, metric, (total - child_time) * scale);
                            if let Some(top) = stack.last_mut() {
                                top.2 += total;
                            }
                        }
                        _ => {}
                    }
                }
                if !stack.is_empty() {
                    return Err(FormatError::Schema(format!(
                        "profile {name:?}: {} unclosed O events",
                        stack.len()
                    )));
                }
            }
            other => {
                return Err(FormatError::Schema(format!(
                    "unsupported profile type {other:?}"
                )))
            }
        }
    }
    Ok(out)
}

/// Serializes a profile as a single speedscope "sampled" profile over
/// the first metric: one sample per valued node, stacks root-first. The
/// counterpart of [`parse`], used to hand EasyView data to
/// speedscope-based tooling.
pub fn write(profile: &Profile) -> String {
    use ev_core::NodeId;
    let mut frames: Vec<Value> = Vec::new();
    let mut frame_index: std::collections::HashMap<(String, String, u32), i64> =
        std::collections::HashMap::new();
    let metric = profile
        .metrics()
        .first()
        .and_then(|m| profile.metric_by_name(&m.name));

    let mut samples: Vec<Value> = Vec::new();
    let mut weights: Vec<Value> = Vec::new();
    if let Some(metric) = metric {
        for node in profile.node_ids() {
            let value = profile.value(node, metric);
            if value == 0.0 || node == NodeId::ROOT {
                continue;
            }
            let mut stack: Vec<Value> = Vec::new();
            for &step in &profile.path(node) {
                let f = profile.resolve_frame(step);
                let key = (f.name.clone(), f.file.clone(), f.line);
                let idx = *frame_index.entry(key).or_insert_with(|| {
                    let idx = frames.len() as i64;
                    let mut obj = vec![("name", Value::from(f.name.clone()))];
                    if !f.file.is_empty() {
                        obj.push(("file", Value::from(f.file.clone())));
                        obj.push(("line", Value::Int(i64::from(f.line))));
                    }
                    frames.push(Value::object(obj));
                    idx
                });
                stack.push(Value::Int(idx));
            }
            samples.push(Value::Array(stack));
            weights.push(Value::Float(value));
        }
    }

    let unit = match metric.map(|m| profile.metric(m).unit) {
        Some(ev_core::MetricUnit::Nanoseconds) => "nanoseconds",
        Some(ev_core::MetricUnit::Bytes) => "bytes",
        _ => "none",
    };
    let doc = Value::object([
        (
            "$schema",
            Value::from("https://www.speedscope.app/file-format-schema.json"),
        ),
        ("name", Value::from(profile.meta().name.clone())),
        ("shared", Value::object([("frames", Value::Array(frames))])),
        (
            "profiles",
            Value::Array(vec![Value::object([
                ("type", Value::from("sampled")),
                ("name", Value::from(profile.meta().name.clone())),
                ("unit", Value::from(unit)),
                ("samples", Value::Array(samples)),
                ("weights", Value::Array(weights)),
            ])]),
        ),
    ]);
    ev_json::to_string(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLED: &str = r#"{
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": "example",
        "shared": {"frames": [
            {"name": "main", "file": "main.py", "line": 1},
            {"name": "work"},
            {"name": "idle"}
        ]},
        "profiles": [{
            "type": "sampled", "name": "thread 0", "unit": "milliseconds",
            "samples": [[0, 1], [0, 1], [0, 2]],
            "weights": [10, 5, 1]
        }]
    }"#;

    #[test]
    fn sampled_profiles() {
        let p = parse(SAMPLED).unwrap();
        p.validate().unwrap();
        let w = p.metric_by_name("weight").unwrap();
        // 16 ms = 16e6 ns.
        assert_eq!(p.total(w), 16e6);
        let work = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).name == "work")
            .unwrap();
        assert_eq!(p.value(work, w), 15e6);
        let main = p.node(work).parent().unwrap();
        assert_eq!(p.resolve_frame(main).name, "main");
        assert_eq!(p.resolve_frame(main).file, "main.py");
    }

    #[test]
    fn evented_profiles() {
        let text = r#"{
            "shared": {"frames": [{"name": "a"}, {"name": "b"}]},
            "profiles": [{
                "type": "evented", "name": "t", "unit": "microseconds",
                "events": [
                    {"type": "O", "frame": 0, "at": 0},
                    {"type": "O", "frame": 1, "at": 10},
                    {"type": "C", "frame": 1, "at": 30},
                    {"type": "C", "frame": 0, "at": 100}
                ]
            }]
        }"#;
        let p = parse(text).unwrap();
        let w = p.metric_by_name("weight").unwrap();
        let a = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).name == "a")
            .unwrap();
        let b = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).name == "b")
            .unwrap();
        // a self: (100 - 0) - 20 = 80 µs = 80_000 ns; b: 20 µs.
        assert_eq!(p.value(a, w), 80_000.0);
        assert_eq!(p.value(b, w), 20_000.0);
        assert_eq!(p.node(b).parent(), Some(a));
    }

    #[test]
    fn errors() {
        assert!(parse("{}").is_err());
        assert!(parse(r#"{"shared": {"frames": []}, "profiles": [{"type": "weird"}]}"#).is_err());
        // Frame index out of range.
        let bad = r#"{
            "shared": {"frames": [{"name": "a"}]},
            "profiles": [{"type": "sampled", "samples": [[5]], "weights": [1]}]
        }"#;
        assert!(parse(bad).is_err());
        // Unbalanced evented.
        let bad = r#"{
            "shared": {"frames": [{"name": "a"}]},
            "profiles": [{"type": "evented", "events": [{"type": "O", "frame": 0, "at": 0}]}]
        }"#;
        assert!(parse(bad).is_err());
        // Length mismatch.
        let bad = r#"{
            "shared": {"frames": [{"name": "a"}]},
            "profiles": [{"type": "sampled", "samples": [[0]], "weights": [1, 2]}]
        }"#;
        assert!(parse(bad).is_err());
    }

    #[test]
    fn multiple_profiles_share_one_metric() {
        let text = r#"{
            "shared": {"frames": [{"name": "a"}]},
            "profiles": [
                {"type": "sampled", "name": "t1", "samples": [[0]], "weights": [1]},
                {"type": "sampled", "name": "t2", "samples": [[0]], "weights": [2]}
            ]
        }"#;
        let p = parse(text).unwrap();
        assert_eq!(p.metrics().len(), 1);
        let w = p.metric_by_name("weight").unwrap();
        assert_eq!(p.total(w), 3.0);
        assert_eq!(p.node(p.root()).children().len(), 2);
    }

    #[test]
    fn write_parse_roundtrip_conserves_totals() {
        use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit, Profile};
        let mut p = Profile::new("export");
        let m = p.add_metric(MetricDescriptor::new(
            "cpu",
            MetricUnit::Nanoseconds,
            MetricKind::Exclusive,
        ));
        p.add_sample(
            &[Frame::function("main").with_source("m.rs", 1), Frame::function("work")],
            &[(m, 700.0)],
        );
        p.add_sample(&[Frame::function("main").with_source("m.rs", 1)], &[(m, 300.0)]);
        let json = write(&p);
        assert!(crate::detect(json.as_bytes()) == crate::Format::Speedscope);
        let q = parse(&json).unwrap();
        q.validate().unwrap();
        let w = q.metric_by_name("weight").unwrap();
        assert_eq!(q.total(w), 1000.0);
        let work = q
            .node_ids()
            .find(|&id| q.resolve_frame(id).name == "work")
            .unwrap();
        assert_eq!(q.value(work, w), 700.0);
        // Source mapping survives.
        let main = q.node(work).parent().unwrap();
        assert_eq!(q.resolve_frame(main).file, "m.rs");
    }

    #[test]
    fn write_empty_profile_is_valid() {
        let p = ev_core::Profile::new("empty");
        let json = write(&p);
        // No metric -> empty but well-formed document.
        assert!(ev_json::parse(&json).is_ok());
    }
}

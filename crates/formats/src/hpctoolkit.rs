//! The HPCToolkit binding: `experiment.xml` call-path profile databases
//! (paper §IV-B; used in the HPC case study of §VII-C2, Figs. 6–7).
//!
//! An experiment database describes the CCT with nested elements —
//! `PF` (procedure frame), `C` (call site), `L` (loop), `S` (statement) —
//! whose `n`/`lm`/`f` attributes index the procedure, load-module, and
//! file tables in the header, and `M` elements carrying metric values.
//! The converter maps:
//!
//! * `PF` → function frames (with module/file/line code mapping),
//! * `L`  → [`ContextKind::Loop`] frames,
//! * `S`  → [`ContextKind::Line`] frames,
//! * `C`  → transparent (the nested callee attaches to the enclosing
//!   frame; the call-site line refines the parent's attribution),
//! * `M`  → metric values on the innermost frame.

use crate::FormatError;
use ev_core::{ContextKind, Frame, MetricDescriptor, MetricId, MetricKind, MetricUnit, NodeId, Profile};
use ev_xml::{Event, PullParser, StartTag};
use std::collections::HashMap;

#[derive(Debug, Default)]
struct Tables {
    procedures: HashMap<u64, String>,
    files: HashMap<u64, String>,
    modules: HashMap<u64, String>,
    /// experiment metric id → (profile metric, value scale)
    metrics: HashMap<u64, (MetricId, f64)>,
}

/// Parses an HPCToolkit `experiment.xml` document.
///
/// Metric names containing `sec` are interpreted as seconds and scaled
/// to nanoseconds; `t="inclusive"` metrics keep
/// [`MetricKind::Inclusive`].
///
/// # Errors
///
/// Fails on malformed XML or dangling table references.
pub fn parse(text: &str) -> Result<Profile, FormatError> {
    let _span = ev_trace::span("convert.hpctoolkit");
    let mut parser = PullParser::new(text);
    let mut profile = Profile::new("hpctoolkit");
    profile.meta_mut().profiler = "hpctoolkit".to_owned();
    let mut tables = Tables::default();

    // Stack of CCT nodes for open structural elements; `None` entries
    // are transparent elements (C and sections) that pop without a node.
    let mut stack: Vec<Option<NodeId>> = Vec::new();

    let current = |stack: &[Option<NodeId>]| -> NodeId {
        stack
            .iter()
            .rev()
            .find_map(|&n| n)
            .unwrap_or(NodeId::ROOT)
    };

    while let Some(event) = parser.next_event()? {
        match event {
            Event::Start(tag) => match tag.name.as_str() {
                "SecCallPathProfile" => {
                    if let Some(name) = tag.attr("n") {
                        profile.meta_mut().name = name.to_owned();
                    }
                    stack.push(None);
                }
                "Metric" => {
                    let id = require_u64(&tag, "i")?;
                    let name = tag.attr("n").unwrap_or("metric").to_owned();
                    let inclusive = tag.attr("t") == Some("inclusive");
                    let (unit, scale) = if name.to_lowercase().contains("sec") {
                        (MetricUnit::Nanoseconds, 1e9)
                    } else {
                        (MetricUnit::Count, 1.0)
                    };
                    let metric = profile.add_metric(MetricDescriptor::new(
                        name,
                        unit,
                        if inclusive {
                            MetricKind::Inclusive
                        } else {
                            MetricKind::Exclusive
                        },
                    ));
                    tables.metrics.insert(id, (metric, scale));
                    stack.push(None);
                }
                "Procedure" => {
                    insert_table(&mut tables.procedures, &tag)?;
                    stack.push(None);
                }
                "File" => {
                    insert_table(&mut tables.files, &tag)?;
                    stack.push(None);
                }
                "LoadModule" => {
                    insert_table(&mut tables.modules, &tag)?;
                    stack.push(None);
                }
                "PF" | "Pr" => {
                    let name = match tag.attr_u64("n") {
                        Some(id) => tables
                            .procedures
                            .get(&id)
                            .cloned()
                            .unwrap_or_else(|| format!("proc-{id}")),
                        None => tag.attr("n").unwrap_or("(unknown)").to_owned(),
                    };
                    let mut frame = Frame::function(name);
                    if let Some(lm) = tag.attr_u64("lm") {
                        if let Some(module) = tables.modules.get(&lm) {
                            frame = frame.with_module(module.clone());
                        }
                    }
                    let line = tag.attr_u64("l").unwrap_or(0) as u32;
                    if let Some(f) = tag.attr_u64("f") {
                        if let Some(file) = tables.files.get(&f) {
                            frame = frame.with_source(file.clone(), line);
                        }
                    }
                    let node = profile.child(current(&stack), &frame);
                    stack.push(Some(node));
                }
                "L" => {
                    let line = tag.attr_u64("l").unwrap_or(0) as u32;
                    let file = tag
                        .attr_u64("f")
                        .and_then(|f| tables.files.get(&f).cloned())
                        .unwrap_or_default();
                    let name = if file.is_empty() {
                        format!("loop@{line}")
                    } else {
                        format!("loop@{file}:{line}")
                    };
                    let mut frame = Frame::new(ContextKind::Loop, name);
                    if !file.is_empty() {
                        frame = frame.with_source(file, line);
                    }
                    let node = profile.child(current(&stack), &frame);
                    stack.push(Some(node));
                }
                "S" => {
                    let line = tag.attr_u64("l").unwrap_or(0) as u32;
                    // Statements inherit the file of the enclosing frame.
                    let parent = current(&stack);
                    let file = profile.resolve_frame(parent).file;
                    let mut frame =
                        Frame::new(ContextKind::Line, format!("line {line}"));
                    if !file.is_empty() {
                        frame = frame.with_source(file, line);
                    }
                    let node = profile.child(parent, &frame);
                    stack.push(Some(node));
                }
                "M" => {
                    let id = require_u64(&tag, "n")?;
                    let value = tag.attr_f64("v").ok_or_else(|| {
                        FormatError::Schema("M element missing v attribute".to_owned())
                    })?;
                    let &(metric, scale) = tables.metrics.get(&id).ok_or_else(|| {
                        FormatError::Schema(format!("M references unknown metric {id}"))
                    })?;
                    profile.add_value(current(&stack), metric, value * scale);
                    stack.push(None);
                }
                _ => stack.push(None),
            },
            Event::End(_) => {
                stack.pop();
            }
            Event::Text(_) => {}
        }
    }
    Ok(profile)
}

fn require_u64(tag: &StartTag, attr: &str) -> Result<u64, FormatError> {
    tag.attr_u64(attr).ok_or_else(|| {
        FormatError::Schema(format!(
            "<{}> missing numeric attribute {attr:?}",
            tag.name
        ))
    })
}

fn insert_table(table: &mut HashMap<u64, String>, tag: &StartTag) -> Result<(), FormatError> {
    let id = require_u64(tag, "i")?;
    let name = tag.attr("n").unwrap_or("").to_owned();
    table.insert(id, name);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXPERIMENT: &str = r#"<?xml version="1.0"?>
<HPCToolkitExperiment version="2.2">
  <SecCallPathProfile i="0" n="lulesh2.0">
    <SecHeader>
      <MetricTable>
        <Metric i="0" n="CPUTIME (sec):Sum (I)" t="inclusive"/>
        <Metric i="1" n="CPUTIME (sec):Sum (E)" t="exclusive"/>
      </MetricTable>
      <LoadModuleTable>
        <LoadModule i="2" n="/usr/lib/libc-2.31.so"/>
        <LoadModule i="3" n="lulesh2.0"/>
      </LoadModuleTable>
      <FileTable>
        <File i="6" n="lulesh.cc"/>
      </FileTable>
      <ProcedureTable>
        <Procedure i="648" n="main"/>
        <Procedure i="649" n="CalcVolumeForceForElems"/>
        <Procedure i="650" n="brk"/>
      </ProcedureTable>
    </SecHeader>
    <SecCallPathProfileData>
      <PF i="2" l="2700" lm="3" f="6" n="648">
        <C i="5" l="2756">
          <PF i="6" l="1288" lm="3" f="6" n="649">
            <L i="7" l="1290" f="6">
              <S i="8" l="1299"><M n="1" v="2.5"/></S>
            </L>
          </PF>
        </C>
        <C i="9" l="2760">
          <PF i="10" l="0" lm="2" n="650">
            <S i="11" l="0"><M n="1" v="7.5"/></S>
          </PF>
        </C>
      </PF>
    </SecCallPathProfileData>
  </SecCallPathProfile>
</HPCToolkitExperiment>"#;

    #[test]
    fn converts_experiment_database() {
        let p = parse(EXPERIMENT).unwrap();
        p.validate().unwrap();
        assert_eq!(p.meta().name, "lulesh2.0");
        assert_eq!(p.metrics().len(), 2);
        let excl = p.metric_by_name("CPUTIME (sec):Sum (E)").unwrap();
        assert_eq!(p.metric(excl).kind, MetricKind::Exclusive);
        assert_eq!(p.metric(excl).unit, MetricUnit::Nanoseconds);
        // 10 seconds total, scaled to ns.
        assert!((p.total(excl) - 10e9).abs() < 1.0);
    }

    #[test]
    fn call_structure_and_code_mapping() {
        let p = parse(EXPERIMENT).unwrap();
        let brk = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).name == "brk")
            .unwrap();
        assert_eq!(p.resolve_frame(brk).module, "/usr/lib/libc-2.31.so");
        // brk's parent is main (C elements are transparent).
        let parent = p.node(brk).parent().unwrap();
        assert_eq!(p.resolve_frame(parent).name, "main");
        assert_eq!(p.resolve_frame(parent).file, "lulesh.cc");
        assert_eq!(p.resolve_frame(parent).line, 2700);
    }

    #[test]
    fn loops_and_statements_materialize() {
        let p = parse(EXPERIMENT).unwrap();
        let l = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).kind == ContextKind::Loop)
            .unwrap();
        assert_eq!(p.resolve_frame(l).name, "loop@lulesh.cc:1290");
        let s = p
            .node_ids()
            .find(|&id| {
                p.resolve_frame(id).kind == ContextKind::Line
                    && p.resolve_frame(id).line == 1299
            })
            .unwrap();
        // The statement inherits the loop's file.
        assert_eq!(p.resolve_frame(s).file, "lulesh.cc");
        let excl = p.metric_by_name("CPUTIME (sec):Sum (E)").unwrap();
        assert!((p.value(s, excl) - 2.5e9).abs() < 1.0);
    }

    #[test]
    fn dangling_metric_reference_is_error() {
        let doc = r#"<HPCToolkitExperiment><SecCallPathProfileData>
            <PF i="1" n="f"><M n="42" v="1.0"/></PF>
        </SecCallPathProfileData></HPCToolkitExperiment>"#;
        assert!(parse(doc).is_err());
    }

    #[test]
    fn unknown_procedure_id_synthesizes_name() {
        let doc = r#"<HPCToolkitExperiment>
          <MetricTable><Metric i="0" n="m" t="exclusive"/></MetricTable>
          <SecCallPathProfileData>
            <PF i="1" n="999"><M n="0" v="1.0"/></PF>
        </SecCallPathProfileData></HPCToolkitExperiment>"#;
        let p = parse(doc).unwrap();
        assert!(p.node_ids().any(|id| p.resolve_frame(id).name == "proc-999"));
    }

    #[test]
    fn malformed_xml_is_container_error() {
        assert!(matches!(
            parse("<HPCToolkitExperiment><PF></HPCToolkitExperiment>"),
            Err(FormatError::Container(_))
        ));
    }
}

//! The Scalene binding: the JSON output of the Scalene Python
//! CPU+memory profiler (paper §IV-B lists Scalene among the supported
//! converters).
//!
//! Scalene reports *line-granularity* data per file rather than call
//! paths:
//!
//! ```json
//! {"files": {"app.py": {"lines": [
//!     {"lineno": 12, "n_cpu_percent_python": 31.5,
//!      "n_cpu_percent_c": 2.0, "n_malloc_mb": 10.5, ...}
//! ]}}, "elapsed_time_sec": 12.5}
//! ```
//!
//! The converter maps each file to a [`ContextKind::Function`]-like file
//! frame and each line to a [`ContextKind::Line`] child, exercising the
//! representation's sub-function granularity (paper §IV-A).

use crate::FormatError;
use ev_core::{ContextKind, Frame, MetricDescriptor, MetricKind, MetricUnit, Profile};
use ev_json::Value;

/// Parses a Scalene JSON profile.
///
/// Percentages are converted to nanoseconds against `elapsed_time_sec`
/// when present (so totals match wall time), and kept as ratios
/// otherwise. Memory is reported in bytes.
///
/// # Errors
///
/// Fails on malformed JSON or a missing `files` object.
pub fn parse(text: &str) -> Result<Profile, FormatError> {
    let _span = ev_trace::span("convert.scalene");
    let root = ev_json::parse(text)?;
    let files = root
        .get("files")
        .and_then(Value::as_object)
        .ok_or_else(|| FormatError::Schema("missing files object".to_owned()))?;

    let elapsed_sec = root
        .get("elapsed_time_sec")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);

    let mut profile = Profile::new("scalene");
    profile.meta_mut().profiler = "scalene".to_owned();

    let (cpu_python, cpu_native, malloc) = if elapsed_sec > 0.0 {
        (
            profile.add_metric(MetricDescriptor::new(
                "cpu_python",
                MetricUnit::Nanoseconds,
                MetricKind::Exclusive,
            )),
            profile.add_metric(MetricDescriptor::new(
                "cpu_native",
                MetricUnit::Nanoseconds,
                MetricKind::Exclusive,
            )),
            profile.add_metric(MetricDescriptor::new(
                "malloc",
                MetricUnit::Bytes,
                MetricKind::Exclusive,
            )),
        )
    } else {
        (
            profile.add_metric(MetricDescriptor::new(
                "cpu_python",
                MetricUnit::Ratio,
                MetricKind::Exclusive,
            )),
            profile.add_metric(MetricDescriptor::new(
                "cpu_native",
                MetricUnit::Ratio,
                MetricKind::Exclusive,
            )),
            profile.add_metric(MetricDescriptor::new(
                "malloc",
                MetricUnit::Bytes,
                MetricKind::Exclusive,
            )),
        )
    };
    let cpu_scale = if elapsed_sec > 0.0 {
        elapsed_sec * 1e9 / 100.0
    } else {
        0.01
    };

    for (path, file) in files {
        let Some(lines) = file.get("lines").and_then(Value::as_array) else {
            continue;
        };
        let file_node = profile.child(
            profile.root(),
            &Frame::function(path.clone()).with_source(path.clone(), 0),
        );
        for line in lines {
            let lineno = line
                .get("lineno")
                .and_then(Value::as_i64)
                .ok_or_else(|| FormatError::Schema("line missing lineno".to_owned()))?
                .max(0) as u32;
            let py = line
                .get("n_cpu_percent_python")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            let native = line
                .get("n_cpu_percent_c")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            let mb = line.get("n_malloc_mb").and_then(Value::as_f64).unwrap_or(0.0);
            if py == 0.0 && native == 0.0 && mb == 0.0 {
                continue;
            }
            let node = profile.child(
                file_node,
                &Frame::new(ContextKind::Line, format!("{path}:{lineno}"))
                    .with_source(path.clone(), lineno),
            );
            if py != 0.0 {
                profile.add_value(node, cpu_python, py * cpu_scale);
            }
            if native != 0.0 {
                profile.add_value(node, cpu_native, native * cpu_scale);
            }
            if mb != 0.0 {
                profile.add_value(node, malloc, mb * 1024.0 * 1024.0);
            }
        }
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALENE: &str = r#"{
        "elapsed_time_sec": 10.0,
        "files": {
            "app.py": {"lines": [
                {"lineno": 12, "n_cpu_percent_python": 40.0, "n_cpu_percent_c": 10.0, "n_malloc_mb": 2.0},
                {"lineno": 30, "n_cpu_percent_python": 0.0, "n_cpu_percent_c": 0.0, "n_malloc_mb": 0.0},
                {"lineno": 31, "n_cpu_percent_python": 5.0}
            ]},
            "util.py": {"lines": [
                {"lineno": 4, "n_cpu_percent_python": 45.0}
            ]}
        }
    }"#;

    #[test]
    fn converts_lines_to_contexts() {
        let p = parse(SCALENE).unwrap();
        p.validate().unwrap();
        // root + 2 file nodes + 3 nonzero line nodes.
        assert_eq!(p.node_count(), 6);
        let py = p.metric_by_name("cpu_python").unwrap();
        // 90% of 10 s = 9e9 ns.
        assert!((p.total(py) - 9e9).abs() < 1.0);
        let line12 = p
            .node_ids()
            .find(|&id| p.resolve_frame(id).name == "app.py:12")
            .unwrap();
        assert_eq!(p.resolve_frame(line12).kind, ContextKind::Line);
        assert_eq!(p.resolve_frame(line12).line, 12);
        let malloc = p.metric_by_name("malloc").unwrap();
        assert_eq!(p.value(line12, malloc), 2.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn zero_lines_elided() {
        let p = parse(SCALENE).unwrap();
        assert!(!p.node_ids().any(|id| p.resolve_frame(id).name == "app.py:30"));
    }

    #[test]
    fn without_elapsed_time_uses_ratios() {
        let text = r#"{"files": {"a.py": {"lines": [
            {"lineno": 1, "n_cpu_percent_python": 50.0}
        ]}}}"#;
        let p = parse(text).unwrap();
        let py = p.metric_by_name("cpu_python").unwrap();
        assert_eq!(p.metric(py).unit, MetricUnit::Ratio);
        assert_eq!(p.total(py), 0.5);
    }

    #[test]
    fn errors() {
        assert!(parse(r#"{"nofiles": 1}"#).is_err());
        assert!(parse("[1,2]").is_err());
        assert!(
            parse(r#"{"files": {"a.py": {"lines": [{"n_cpu_percent_python": 1.0}]}}}"#).is_err(),
            "line without lineno"
        );
    }
}

//! The pprof binding: Google's `profile.proto`, the de-facto profile
//! format for Go (and the container `perf_to_profile` and Cloud Profiler
//! emit).
//!
//! The paper calls pprof's format "a subset of EasyView representation in
//! Protocol Buffer" (§VII-A); this module implements both directions —
//! parsing pprof files into the generic representation (the hot path of
//! the Fig. 5 response-time experiment) and writing them back out (used
//! by `ev-gen` to fabricate size-calibrated benchmark inputs).
//!
//! Field numbers below follow `github.com/google/pprof/proto/profile.proto`
//! exactly, so real pprof files are accepted byte-for-byte. Files may be
//! raw protobuf or gzip members (Go always gzips).

use crate::FormatError;
use ev_core::{ContextKind, FrameRef, MetricDescriptor, MetricId, MetricKind, MetricUnit, Profile, StringId};
use ev_flate::{gzip_compress, gzip_decompress_with, is_gzip, CompressionLevel, ExecPolicy};
use ev_wire::{Reader, Writer};
use ev_core::fast_hash::FxHashMap;
use std::collections::HashMap;

/// One decoded `Location` message.
#[derive(Debug, Default, Clone)]
struct Location {
    id: u64,
    mapping_id: u64,
    address: u64,
    /// Innermost (leaf-most inline frame) first, per the spec.
    lines: Vec<Line>,
}

#[derive(Debug, Default, Clone, Copy)]
struct Line {
    function_id: u64,
    line: i64,
}

/// One decoded `Function` message (string-table indices).
#[derive(Debug, Default, Clone, Copy)]
struct Function {
    id: u64,
    name: i64,
    filename: i64,
}

/// One decoded `Mapping` message (string-table indices).
#[derive(Debug, Default, Clone, Copy)]
struct Mapping {
    id: u64,
    filename: i64,
}

#[derive(Debug, Default, Clone, Copy)]
struct ValueType {
    r#type: i64,
    unit: i64,
}

/// Maps a pprof unit string to an EasyView metric unit.
fn unit_from_str(unit: &str) -> MetricUnit {
    match unit {
        "nanoseconds" => MetricUnit::Nanoseconds,
        "bytes" => MetricUnit::Bytes,
        "cycles" => MetricUnit::Cycles,
        _ => MetricUnit::Count,
    }
}

fn unit_to_str(unit: MetricUnit) -> &'static str {
    match unit {
        MetricUnit::Nanoseconds => "nanoseconds",
        MetricUnit::Bytes => "bytes",
        MetricUnit::Cycles => "cycles",
        MetricUnit::Count | MetricUnit::Ratio => "count",
    }
}

/// Parses a pprof profile (raw protobuf or gzip'd, including RFC 1952
/// concatenated multi-member files) into the generic representation.
/// Sample values become exclusive metrics attributed to the leaf of
/// each call path; inline frames in a `Location` expand into separate
/// CCT frames.
///
/// # Errors
///
/// Fails on gzip/wire-level corruption or dangling ids.
pub fn parse(data: &[u8]) -> Result<Profile, FormatError> {
    parse_with(data, ExecPolicy::SEQUENTIAL)
}

/// Like [`parse`], decompressing independent gzip members on `ev-par`
/// workers under `policy`. Output is bit-identical at any thread
/// count (the `ev-par` determinism contract).
///
/// # Errors
///
/// Same conditions as [`parse`].
pub fn parse_with(data: &[u8], policy: ExecPolicy) -> Result<Profile, FormatError> {
    let _span = ev_trace::span("convert.pprof");
    let decompressed;
    let body: &[u8] = if is_gzip(data) {
        decompressed = gzip_decompress_with(data, policy)?;
        &decompressed
    } else {
        data
    };

    let mut strings: Vec<String> = Vec::new();
    let mut sample_types: Vec<ValueType> = Vec::new();
    let mut locations: Vec<Location> = Vec::new();
    let mut functions: Vec<Function> = Vec::new();
    let mut mappings: Vec<Mapping> = Vec::new();
    let mut time_nanos: i64 = 0;

    let wire_span = ev_trace::span("wire.decode");
    let mut r = Reader::new(body);
    while let Some((field, ty)) = r.read_tag()? {
        match field {
            1 => {
                let mut m = r.read_message()?;
                let mut vt = ValueType::default();
                while let Some((f, t)) = m.read_tag()? {
                    match f {
                        1 => vt.r#type = m.read_int64()?,
                        2 => vt.unit = m.read_int64()?,
                        _ => m.skip(t)?,
                    }
                }
                sample_types.push(vt);
            }
            2 => {
                // Samples are replayed in a second pass, once the
                // location/function tables are known; skip here.
                r.skip(ty)?;
            }
            3 => {
                let mut m = r.read_message()?;
                let mut mp = Mapping::default();
                while let Some((f, t)) = m.read_tag()? {
                    match f {
                        1 => mp.id = m.read_varint()?,
                        5 => mp.filename = m.read_int64()?,
                        _ => m.skip(t)?,
                    }
                }
                mappings.push(mp);
            }
            4 => {
                let mut m = r.read_message()?;
                let mut loc = Location::default();
                while let Some((f, t)) = m.read_tag()? {
                    match f {
                        1 => loc.id = m.read_varint()?,
                        2 => loc.mapping_id = m.read_varint()?,
                        3 => loc.address = m.read_varint()?,
                        4 => {
                            let mut lm = m.read_message()?;
                            let mut line = Line::default();
                            while let Some((lf, lt)) = lm.read_tag()? {
                                match lf {
                                    1 => line.function_id = lm.read_varint()?,
                                    2 => line.line = lm.read_int64()?,
                                    _ => lm.skip(lt)?,
                                }
                            }
                            loc.lines.push(line);
                        }
                        _ => m.skip(t)?,
                    }
                }
                locations.push(loc);
            }
            5 => {
                let mut m = r.read_message()?;
                let mut func = Function::default();
                while let Some((f, t)) = m.read_tag()? {
                    match f {
                        1 => func.id = m.read_varint()?,
                        2 => func.name = m.read_int64()?,
                        4 => func.filename = m.read_int64()?,
                        _ => m.skip(t)?,
                    }
                }
                functions.push(func);
            }
            6 => strings.push(r.read_string()?.to_owned()),
            9 => time_nanos = r.read_int64()?,
            _ => r.skip(ty)?,
        }
    }
    drop(wire_span);

    let string_at = |idx: i64| -> &str {
        strings
            .get(idx.max(0) as usize)
            .map(String::as_str)
            .unwrap_or("")
    };

    let functions_by_id: HashMap<u64, Function> =
        functions.iter().map(|f| (f.id, *f)).collect();
    let mappings_by_id: HashMap<u64, Mapping> = mappings.iter().map(|m| (m.id, *m)).collect();
    let mut profile = Profile::new("pprof");
    profile.meta_mut().profiler = "pprof".to_owned();
    profile.meta_mut().timestamp_nanos = time_nanos.max(0) as u64;

    let metric_ids: Vec<MetricId> = sample_types
        .iter()
        .map(|vt| {
            let name = string_at(vt.r#type).to_owned();
            let unit = unit_from_str(string_at(vt.unit));
            profile.add_metric(MetricDescriptor::new(
                if name.is_empty() { "samples".to_owned() } else { name },
                unit,
                MetricKind::Exclusive,
            ))
        })
        .collect();

    // Pre-resolve each location into its expanded frame list, interned
    // once up front (outermost inline frame first). Samples then walk
    // the CCT with cheap Copy `FrameRef`s instead of re-hashing strings
    // per sample — the "avoids unnecessary data movement" optimization
    // of paper §V-C.
    let mut frames_cache: FxHashMap<u64, Vec<FrameRef>> = FxHashMap::default();
    for loc in &locations {
        let module_sid = mappings_by_id
            .get(&loc.mapping_id)
            .map(|m| profile.intern(string_at(m.filename)))
            .unwrap_or(StringId::EMPTY);
        let mut frames: Vec<FrameRef> = Vec::with_capacity(loc.lines.len().max(1));
        if loc.lines.is_empty() {
            // Unsymbolized location: synthesize a frame from the address.
            frames.push(FrameRef {
                kind: ContextKind::Function,
                name: profile.intern(&format!("0x{:x}", loc.address)),
                module: module_sid,
                file: StringId::EMPTY,
                line: 0,
                address: loc.address,
            });
        } else {
            // lines[0] is the leaf-most inline frame; emit outermost first.
            for line in loc.lines.iter().rev() {
                let func = functions_by_id.get(&line.function_id).copied().unwrap_or_default();
                let name = profile.intern(string_at(func.name));
                let file = profile.intern(string_at(func.filename));
                frames.push(FrameRef {
                    kind: ContextKind::Function,
                    name,
                    module: module_sid,
                    file,
                    line: line.line.max(0) as u32,
                    address: loc.address,
                });
            }
        }
        frames_cache.insert(loc.id, frames);
    }

    // Second pass: replay the sample records with reused buffers —
    // nothing per-sample is materialized (paper §V-C's "avoids
    // unnecessary data movement").
    let root = profile.root();
    let mut location_ids: Vec<u64> = Vec::new();
    let mut values: Vec<i64> = Vec::new();
    let _wire_span = ev_trace::span("wire.decode");
    let mut r = Reader::new(body);
    while let Some((field, ty)) = r.read_tag()? {
        if field != 2 {
            r.skip(ty)?;
            continue;
        }
        let mut m = r.read_message()?;
        location_ids.clear();
        values.clear();
        while let Some((f, t)) = m.read_tag()? {
            match f {
                1 => m.read_packed_uint64(&mut location_ids)?,
                2 => m.read_packed_int64(&mut values)?,
                _ => m.skip(t)?,
            }
        }
        let mut node = root;
        // location_ids are leaf-first; the CCT wants outermost first.
        for &loc_id in location_ids.iter().rev() {
            match frames_cache.get(&loc_id) {
                Some(frames) => {
                    for &frame in frames {
                        node = profile.child_ref(node, frame);
                    }
                }
                None => {
                    return Err(FormatError::Schema(format!(
                        "sample references unknown location {loc_id}"
                    )))
                }
            }
        }
        for (i, &v) in values.iter().enumerate() {
            if let Some(&metric) = metric_ids.get(i) {
                if v != 0 {
                    profile.add_value(node, metric, v as f64);
                }
            }
        }
    }

    Ok(profile)
}

/// Options for [`write()`].
#[derive(Debug, Clone, Copy)]
pub struct WriteOptions {
    /// Wrap the protobuf body in a gzip member (Go's default).
    pub gzip: bool,
    /// Compression level when gzipping.
    pub level: CompressionLevel,
}

impl Default for WriteOptions {
    fn default() -> WriteOptions {
        WriteOptions {
            gzip: true,
            level: CompressionLevel::Fast,
        }
    }
}

/// Serializes a profile as a pprof file.
///
/// Each profile metric becomes a `sample_type`; every node carrying
/// values becomes a `Sample` whose location chain is its call path
/// (leaf first). One `Location`/`Function` pair is emitted per distinct
/// frame, one `Mapping` per distinct load module.
pub fn write(profile: &Profile, options: WriteOptions) -> Vec<u8> {
    let mut strings: Vec<String> = vec![String::new()];
    let mut string_ids: HashMap<String, i64> = HashMap::new();
    string_ids.insert(String::new(), 0);

    fn intern_in(
        s: &str,
        strings: &mut Vec<String>,
        string_ids: &mut HashMap<String, i64>,
    ) -> i64 {
        if let Some(&id) = string_ids.get(s) {
            return id;
        }
        let id = strings.len() as i64;
        strings.push(s.to_owned());
        string_ids.insert(s.to_owned(), id);
        id
    }

    // Assign location/function/mapping ids per distinct frame identity.
    struct Tables {
        functions: Vec<(u64, i64, i64)>,          // id, name sid, file sid
        function_ids: HashMap<(i64, i64), u64>,   // (name, file) -> id
        mappings: Vec<(u64, i64)>,                // id, filename sid
        mapping_ids: HashMap<i64, u64>,           // filename -> id
        locations: Vec<(u64, u64, u64, u64, i64)>, // id, mapping, address, function, line
        location_ids: HashMap<(u64, u64, u64, i64), u64>,
    }
    let mut t = Tables {
        functions: Vec::new(),
        function_ids: HashMap::new(),
        mappings: Vec::new(),
        mapping_ids: HashMap::new(),
        locations: Vec::new(),
        location_ids: HashMap::new(),
    };

    // Location id per CCT node, computed once per node (0 = not yet).
    let mut loc_of_node: Vec<u64> = vec![0; profile.node_count()];
    let loc_for = |node: ev_core::NodeId,
                       t: &mut Tables,
                       strings: &mut Vec<String>,
                       string_ids: &mut HashMap<String, i64>,
                       loc_of_node: &mut Vec<u64>|
     -> u64 {
        if loc_of_node[node.index()] != 0 {
            return loc_of_node[node.index()];
        }
        let frame = profile.resolve_frame(node);
        let name_sid = intern_in(&frame.name, strings, string_ids);
        let file_sid = intern_in(&frame.file, strings, string_ids);
        let func_id = *t
            .function_ids
            .entry((name_sid, file_sid))
            .or_insert_with(|| {
                let id = t.functions.len() as u64 + 1;
                t.functions.push((id, name_sid, file_sid));
                id
            });
        let module_sid = intern_in(&frame.module, strings, string_ids);
        let mapping_id = *t.mapping_ids.entry(module_sid).or_insert_with(|| {
            let id = t.mappings.len() as u64 + 1;
            t.mappings.push((id, module_sid));
            id
        });
        let key = (mapping_id, frame.address, func_id, i64::from(frame.line));
        let loc_id = *t.location_ids.entry(key).or_insert_with(|| {
            let id = t.locations.len() as u64 + 1;
            t.locations
                .push((id, mapping_id, frame.address, func_id, i64::from(frame.line)));
            id
        });
        loc_of_node[node.index()] = loc_id;
        loc_id
    };

    let mut samples: Vec<(Vec<u64>, Vec<i64>)> = Vec::new();
    for node in profile.node_ids() {
        let n = profile.node(node);
        if n.values().is_empty() {
            continue;
        }
        // Walk parent pointers: leaf-first, exactly pprof's order.
        let mut loc_chain: Vec<u64> = Vec::new();
        let mut step = Some(node);
        while let Some(current) = step {
            if current == profile.root() {
                break;
            }
            loc_chain.push(loc_for(
                current,
                &mut t,
                &mut strings,
                &mut string_ids,
                &mut loc_of_node,
            ));
            step = profile.node(current).parent();
        }
        let values: Vec<i64> = profile
            .metrics()
            .iter()
            .enumerate()
            .map(|(i, _)| profile.value(node, MetricId::from_index(i)) as i64)
            .collect();
        samples.push((loc_chain, values));
    }

    let mut sample_type_sids: Vec<(i64, i64)> = Vec::new();
    for metric in profile.metrics() {
        let ty = intern_in(&metric.name, &mut strings, &mut string_ids);
        let unit = intern_in(unit_to_str(metric.unit), &mut strings, &mut string_ids);
        sample_type_sids.push((ty, unit));
    }

    let mut w = Writer::with_capacity(samples.len() * 32 + strings.len() * 16);
    for &(ty, unit) in &sample_type_sids {
        w.write_message_with(1, |m| {
            if ty != 0 {
                m.write_int64(1, ty);
            }
            if unit != 0 {
                m.write_int64(2, unit);
            }
        });
    }
    for (loc_chain, values) in &samples {
        w.write_message_with(2, |m| {
            m.write_packed_uint64(1, loc_chain);
            m.write_packed_int64(2, values);
        });
    }
    for &(id, filename) in &t.mappings {
        w.write_message_with(3, |m| {
            m.write_uint64(1, id);
            if filename != 0 {
                m.write_int64(5, filename);
            }
        });
    }
    for &(id, mapping, address, function, line) in &t.locations {
        w.write_message_with(4, |m| {
            m.write_uint64(1, id);
            if mapping != 0 {
                m.write_uint64(2, mapping);
            }
            if address != 0 {
                m.write_uint64(3, address);
            }
            m.write_message_with(4, |lm| {
                lm.write_uint64(1, function);
                if line != 0 {
                    lm.write_int64(2, line);
                }
            });
        });
    }
    for &(id, name, filename) in &t.functions {
        w.write_message_with(5, |m| {
            m.write_uint64(1, id);
            if name != 0 {
                m.write_int64(2, name);
            }
            if filename != 0 {
                m.write_int64(4, filename);
            }
        });
    }
    for s in &strings {
        w.write_string(6, s);
    }
    if profile.meta().timestamp_nanos != 0 {
        w.write_int64(9, profile.meta().timestamp_nanos as i64);
    }

    let body = w.into_bytes();
    if options.gzip {
        gzip_compress(&body, options.level)
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::{Frame, NodeId};

    fn sample_profile() -> Profile {
        let mut p = Profile::new("s");
        let cpu = p.add_metric(MetricDescriptor::new(
            "cpu",
            MetricUnit::Nanoseconds,
            MetricKind::Exclusive,
        ));
        let allocs = p.add_metric(MetricDescriptor::new(
            "alloc_space",
            MetricUnit::Bytes,
            MetricKind::Exclusive,
        ));
        p.add_sample(
            &[
                Frame::function("main").with_module("app").with_source("main.go", 10),
                Frame::function("handler").with_module("app").with_source("h.go", 20),
            ],
            &[(cpu, 500.0), (allocs, 1024.0)],
        );
        p.add_sample(
            &[
                Frame::function("main").with_module("app").with_source("main.go", 10),
                Frame::function("gc").with_module("runtime"),
            ],
            &[(cpu, 300.0)],
        );
        p
    }

    #[test]
    fn roundtrip_preserves_structure_and_totals() {
        let p = sample_profile();
        let bytes = write(&p, WriteOptions::default());
        assert!(is_gzip(&bytes));
        let q = parse(&bytes).unwrap();
        q.validate().unwrap();
        assert_eq!(q.node_count(), p.node_count());
        assert_eq!(q.metrics().len(), 2);
        assert!(q.metric_by_name("cpu").is_some());
        let cpu = q.metric_by_name("cpu").unwrap();
        assert_eq!(q.total(cpu), 800.0);
        let alloc = q.metric_by_name("alloc_space").unwrap();
        assert_eq!(q.total(alloc), 1024.0);
        // Units survive.
        assert_eq!(q.metric(cpu).unit, MetricUnit::Nanoseconds);
        assert_eq!(q.metric(alloc).unit, MetricUnit::Bytes);
    }

    #[test]
    fn roundtrip_uncompressed() {
        let p = sample_profile();
        let bytes = write(
            &p,
            WriteOptions {
                gzip: false,
                level: CompressionLevel::Store,
            },
        );
        assert!(!is_gzip(&bytes));
        let q = parse(&bytes).unwrap();
        assert_eq!(q.node_count(), p.node_count());
    }

    #[test]
    fn call_paths_survive() {
        let p = sample_profile();
        let q = parse(&write(&p, WriteOptions::default())).unwrap();
        // Find handler and verify its parent is main.
        let handler = q
            .node_ids()
            .find(|&id| q.resolve_frame(id).name == "handler")
            .unwrap();
        let parent = q.node(handler).parent().unwrap();
        assert_eq!(q.resolve_frame(parent).name, "main");
        assert_eq!(q.resolve_frame(parent).line, 10);
        assert_eq!(q.resolve_frame(handler).file, "h.go");
        assert_eq!(q.resolve_frame(handler).module, "app");
    }

    #[test]
    fn hand_built_pprof_with_inlining() {
        // Build a raw pprof message by hand: one sample through a
        // location with two inline lines.
        let mut w = Writer::new();
        // sample_type { type: "cpu"(1), unit: "count"(2) }
        w.write_message_with(1, |m| {
            m.write_int64(1, 1);
            m.write_int64(2, 2);
        });
        // sample { location_id: [1], value: [7] }
        w.write_message_with(2, |m| {
            m.write_packed_uint64(1, &[1]);
            m.write_packed_int64(2, &[7]);
        });
        // location { id: 1, line: [{fn 1, line 5}, {fn 2, line 50}] }
        // line[0] = leaf-most inline frame (callee).
        w.write_message_with(4, |m| {
            m.write_uint64(1, 1);
            m.write_message_with(4, |lm| {
                lm.write_uint64(1, 1);
                lm.write_int64(2, 5);
            });
            m.write_message_with(4, |lm| {
                lm.write_uint64(1, 2);
                lm.write_int64(2, 50);
            });
        });
        // functions: 1 = "inlined_callee", 2 = "caller"
        w.write_message_with(5, |m| {
            m.write_uint64(1, 1);
            m.write_int64(2, 3);
        });
        w.write_message_with(5, |m| {
            m.write_uint64(1, 2);
            m.write_int64(2, 4);
        });
        for s in ["", "cpu", "count", "inlined_callee", "caller"] {
            w.write_string(6, s);
        }
        let profile = parse(w.as_bytes()).unwrap();
        profile.validate().unwrap();
        // Expect root -> caller -> inlined_callee with value at the leaf.
        let leaf = profile
            .node_ids()
            .find(|&id| profile.resolve_frame(id).name == "inlined_callee")
            .unwrap();
        let caller = profile.node(leaf).parent().unwrap();
        assert_eq!(profile.resolve_frame(caller).name, "caller");
        let cpu = profile.metric_by_name("cpu").unwrap();
        assert_eq!(profile.value(leaf, cpu), 7.0);
        assert_eq!(profile.value(caller, cpu), 0.0);
    }

    #[test]
    fn unknown_location_is_schema_error() {
        let mut w = Writer::new();
        w.write_message_with(2, |m| {
            m.write_packed_uint64(1, &[42]);
            m.write_packed_int64(2, &[1]);
        });
        w.write_string(6, "");
        let err = parse(w.as_bytes()).unwrap_err();
        assert!(matches!(err, FormatError::Schema(_)), "{err:?}");
    }

    #[test]
    fn unsymbolized_location_synthesizes_address_frame() {
        let mut w = Writer::new();
        w.write_message_with(1, |m| {
            m.write_int64(1, 1);
            m.write_int64(2, 2);
        });
        w.write_message_with(2, |m| {
            m.write_packed_uint64(1, &[1]);
            m.write_packed_int64(2, &[3]);
        });
        w.write_message_with(4, |m| {
            m.write_uint64(1, 1);
            m.write_uint64(3, 0xdeadbeef);
        });
        for s in ["", "samples", "count"] {
            w.write_string(6, s);
        }
        let profile = parse(w.as_bytes()).unwrap();
        let leaf = profile
            .node_ids()
            .find(|&id| profile.node(id).children().is_empty() && id != NodeId::ROOT)
            .unwrap();
        assert_eq!(profile.resolve_frame(leaf).name, "0xdeadbeef");
        assert_eq!(profile.resolve_frame(leaf).address, 0xdeadbeef);
    }

    #[test]
    fn empty_profile_parses() {
        let profile = parse(&[]).unwrap();
        assert_eq!(profile.node_count(), 1);
        assert!(profile.metrics().is_empty());
    }

    #[test]
    fn corrupted_gzip_is_container_error() {
        let p = sample_profile();
        let mut bytes = write(&p, WriteOptions::default());
        let n = bytes.len();
        bytes[n / 2] ^= 0xff;
        assert!(matches!(
            parse(&bytes),
            Err(FormatError::Container(_)) | Err(FormatError::Schema(_))
        ));
    }
}

//! The pprof binding: Google's `profile.proto`, the de-facto profile
//! format for Go (and the container `perf_to_profile` and Cloud Profiler
//! emit).
//!
//! The paper calls pprof's format "a subset of EasyView representation in
//! Protocol Buffer" (§VII-A); this module implements both directions —
//! parsing pprof files into the generic representation (the hot path of
//! the Fig. 5 response-time experiment) and writing them back out (used
//! by `ev-gen` to fabricate size-calibrated benchmark inputs).
//!
//! Field numbers below follow `github.com/google/pprof/proto/profile.proto`
//! exactly, so real pprof files are accepted byte-for-byte. Files may be
//! raw protobuf or gzip members (Go always gzips).

use crate::FormatError;
use ev_core::arena::{Arena, Span};
use ev_core::fast_hash::FxHashMap;
use ev_core::{
    ContextKind, Frame, FrameRef, MetricDescriptor, MetricId, MetricKind, MetricUnit, NodeId,
    Profile, StringId,
};
use ev_flate::{
    gzip_compress, gzip_decompress_with, is_gzip, CompressionLevel, ExecPolicy, FlateError,
    GzipStream,
};
use ev_wire::{
    decode_packed_int64, decode_packed_uint64, ChunkSource, FieldValue, Reader, StreamError,
    StreamReader, WireError, Writer,
};
use std::collections::HashMap;

/// Samples decoded through the one-pass path (`wire.onepass_samples`).
fn onepass_samples_counter() -> &'static ev_trace::Counter {
    static HANDLE: std::sync::OnceLock<&'static ev_trace::Counter> = std::sync::OnceLock::new();
    HANDLE.get_or_init(|| ev_trace::counter("wire.onepass_samples"))
}

/// One decoded `Location` message.
#[derive(Debug, Default, Clone)]
struct Location {
    id: u64,
    mapping_id: u64,
    address: u64,
    /// Innermost (leaf-most inline frame) first, per the spec.
    lines: Vec<Line>,
}

#[derive(Debug, Default, Clone, Copy)]
struct Line {
    function_id: u64,
    line: i64,
}

/// One decoded `Function` message (string-table indices).
#[derive(Debug, Default, Clone, Copy)]
struct Function {
    id: u64,
    name: i64,
    filename: i64,
}

/// One decoded `Mapping` message (string-table indices).
#[derive(Debug, Default, Clone, Copy)]
struct Mapping {
    id: u64,
    filename: i64,
}

#[derive(Debug, Default, Clone, Copy)]
struct ValueType {
    r#type: i64,
    unit: i64,
}

/// Maps a pprof unit string to an EasyView metric unit.
fn unit_from_str(unit: &str) -> MetricUnit {
    match unit {
        "nanoseconds" => MetricUnit::Nanoseconds,
        "bytes" => MetricUnit::Bytes,
        "cycles" => MetricUnit::Cycles,
        _ => MetricUnit::Count,
    }
}

fn unit_to_str(unit: MetricUnit) -> &'static str {
    match unit {
        MetricUnit::Nanoseconds => "nanoseconds",
        MetricUnit::Bytes => "bytes",
        MetricUnit::Cycles => "cycles",
        MetricUnit::Count | MetricUnit::Ratio => "count",
    }
}

/// Parses a pprof profile (raw protobuf or gzip'd, including RFC 1952
/// concatenated multi-member files) into the generic representation.
/// Sample values become exclusive metrics attributed to the leaf of
/// each call path; inline frames in a `Location` expand into separate
/// CCT frames.
///
/// This is the one-pass decoder: a single forward walk over the wire
/// bytes interns strings and builds the CCT directly into
/// arena-backed profile storage. [`parse_reference`] is the retained
/// two-pass decoder; the differential conformance suite proves the two
/// produce identical profiles and identical errors on any input.
///
/// # Errors
///
/// Fails on gzip/wire-level corruption or dangling ids.
pub fn parse(data: &[u8]) -> Result<Profile, FormatError> {
    parse_with(data, ExecPolicy::SEQUENTIAL)
}

/// Like [`parse`], decompressing independent gzip members on `ev-par`
/// workers under `policy`. Output is bit-identical at any thread
/// count (the `ev-par` determinism contract).
///
/// # Errors
///
/// Same conditions as [`parse`].
pub fn parse_with(data: &[u8], policy: ExecPolicy) -> Result<Profile, FormatError> {
    let _span = ev_trace::span("convert.pprof");
    let decompressed;
    let body: &[u8] = if is_gzip(data) {
        decompressed = gzip_decompress_with(data, policy)?;
        &decompressed
    } else {
        data
    };
    parse_onepass(body)
}

/// The retained two-pass decoder, kept as the differential reference
/// for [`parse`] (the `inflate_reference`/`crc32_reference` pattern):
/// decode-to-intermediate, then rebuild. Byte-for-byte identical
/// results and errors to the one-pass decoder, at a fraction of the
/// speed.
///
/// # Errors
///
/// Same conditions as [`parse`].
pub fn parse_reference(data: &[u8]) -> Result<Profile, FormatError> {
    parse_reference_with(data, ExecPolicy::SEQUENTIAL)
}

/// Like [`parse_reference`], with a decompression [`ExecPolicy`].
///
/// # Errors
///
/// Same conditions as [`parse`].
pub fn parse_reference_with(data: &[u8], policy: ExecPolicy) -> Result<Profile, FormatError> {
    let _span = ev_trace::span("convert.pprof");
    let decompressed;
    let body: &[u8] = if is_gzip(data) {
        decompressed = gzip_decompress_with(data, policy)?;
        &decompressed
    } else {
        data
    };
    parse_twopass(body)
}

/// Like [`parse_with`], but bounded-memory: the gzip body inflates in
/// chunks of roughly `chunk_size` bytes that feed the one-pass decoder
/// through a resumable `ev-wire` stream walk, so peak memory tracks
/// the *decoded tables* plus the final profile, never the whole
/// decompressed body. The CRC of each chunk overlaps the inflate of
/// the next on an `ev-par` worker under `policy`. Raw (uncompressed)
/// bodies stream too, exercising the same resume logic without the
/// inflate stage.
///
/// The stream is decoded in two passes over the *source*: pass 1 walks
/// the tables and validates every field's framing, pass 2 re-inflates
/// and replays only the sample payloads into the fixup. Trading one
/// extra inflate (a few percent of end-to-end time) for never
/// materializing the samples is what keeps peak memory independent of
/// the sample count — sample payloads dominate large profiles.
///
/// Differential contract: byte-identical profiles and identical errors
/// to [`parse_with`] at any chunk size and any thread count. In
/// particular, a container (gzip) error anywhere in the input outranks
/// a wire error anywhere in the body, exactly as if the body had been
/// decompressed up front.
///
/// # Errors
///
/// Same conditions as [`parse`].
pub fn parse_streaming_with(
    data: &[u8],
    policy: ExecPolicy,
    chunk_size: usize,
) -> Result<Profile, FormatError> {
    let _span = ev_trace::span("convert.pprof");
    if is_gzip(data) {
        parse_stream(policy, || {
            Ok(GzipChunkSource {
                gz: GzipStream::new(data, chunk_size, policy)?,
                scratch: Vec::new(),
            })
        })
    } else {
        parse_stream(policy, || {
            Ok(SliceChunkSource {
                data,
                pos: 0,
                chunk_size,
            })
        })
    }
}

/// A `Location` record in the one-pass decoder. Its inline-line run
/// lives in a shared [`Arena`] instead of a per-record `Vec`, so
/// decoding a million locations costs one allocation, not a million.
#[derive(Debug, Clone, Copy)]
struct LocRec {
    id: u64,
    mapping_id: u64,
    address: u64,
    lines: Span,
}

/// Maps pprof entity ids (locations, functions, mappings) to their
/// record slot. Real profiles almost always number entities densely
/// from 1, so the index is a flat vector when ids are compact and only
/// falls back to hashing for adversarially sparse ids. Duplicate ids
/// resolve to the last record, matching the `HashMap::collect`
/// semantics of the reference decoder.
enum IdIndex {
    Dense(Vec<u32>),
    Sparse(FxHashMap<u64, u32>),
}

impl IdIndex {
    fn build<T>(items: &[T], id_of: impl Fn(&T) -> u64) -> IdIndex {
        let max_id = items.iter().map(&id_of).max().unwrap_or(0);
        if (max_id as usize) < items.len() * 4 + 64 {
            let mut slots = vec![u32::MAX; max_id as usize + 1];
            for (slot, item) in items.iter().enumerate() {
                slots[id_of(item) as usize] = slot as u32;
            }
            IdIndex::Dense(slots)
        } else {
            let mut map =
                FxHashMap::with_capacity_and_hasher(items.len(), Default::default());
            for (slot, item) in items.iter().enumerate() {
                map.insert(id_of(item), slot as u32);
            }
            IdIndex::Sparse(map)
        }
    }

    fn get(&self, id: u64) -> Option<u32> {
        match self {
            IdIndex::Dense(slots) => usize::try_from(id)
                .ok()
                .and_then(|i| slots.get(i).copied())
                .filter(|&slot| slot != u32::MAX),
            IdIndex::Sparse(map) => map.get(&id).copied(),
        }
    }
}

/// Interns the pprof string-table entry `idx` into the profile,
/// memoizing per table index so repeated references hash the string
/// once. Out-of-range and negative indices resolve to the empty
/// string, exactly like the reference decoder's clamped lookup.
fn sid_for(
    profile: &mut Profile,
    memo: &mut [u32],
    strings: &[&str],
    idx: i64,
) -> StringId {
    let i = idx.max(0) as usize;
    if i >= strings.len() {
        // The reference interns "" here, which is always StringId::EMPTY.
        return StringId::EMPTY;
    }
    if memo[i] != u32::MAX {
        return StringId::from_index(memo[i] as usize);
    }
    let sid = profile.intern(strings[i]);
    memo[i] = sid.index() as u32;
    sid
}

/// Decodes a `ValueType` sub-message (profile field 1).
fn decode_value_type(msg: &[u8]) -> Result<ValueType, WireError> {
    let mut vt = ValueType::default();
    let mut m = Reader::new(msg);
    while let Some((f, v)) = m.next_field()? {
        match (f, v) {
            (1, FieldValue::Varint(v)) => vt.r#type = v as i64,
            (2, FieldValue::Varint(v)) => vt.unit = v as i64,
            _ => {}
        }
    }
    Ok(vt)
}

/// Decodes a `Mapping` sub-message (profile field 3).
fn decode_mapping(msg: &[u8]) -> Result<Mapping, WireError> {
    let mut mp = Mapping::default();
    let mut m = Reader::new(msg);
    while let Some((f, v)) = m.next_field()? {
        match (f, v) {
            (1, FieldValue::Varint(v)) => mp.id = v,
            (5, FieldValue::Varint(v)) => mp.filename = v as i64,
            _ => {}
        }
    }
    Ok(mp)
}

/// Decodes a `Location` sub-message (profile field 4), appending its
/// inline-line run to the shared arena.
fn decode_location(msg: &[u8], lines: &mut Arena<Line>) -> Result<LocRec, WireError> {
    let mut loc = LocRec {
        id: 0,
        mapping_id: 0,
        address: 0,
        lines: Span::default(),
    };
    let mark = lines.mark();
    let mut m = Reader::new(msg);
    while let Some((f, v)) = m.next_field()? {
        match (f, v) {
            (1, FieldValue::Varint(v)) => loc.id = v,
            (2, FieldValue::Varint(v)) => loc.mapping_id = v,
            (3, FieldValue::Varint(v)) => loc.address = v,
            (4, FieldValue::Bytes(line_msg)) => {
                let mut line = Line::default();
                let mut lm = Reader::new(line_msg);
                while let Some((lf, lv)) = lm.next_field()? {
                    match (lf, lv) {
                        (1, FieldValue::Varint(v)) => line.function_id = v,
                        (2, FieldValue::Varint(v)) => line.line = v as i64,
                        _ => {}
                    }
                }
                lines.push(line);
            }
            _ => {}
        }
    }
    loc.lines = lines.span_since(mark);
    Ok(loc)
}

/// Decodes a `Function` sub-message (profile field 5).
fn decode_function(msg: &[u8]) -> Result<Function, WireError> {
    let mut func = Function::default();
    let mut m = Reader::new(msg);
    while let Some((f, v)) = m.next_field()? {
        match (f, v) {
            (1, FieldValue::Varint(v)) => func.id = v,
            (2, FieldValue::Varint(v)) => func.name = v as i64,
            (4, FieldValue::Varint(v)) => func.filename = v as i64,
            _ => {}
        }
    }
    Ok(func)
}

/// Decodes a `Sample` payload (profile field 2) into leaf-first
/// location ids and metric values, packed or unpacked.
fn decode_sample_payload(
    msg: &[u8],
    location_ids: &mut Vec<u64>,
    values: &mut Vec<i64>,
) -> Result<(), WireError> {
    let mut m = Reader::new(msg);
    while let Some((f, v)) = m.next_field()? {
        match (f, v) {
            (1, FieldValue::Bytes(b)) => decode_packed_uint64(b, location_ids)?,
            (1, FieldValue::Varint(v)) => location_ids.push(v),
            (2, FieldValue::Bytes(b)) => decode_packed_int64(b, values)?,
            (2, FieldValue::Varint(v)) => values.push(v as i64),
            _ => {}
        }
    }
    Ok(())
}

/// The decoded pprof entity tables a body walk produces — everything
/// the fixup pass needs besides the sample records themselves. Shared
/// between the buffered and the streaming one-pass decoders.
struct WalkTables {
    sample_types: Vec<ValueType>,
    locs: Vec<LocRec>,
    lines: Arena<Line>,
    functions: Vec<Function>,
    mappings: Vec<Mapping>,
    time_nanos: i64,
}

/// The one-pass decode: a single forward walk over `body` with the
/// `ev-wire` streaming field walker, then a bounded fixup pass that
/// resolves forward references (samples may precede the tables they
/// point into) and replays the deferred sample payloads.
///
/// Error identity with [`parse_twopass`] is a designed invariant, not
/// an accident: the walker consumes exactly the bytes the reference's
/// dispatch-or-skip loop does, string-table UTF-8 is validated at the
/// same walk position, and sample payloads are *deferred* as raw byte
/// slices so their wire errors still surface after the full walk — the
/// order the two-pass decoder reports them in.
fn parse_onepass(body: &[u8]) -> Result<Profile, FormatError> {
    let mut strings: Vec<&str> = Vec::new();
    let mut sample_types: Vec<ValueType> = Vec::new();
    let mut sample_payloads: Vec<&[u8]> = Vec::new();
    let mut locs: Vec<LocRec> = Vec::new();
    let mut lines: Arena<Line> = Arena::new();
    let mut functions: Vec<Function> = Vec::new();
    let mut mappings: Vec<Mapping> = Vec::new();
    let mut time_nanos: i64 = 0;

    // Walk. Known fields with a mismatched wire type fall through to
    // the no-op arm — the walker has already consumed the value, which
    // is precisely "skip as unknown".
    let wire_span = ev_trace::span("wire.decode");
    let mut r = Reader::new(body);
    while let Some((field, value)) = r.next_field()? {
        match (field, value) {
            (1, FieldValue::Bytes(msg)) => sample_types.push(decode_value_type(msg)?),
            (2, FieldValue::Bytes(msg)) => {
                // Deferred: decoded in the fixup pass once the
                // location table is known.
                sample_payloads.push(msg);
            }
            (3, FieldValue::Bytes(msg)) => mappings.push(decode_mapping(msg)?),
            (4, FieldValue::Bytes(msg)) => locs.push(decode_location(msg, &mut lines)?),
            (5, FieldValue::Bytes(msg)) => functions.push(decode_function(msg)?),
            (6, FieldValue::Bytes(msg)) => {
                // Validated here — the same walk position at which the
                // reference decoder's read_string() validates.
                strings.push(std::str::from_utf8(msg).map_err(|_| WireError::InvalidUtf8)?);
            }
            (9, FieldValue::Varint(v)) => time_nanos = v as i64,
            _ => {}
        }
    }
    drop(wire_span);

    let tables = WalkTables {
        sample_types,
        locs,
        lines,
        functions,
        mappings,
        time_nanos,
    };
    let sample_count = sample_payloads.len();
    let mut payloads = sample_payloads.iter();
    fixup_profile(&strings, &tables, sample_count, |ids, vals| {
        match payloads.next() {
            Some(payload) => {
                decode_sample_payload(payload, ids, vals)?;
                Ok(true)
            }
            None => Ok(false),
        }
    })
}

/// The fixup pass shared by the buffered and streaming one-pass
/// decoders: resolve tables, intern frames, replay samples.
///
/// `next_sample` yields one sample per call by appending to the
/// (pre-cleared) id/value vectors, `Ok(false)` when exhausted; the
/// buffered decoder decodes its deferred payload slices here, the
/// streaming decoder re-expands its prefix-compressed spill. An error
/// from the closure aborts the parse at exactly the sample index the
/// buffered replay would abort at.
fn fixup_profile(
    strings: &[&str],
    t: &WalkTables,
    sample_count: usize,
    mut next_sample: impl FnMut(&mut Vec<u64>, &mut Vec<i64>) -> Result<bool, FormatError>,
) -> Result<Profile, FormatError> {
    let mut profile = Profile::new("pprof");
    profile.meta_mut().profiler = "pprof".to_owned();
    profile.meta_mut().timestamp_nanos = t.time_nanos.max(0) as u64;

    let string_at = |idx: i64| -> &str { strings.get(idx.max(0) as usize).copied().unwrap_or("") };

    let metric_ids: Vec<MetricId> = t
        .sample_types
        .iter()
        .map(|vt| {
            let name = string_at(vt.r#type).to_owned();
            let unit = unit_from_str(string_at(vt.unit));
            profile.add_metric(MetricDescriptor::new(
                if name.is_empty() { "samples".to_owned() } else { name },
                unit,
                MetricKind::Exclusive,
            ))
        })
        .collect();

    let function_index = IdIndex::build(&t.functions, |f| f.id);
    let mapping_index = IdIndex::build(&t.mappings, |m| m.id);
    let location_index = IdIndex::build(&t.locs, |l| l.id);

    // Frame runs materialize lazily, at a location's first use by a
    // sample. That makes the profile's intern order *sample-first-use*
    // order — exactly what the reference decoder's per-step
    // `Profile::child` calls produce — and locations no sample
    // references never intern anything, again like the reference.
    // (`Profile` equality compares string tables entry for entry, so
    // the order is part of the conformance contract, not a detail.)
    let mut sid_memo = vec![u32::MAX; strings.len()];
    // Frames dedup to small integer *tokens* at materialization:
    // `token_map` maps frame content to its token, `frame_by_token`
    // maps back, and `tokens` holds each location's frame run as a
    // token span. Tokens are what make the index-free CCT build below
    // sound — (parent, token) identifies a child edge exactly.
    let mut token_map: FxHashMap<FrameRef, u32> = FxHashMap::default();
    let mut frame_by_token: Vec<FrameRef> = Vec::new();
    let mut tokens: Arena<u32> = Arena::with_capacity(t.lines.len().max(t.locs.len()));
    // `Span::default()` (empty) marks "not yet materialized": every
    // materialized location yields at least one frame (unsymbolized
    // locations synthesize one from the address).
    let mut frame_spans: Vec<Span> = vec![Span::default(); t.locs.len()];

    // Replay the deferred samples. Two exact shortcuts make this the
    // fast half of the decode:
    //   1. consecutive samples share call-path prefixes (aggregating
    //      writers emit samples in CCT traversal order), and a CCT is a
    //      trie — so the node a shared prefix reaches is the node the
    //      previous sample reached at that depth. A plain compare
    //      against the previous sample's raw location ids resumes the
    //      walk at the divergence point — no table lookups, let alone
    //      hashing, for the shared part;
    //   2. the remaining steps build the tree with
    //      `push_child_unchecked`, deduping edges through a
    //      (parent node, frame token) memo — one u64-keyed probe per
    //      frame instead of hashing a 32-byte (parent, FrameRef) key
    //      into the profile's child index. The token↔frame-content
    //      bijection is what makes the unchecked push sound: two memo
    //      keys are equal iff the checked API would merge the edges.
    if ev_trace::enabled() {
        onepass_samples_counter().add(sample_count as u64);
    }
    let _wire_span = ev_trace::span("wire.decode");
    let root = profile.root();
    // Pre-size the CCT structures for a mid-size profile. The cap is
    // deliberately modest: nodes scale with *distinct call paths*, not
    // samples, and a long capture has millions of samples over a tiny
    // CCT — sizing by sample count there strands tens of MiB of node
    // capacity in the returned profile (and defeats the streaming
    // path's bounded-memory contract). Beyond the floor, growth is
    // amortized doubling of a u64-keyed map and a memcpy'd vec, a few
    // percent of construction even at millions of nodes.
    let reserve = sample_count.min(1 << 16);
    profile.reserve_nodes(reserve);
    let mut location_ids: Vec<u64> = Vec::new();
    let mut values: Vec<i64> = Vec::new();
    // The previous sample's raw leaf-first location ids, and the node
    // reached after each *outermost-first* step (`prev_nodes[i]` is
    // the node after the step over `prev_ids[prev_ids.len() - 1 - i]`).
    let mut prev_ids: Vec<u64> = Vec::new();
    let mut prev_nodes: Vec<NodeId> = Vec::new();
    let mut edge_memo: FxHashMap<u64, NodeId> =
        FxHashMap::with_capacity_and_hasher(reserve, Default::default());
    loop {
        location_ids.clear();
        values.clear();
        if !next_sample(&mut location_ids, &mut values)? {
            break;
        }
        // Shared call-path prefix with the previous sample, computed on
        // the raw ids: an outermost-first prefix is a leaf-first
        // suffix, and equal ids mean equal locations (id → slot is a
        // function of the location table). Shared ids were resolved by
        // an earlier sample — any dangling id would have aborted the
        // parse then — so only the divergent head below needs table
        // lookups, walked outermost-first so the first dangling id
        // reported is the one the reference's walk hits first.
        let shared = location_ids
            .iter()
            .rev()
            .zip(prev_ids.iter().rev())
            .take_while(|(a, b)| a == b)
            .count();
        let mut node = if shared > 0 { prev_nodes[shared - 1] } else { root };
        prev_nodes.truncate(shared);
        for &loc_id in location_ids[..location_ids.len() - shared].iter().rev() {
            let Some(slot) = location_index.get(loc_id) else {
                return Err(FormatError::Schema(format!(
                    "sample references unknown location {loc_id}"
                )));
            };
            let mut span = frame_spans[slot as usize];
            if span.is_empty() {
                span = materialize_frames(
                    slot as usize,
                    &mut profile,
                    &mut tokens,
                    &mut token_map,
                    &mut frame_by_token,
                    &mut frame_spans,
                    &mut sid_memo,
                    strings,
                    &t.locs,
                    &t.lines,
                    &t.functions,
                    &function_index,
                    &t.mappings,
                    &mapping_index,
                );
            }
            for &token in tokens.get(span) {
                let key = ((node.index() as u64) << 32) | u64::from(token);
                node = match edge_memo.get(&key) {
                    Some(&cached) => cached,
                    None => {
                        let n =
                            profile.push_child_unchecked(node, frame_by_token[token as usize]);
                        edge_memo.insert(key, n);
                        n
                    }
                };
            }
            prev_nodes.push(node);
        }
        std::mem::swap(&mut prev_ids, &mut location_ids);
        for (i, &v) in values.iter().enumerate() {
            if let Some(&metric) = metric_ids.get(i) {
                if v != 0 {
                    profile.add_value(node, metric, v as f64);
                }
            }
        }
    }

    Ok(profile)
}

/// Expands location `slot` into its frame run (outermost inline frame
/// first) in the shared arena, interning the strings it touches. Called
/// at a location's first use by a sample, so intern order matches the
/// reference decoder's per-step `Frame::intern` order: name, module,
/// file, per frame.
#[allow(clippy::too_many_arguments)]
fn materialize_frames(
    slot: usize,
    profile: &mut Profile,
    tokens: &mut Arena<u32>,
    token_map: &mut FxHashMap<FrameRef, u32>,
    frame_by_token: &mut Vec<FrameRef>,
    frame_spans: &mut [Span],
    sid_memo: &mut [u32],
    strings: &[&str],
    locs: &[LocRec],
    lines: &Arena<Line>,
    functions: &[Function],
    function_index: &IdIndex,
    mappings: &[Mapping],
    mapping_index: &IdIndex,
) -> Span {
    let loc = locs[slot];
    let module_idx = mapping_index
        .get(loc.mapping_id)
        .map(|mslot| mappings[mslot as usize].filename);
    let mark = tokens.mark();
    if loc.lines.is_empty() {
        // Unsymbolized location: synthesize a frame from the address.
        let name = profile.intern(&format!("0x{:x}", loc.address));
        let module = match module_idx {
            Some(idx) => sid_for(profile, sid_memo, strings, idx),
            None => StringId::EMPTY,
        };
        let frame = FrameRef {
            kind: ContextKind::Function,
            name,
            module,
            file: StringId::EMPTY,
            line: 0,
            address: loc.address,
        };
        tokens.push(token_for(token_map, frame_by_token, frame));
    } else {
        // lines[0] is the leaf-most inline frame; emit outermost first.
        for line in lines.get(loc.lines).iter().rev() {
            let func = location_function(function_index, functions, line.function_id);
            let name = sid_for(profile, sid_memo, strings, func.name);
            let module = match module_idx {
                Some(idx) => sid_for(profile, sid_memo, strings, idx),
                None => StringId::EMPTY,
            };
            let file = sid_for(profile, sid_memo, strings, func.filename);
            let frame = FrameRef {
                kind: ContextKind::Function,
                name,
                module,
                file,
                line: line.line.max(0) as u32,
                address: loc.address,
            };
            tokens.push(token_for(token_map, frame_by_token, frame));
        }
    }
    let span = tokens.span_since(mark);
    frame_spans[slot] = span;
    span
}

/// The token for a frame's content, assigning the next one on first
/// sight. Distinct tokens ⇔ distinct frame content, which is the
/// invariant the replay's (parent, token) edge memo relies on.
fn token_for(
    token_map: &mut FxHashMap<FrameRef, u32>,
    frame_by_token: &mut Vec<FrameRef>,
    frame: FrameRef,
) -> u32 {
    *token_map.entry(frame).or_insert_with(|| {
        frame_by_token.push(frame);
        (frame_by_token.len() - 1) as u32
    })
}

/// Resolves a `Line`'s function id, defaulting (like the reference's
/// `HashMap::get(..).unwrap_or_default()`) when the id is dangling.
fn location_function(index: &IdIndex, functions: &[Function], id: u64) -> Function {
    index
        .get(id)
        .map(|slot| functions[slot as usize])
        .unwrap_or_default()
}

/// [`ChunkSource`] over an in-memory slice — the raw (uncompressed)
/// pprof body case. Never fails; using `FlateError` as the error type
/// anyway keeps the streaming walk monomorphic over both sources.
struct SliceChunkSource<'a> {
    data: &'a [u8],
    pos: usize,
    chunk_size: usize,
}

impl ChunkSource for SliceChunkSource<'_> {
    type Error = FlateError;

    fn read_chunk(&mut self, dst: &mut Vec<u8>) -> Result<bool, FlateError> {
        if self.pos == self.data.len() {
            return Ok(false);
        }
        let take = self.chunk_size.max(1).min(self.data.len() - self.pos);
        dst.extend_from_slice(&self.data[self.pos..self.pos + take]);
        self.pos += take;
        Ok(true)
    }
}

/// [`ChunkSource`] over a [`GzipStream`]: bridges the stream's
/// clear-and-fill contract to the trait's append contract through a
/// scratch buffer (one memcpy per chunk, noise next to the inflate).
struct GzipChunkSource<'a> {
    gz: GzipStream<'a>,
    scratch: Vec<u8>,
}

impl ChunkSource for GzipChunkSource<'_> {
    type Error = FlateError;

    fn read_chunk(&mut self, dst: &mut Vec<u8>) -> Result<bool, FlateError> {
        if dst.is_empty() {
            // Clear-and-fill and append agree on an empty buffer; the
            // pipelined producer always pulls into one, so the common
            // path skips the scratch hop.
            return self.gz.next_chunk(dst);
        }
        let more = self.gz.next_chunk(&mut self.scratch)?;
        if more {
            dst.extend_from_slice(&self.scratch);
        }
        Ok(more)
    }
}

/// What the streaming walk produces: the entity tables (strings owned,
/// since the bytes they were decoded from are gone) and the sample
/// count for the fixup's reservation.
struct StreamWalk {
    strings: Vec<String>,
    tables: WalkTables,
    /// Every `(2, bytes)` field seen — the buffered decoder's
    /// `sample_payloads.len()`.
    sample_count: usize,
}

/// How many chunks a pipeline stage may run ahead of its consumer.
/// One in-flight chunk already hides the inflate behind the walk;
/// a second absorbs scheduling jitter. Peak memory grows by
/// `PIPE_DEPTH × chunk_size`.
const PIPE_DEPTH: usize = 2;

/// Adapts a [`ChunkSource`] into a [`ev_par::with_pipeline`] producer:
/// each call pulls one chunk into a fresh buffer. After a source error
/// the next call observes the source's exhausted state (`Ok(false)`)
/// and ends the stream, so the produced item sequence is exactly what
/// inline pulls would yield.
fn chunk_producer<S: ChunkSource<Error = FlateError>>(
    mut source: S,
) -> impl FnMut() -> Option<Result<Vec<u8>, FlateError>> {
    move || {
        let mut buf = Vec::new();
        match source.read_chunk(&mut buf) {
            Ok(true) => Some(Ok(buf)),
            Ok(false) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

/// [`ChunkSource`] over the consumer end of a chunk pipeline.
struct PipeSource<'a, 'b> {
    rx: &'a mut ev_par::PipelineRx<'b, Vec<u8>, FlateError>,
}

impl ChunkSource for PipeSource<'_, '_> {
    type Error = FlateError;

    fn read_chunk(&mut self, dst: &mut Vec<u8>) -> Result<bool, FlateError> {
        match self.rx.pull() {
            Some(Ok(chunk)) => {
                dst.extend_from_slice(&chunk);
                Ok(true)
            }
            Some(Err(e)) => Err(e),
            None => Ok(false),
        }
    }
}

/// Drives the streaming decode: pass 1 walks the tables, pass 2 (a
/// fresh source from `make_source`) replays the sample payloads
/// straight into the fixup, so samples are never materialized. Each
/// pass pulls its chunks through [`ev_par::with_pipeline`], so under a
/// parallel policy chunk N+1 inflates on a pipeline thread while the
/// walk decodes chunk N — the inflate leaves the end-to-end critical
/// path entirely. Sequential policies pull inline: that path is the
/// reference, and the pipeline delivers it the bit-identical chunk
/// sequence.
///
/// Pass 1 enforces the buffered path's error precedence: that path
/// decompresses the whole container before wire-decoding a single
/// byte, so a flate error anywhere in the stream outranks a wire error
/// anywhere in the body. On a wire error the remaining source is
/// drained to look for one. A completed pass 1 conversely proves the
/// container and every field's framing are sound, so pass 2 — a
/// deterministic re-pass — can only surface errors from *inside* a
/// sample payload: the same errors, at the same replay index, the
/// buffered decoder reports from its deferred payload slices.
fn parse_stream<S: ChunkSource<Error = FlateError> + Send>(
    policy: ExecPolicy,
    make_source: impl Fn() -> Result<S, FlateError>,
) -> Result<Profile, FormatError> {
    let walk = ev_par::with_pipeline(
        policy,
        PIPE_DEPTH,
        chunk_producer(make_source()?),
        |rx| -> Result<StreamWalk, FormatError> {
            let mut reader = StreamReader::new(PipeSource { rx });
            match walk_stream(&mut reader) {
                Ok(walk) => Ok(walk),
                Err(StreamError::Source(e)) => Err(e.into()),
                Err(StreamError::Wire(e)) => {
                    if let Some(flate) = drain_source(&mut reader) {
                        return Err(flate.into());
                    }
                    Err(e.into())
                }
            }
        },
    )?;
    let strings: Vec<&str> = walk.strings.iter().map(String::as_str).collect();
    ev_par::with_pipeline(
        policy,
        PIPE_DEPTH,
        chunk_producer(make_source()?),
        |rx| {
            let mut replay = StreamReader::new(PipeSource { rx });
            fixup_profile(&strings, &walk.tables, walk.sample_count, |ids, vals| {
                loop {
                    match replay.next_field() {
                        Ok(Some((2, FieldValue::Bytes(payload)))) => {
                            decode_sample_payload(payload, ids, vals)?;
                            return Ok(true);
                        }
                        Ok(Some(_)) => {}
                        Ok(None) => return Ok(false),
                        Err(StreamError::Wire(e)) => return Err(e.into()),
                        Err(StreamError::Source(e)) => return Err(e.into()),
                    }
                }
            })
        },
    )
}

/// Pulls the rest of the chunk source, returning the first error. Used
/// after a wire error to find any container error the buffered path
/// would have reported first.
fn drain_source<S: ChunkSource>(reader: &mut StreamReader<S>) -> Option<S::Error> {
    let mut sink = Vec::new();
    loop {
        sink.clear();
        match reader.source_mut().read_chunk(&mut sink) {
            Ok(true) => {}
            Ok(false) => return None,
            Err(e) => return Some(e),
        }
    }
}

/// The streaming twin of [`parse_onepass`]'s walk: identical field
/// dispatch over a [`StreamReader`] instead of a contiguous slice.
/// Strings are copied out (their chunk is recycled on the next refill)
/// and sample payloads are only *counted* — their contents are decoded
/// by the replay pass, exactly as the buffered walk defers payload
/// slices undecoded.
fn walk_stream(
    reader: &mut StreamReader<impl ChunkSource<Error = FlateError>>,
) -> Result<StreamWalk, StreamError<FlateError>> {
    let _wire_span = ev_trace::span("wire.decode");
    let mut strings: Vec<String> = Vec::new();
    let mut sample_types: Vec<ValueType> = Vec::new();
    let mut locs: Vec<LocRec> = Vec::new();
    let mut lines: Arena<Line> = Arena::new();
    let mut functions: Vec<Function> = Vec::new();
    let mut mappings: Vec<Mapping> = Vec::new();
    let mut time_nanos: i64 = 0;
    let mut sample_count = 0usize;

    while let Some((field, value)) = reader.next_field()? {
        match (field, value) {
            (1, FieldValue::Bytes(msg)) => sample_types.push(decode_value_type(msg)?),
            (2, FieldValue::Bytes(_)) => sample_count += 1,
            (3, FieldValue::Bytes(msg)) => mappings.push(decode_mapping(msg)?),
            (4, FieldValue::Bytes(msg)) => locs.push(decode_location(msg, &mut lines)?),
            (5, FieldValue::Bytes(msg)) => functions.push(decode_function(msg)?),
            (6, FieldValue::Bytes(msg)) => strings.push(
                std::str::from_utf8(msg)
                    .map_err(|_| WireError::InvalidUtf8)?
                    .to_owned(),
            ),
            (9, FieldValue::Varint(v)) => time_nanos = v as i64,
            _ => {}
        }
    }

    Ok(StreamWalk {
        strings,
        tables: WalkTables {
            sample_types,
            locs,
            lines,
            functions,
            mappings,
            time_nanos,
        },
        sample_count,
    })
}

/// The two-pass decode kept as the differential reference: pass 1
/// materializes owned string/location/function/mapping tables, pass 2
/// re-walks the body for the samples.
fn parse_twopass(body: &[u8]) -> Result<Profile, FormatError> {
    use ev_wire::WireType;

    let mut strings: Vec<String> = Vec::new();
    let mut sample_types: Vec<ValueType> = Vec::new();
    let mut locations: Vec<Location> = Vec::new();
    let mut functions: Vec<Function> = Vec::new();
    let mut mappings: Vec<Mapping> = Vec::new();
    let mut time_nanos: i64 = 0;

    let wire_span = ev_trace::span("wire.decode");
    let mut r = Reader::new(body);
    while let Some((field, ty)) = r.read_tag()? {
        // Known fields carried on the wrong wire type are skipped as
        // unknown, per protobuf conformance — both decoders agree.
        match (field, ty) {
            (1, WireType::LengthDelimited) => {
                let mut m = r.read_message()?;
                let mut vt = ValueType::default();
                while let Some((f, t)) = m.read_tag()? {
                    match (f, t) {
                        (1, WireType::Varint) => vt.r#type = m.read_int64()?,
                        (2, WireType::Varint) => vt.unit = m.read_int64()?,
                        _ => m.skip(t)?,
                    }
                }
                sample_types.push(vt);
            }
            (2, _) => {
                // Samples are replayed in a second pass, once the
                // location/function tables are known; skip here.
                r.skip(ty)?;
            }
            (3, WireType::LengthDelimited) => {
                let mut m = r.read_message()?;
                let mut mp = Mapping::default();
                while let Some((f, t)) = m.read_tag()? {
                    match (f, t) {
                        (1, WireType::Varint) => mp.id = m.read_varint()?,
                        (5, WireType::Varint) => mp.filename = m.read_int64()?,
                        _ => m.skip(t)?,
                    }
                }
                mappings.push(mp);
            }
            (4, WireType::LengthDelimited) => {
                let mut m = r.read_message()?;
                let mut loc = Location::default();
                while let Some((f, t)) = m.read_tag()? {
                    match (f, t) {
                        (1, WireType::Varint) => loc.id = m.read_varint()?,
                        (2, WireType::Varint) => loc.mapping_id = m.read_varint()?,
                        (3, WireType::Varint) => loc.address = m.read_varint()?,
                        (4, WireType::LengthDelimited) => {
                            let mut lm = m.read_message()?;
                            let mut line = Line::default();
                            while let Some((lf, lt)) = lm.read_tag()? {
                                match (lf, lt) {
                                    (1, WireType::Varint) => line.function_id = lm.read_varint()?,
                                    (2, WireType::Varint) => line.line = lm.read_int64()?,
                                    _ => lm.skip(lt)?,
                                }
                            }
                            loc.lines.push(line);
                        }
                        _ => m.skip(t)?,
                    }
                }
                locations.push(loc);
            }
            (5, WireType::LengthDelimited) => {
                let mut m = r.read_message()?;
                let mut func = Function::default();
                while let Some((f, t)) = m.read_tag()? {
                    match (f, t) {
                        (1, WireType::Varint) => func.id = m.read_varint()?,
                        (2, WireType::Varint) => func.name = m.read_int64()?,
                        (4, WireType::Varint) => func.filename = m.read_int64()?,
                        _ => m.skip(t)?,
                    }
                }
                functions.push(func);
            }
            (6, WireType::LengthDelimited) => strings.push(r.read_string()?.to_owned()),
            (9, WireType::Varint) => time_nanos = r.read_int64()?,
            _ => r.skip(ty)?,
        }
    }
    drop(wire_span);

    let string_at = |idx: i64| -> &str {
        strings
            .get(idx.max(0) as usize)
            .map(String::as_str)
            .unwrap_or("")
    };

    let functions_by_id: HashMap<u64, Function> =
        functions.iter().map(|f| (f.id, *f)).collect();
    let mappings_by_id: HashMap<u64, Mapping> = mappings.iter().map(|m| (m.id, *m)).collect();
    let mut profile = Profile::new("pprof");
    profile.meta_mut().profiler = "pprof".to_owned();
    profile.meta_mut().timestamp_nanos = time_nanos.max(0) as u64;

    let metric_ids: Vec<MetricId> = sample_types
        .iter()
        .map(|vt| {
            let name = string_at(vt.r#type).to_owned();
            let unit = unit_from_str(string_at(vt.unit));
            profile.add_metric(MetricDescriptor::new(
                if name.is_empty() { "samples".to_owned() } else { name },
                unit,
                MetricKind::Exclusive,
            ))
        })
        .collect();

    // Second pass: replay the sample records. Clarity over speed —
    // every sample step resolves its location to an owned [`Frame`] and
    // inserts it through the string-hashing [`Profile::child`] API.
    // This is the plainest possible statement of the pprof→CCT
    // semantics, the same way `inflate_reference` spells out RFC 1951
    // symbol by symbol; the one-pass decoder is differentially checked
    // against it, including the intern order its per-step
    // `Frame::intern` calls induce (name, module, file, at a location's
    // first use by a sample).
    let locations_by_id: HashMap<u64, &Location> =
        locations.iter().map(|l| (l.id, l)).collect();
    let root = profile.root();
    let mut location_ids: Vec<u64> = Vec::new();
    let mut values: Vec<i64> = Vec::new();
    let _wire_span = ev_trace::span("wire.decode");
    let mut r = Reader::new(body);
    while let Some((field, ty)) = r.read_tag()? {
        if field != 2 || ty != WireType::LengthDelimited {
            r.skip(ty)?;
            continue;
        }
        let mut m = r.read_message()?;
        location_ids.clear();
        values.clear();
        while let Some((f, t)) = m.read_tag()? {
            match (f, t) {
                (1, WireType::LengthDelimited) => m.read_packed_uint64(&mut location_ids)?,
                (1, WireType::Varint) => location_ids.push(m.read_varint()?),
                (2, WireType::LengthDelimited) => m.read_packed_int64(&mut values)?,
                (2, WireType::Varint) => values.push(m.read_varint()? as i64),
                _ => m.skip(t)?,
            }
        }
        let mut node = root;
        // location_ids are leaf-first; the CCT wants outermost first.
        for &loc_id in location_ids.iter().rev() {
            let Some(loc) = locations_by_id.get(&loc_id) else {
                return Err(FormatError::Schema(format!(
                    "sample references unknown location {loc_id}"
                )));
            };
            let module = mappings_by_id
                .get(&loc.mapping_id)
                .map(|m| string_at(m.filename))
                .unwrap_or("");
            if loc.lines.is_empty() {
                // Unsymbolized location: synthesize a frame from the address.
                let frame = Frame::function(format!("0x{:x}", loc.address))
                    .with_module(module)
                    .with_address(loc.address);
                node = profile.child(node, &frame);
            } else {
                // lines[0] is the leaf-most inline frame; emit outermost first.
                for line in loc.lines.iter().rev() {
                    let func = functions_by_id
                        .get(&line.function_id)
                        .copied()
                        .unwrap_or_default();
                    let frame = Frame::function(string_at(func.name))
                        .with_module(module)
                        .with_source(string_at(func.filename), line.line.max(0) as u32)
                        .with_address(loc.address);
                    node = profile.child(node, &frame);
                }
            }
        }
        for (i, &v) in values.iter().enumerate() {
            if let Some(&metric) = metric_ids.get(i) {
                if v != 0 {
                    profile.add_value(node, metric, v as f64);
                }
            }
        }
    }

    Ok(profile)
}

/// Options for [`write()`].
#[derive(Debug, Clone, Copy)]
pub struct WriteOptions {
    /// Wrap the protobuf body in a gzip member (Go's default).
    pub gzip: bool,
    /// Compression level when gzipping.
    pub level: CompressionLevel,
}

impl Default for WriteOptions {
    fn default() -> WriteOptions {
        WriteOptions {
            gzip: true,
            level: CompressionLevel::Fast,
        }
    }
}

/// Serializes a profile as a pprof file.
///
/// Each profile metric becomes a `sample_type`; every node carrying
/// values becomes a `Sample` whose location chain is its call path
/// (leaf first). One `Location`/`Function` pair is emitted per distinct
/// frame, one `Mapping` per distinct load module.
pub fn write(profile: &Profile, options: WriteOptions) -> Vec<u8> {
    let mut strings: Vec<String> = vec![String::new()];
    let mut string_ids: HashMap<String, i64> = HashMap::new();
    string_ids.insert(String::new(), 0);

    fn intern_in(
        s: &str,
        strings: &mut Vec<String>,
        string_ids: &mut HashMap<String, i64>,
    ) -> i64 {
        if let Some(&id) = string_ids.get(s) {
            return id;
        }
        let id = strings.len() as i64;
        strings.push(s.to_owned());
        string_ids.insert(s.to_owned(), id);
        id
    }

    // Assign location/function/mapping ids per distinct frame identity.
    struct Tables {
        functions: Vec<(u64, i64, i64)>,          // id, name sid, file sid
        function_ids: HashMap<(i64, i64), u64>,   // (name, file) -> id
        mappings: Vec<(u64, i64)>,                // id, filename sid
        mapping_ids: HashMap<i64, u64>,           // filename -> id
        locations: Vec<(u64, u64, u64, u64, i64)>, // id, mapping, address, function, line
        location_ids: HashMap<(u64, u64, u64, i64), u64>,
    }
    let mut t = Tables {
        functions: Vec::new(),
        function_ids: HashMap::new(),
        mappings: Vec::new(),
        mapping_ids: HashMap::new(),
        locations: Vec::new(),
        location_ids: HashMap::new(),
    };

    // Location id per CCT node, computed once per node (0 = not yet).
    let mut loc_of_node: Vec<u64> = vec![0; profile.node_count()];
    let loc_for = |node: ev_core::NodeId,
                       t: &mut Tables,
                       strings: &mut Vec<String>,
                       string_ids: &mut HashMap<String, i64>,
                       loc_of_node: &mut Vec<u64>|
     -> u64 {
        if loc_of_node[node.index()] != 0 {
            return loc_of_node[node.index()];
        }
        let frame = profile.resolve_frame(node);
        let name_sid = intern_in(&frame.name, strings, string_ids);
        let file_sid = intern_in(&frame.file, strings, string_ids);
        let func_id = *t
            .function_ids
            .entry((name_sid, file_sid))
            .or_insert_with(|| {
                let id = t.functions.len() as u64 + 1;
                t.functions.push((id, name_sid, file_sid));
                id
            });
        let module_sid = intern_in(&frame.module, strings, string_ids);
        let mapping_id = *t.mapping_ids.entry(module_sid).or_insert_with(|| {
            let id = t.mappings.len() as u64 + 1;
            t.mappings.push((id, module_sid));
            id
        });
        let key = (mapping_id, frame.address, func_id, i64::from(frame.line));
        let loc_id = *t.location_ids.entry(key).or_insert_with(|| {
            let id = t.locations.len() as u64 + 1;
            t.locations
                .push((id, mapping_id, frame.address, func_id, i64::from(frame.line)));
            id
        });
        loc_of_node[node.index()] = loc_id;
        loc_id
    };

    let mut samples: Vec<(Vec<u64>, Vec<i64>)> = Vec::new();
    for node in profile.node_ids() {
        let n = profile.node(node);
        if n.values().is_empty() {
            continue;
        }
        // Walk parent pointers: leaf-first, exactly pprof's order.
        let mut loc_chain: Vec<u64> = Vec::new();
        let mut step = Some(node);
        while let Some(current) = step {
            if current == profile.root() {
                break;
            }
            loc_chain.push(loc_for(
                current,
                &mut t,
                &mut strings,
                &mut string_ids,
                &mut loc_of_node,
            ));
            step = profile.node(current).parent();
        }
        let values: Vec<i64> = profile
            .metrics()
            .iter()
            .enumerate()
            .map(|(i, _)| profile.value(node, MetricId::from_index(i)) as i64)
            .collect();
        samples.push((loc_chain, values));
    }

    let mut sample_type_sids: Vec<(i64, i64)> = Vec::new();
    for metric in profile.metrics() {
        let ty = intern_in(&metric.name, &mut strings, &mut string_ids);
        let unit = intern_in(unit_to_str(metric.unit), &mut strings, &mut string_ids);
        sample_type_sids.push((ty, unit));
    }

    let mut w = Writer::with_capacity(samples.len() * 32 + strings.len() * 16);
    for &(ty, unit) in &sample_type_sids {
        w.write_message_with(1, |m| {
            if ty != 0 {
                m.write_int64(1, ty);
            }
            if unit != 0 {
                m.write_int64(2, unit);
            }
        });
    }
    for (loc_chain, values) in &samples {
        w.write_message_with(2, |m| {
            m.write_packed_uint64(1, loc_chain);
            m.write_packed_int64(2, values);
        });
    }
    for &(id, filename) in &t.mappings {
        w.write_message_with(3, |m| {
            m.write_uint64(1, id);
            if filename != 0 {
                m.write_int64(5, filename);
            }
        });
    }
    for &(id, mapping, address, function, line) in &t.locations {
        w.write_message_with(4, |m| {
            m.write_uint64(1, id);
            if mapping != 0 {
                m.write_uint64(2, mapping);
            }
            if address != 0 {
                m.write_uint64(3, address);
            }
            m.write_message_with(4, |lm| {
                lm.write_uint64(1, function);
                if line != 0 {
                    lm.write_int64(2, line);
                }
            });
        });
    }
    for &(id, name, filename) in &t.functions {
        w.write_message_with(5, |m| {
            m.write_uint64(1, id);
            if name != 0 {
                m.write_int64(2, name);
            }
            if filename != 0 {
                m.write_int64(4, filename);
            }
        });
    }
    for s in &strings {
        w.write_string(6, s);
    }
    if profile.meta().timestamp_nanos != 0 {
        w.write_int64(9, profile.meta().timestamp_nanos as i64);
    }

    let body = w.into_bytes();
    if options.gzip {
        gzip_compress(&body, options.level)
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::{Frame, NodeId};

    fn sample_profile() -> Profile {
        let mut p = Profile::new("s");
        let cpu = p.add_metric(MetricDescriptor::new(
            "cpu",
            MetricUnit::Nanoseconds,
            MetricKind::Exclusive,
        ));
        let allocs = p.add_metric(MetricDescriptor::new(
            "alloc_space",
            MetricUnit::Bytes,
            MetricKind::Exclusive,
        ));
        p.add_sample(
            &[
                Frame::function("main").with_module("app").with_source("main.go", 10),
                Frame::function("handler").with_module("app").with_source("h.go", 20),
            ],
            &[(cpu, 500.0), (allocs, 1024.0)],
        );
        p.add_sample(
            &[
                Frame::function("main").with_module("app").with_source("main.go", 10),
                Frame::function("gc").with_module("runtime"),
            ],
            &[(cpu, 300.0)],
        );
        p
    }

    #[test]
    fn roundtrip_preserves_structure_and_totals() {
        let p = sample_profile();
        let bytes = write(&p, WriteOptions::default());
        assert!(is_gzip(&bytes));
        let q = parse(&bytes).unwrap();
        q.validate().unwrap();
        assert_eq!(q.node_count(), p.node_count());
        assert_eq!(q.metrics().len(), 2);
        assert!(q.metric_by_name("cpu").is_some());
        let cpu = q.metric_by_name("cpu").unwrap();
        assert_eq!(q.total(cpu), 800.0);
        let alloc = q.metric_by_name("alloc_space").unwrap();
        assert_eq!(q.total(alloc), 1024.0);
        // Units survive.
        assert_eq!(q.metric(cpu).unit, MetricUnit::Nanoseconds);
        assert_eq!(q.metric(alloc).unit, MetricUnit::Bytes);
    }

    #[test]
    fn roundtrip_uncompressed() {
        let p = sample_profile();
        let bytes = write(
            &p,
            WriteOptions {
                gzip: false,
                level: CompressionLevel::Store,
            },
        );
        assert!(!is_gzip(&bytes));
        let q = parse(&bytes).unwrap();
        assert_eq!(q.node_count(), p.node_count());
    }

    #[test]
    fn call_paths_survive() {
        let p = sample_profile();
        let q = parse(&write(&p, WriteOptions::default())).unwrap();
        // Find handler and verify its parent is main.
        let handler = q
            .node_ids()
            .find(|&id| q.resolve_frame(id).name == "handler")
            .unwrap();
        let parent = q.node(handler).parent().unwrap();
        assert_eq!(q.resolve_frame(parent).name, "main");
        assert_eq!(q.resolve_frame(parent).line, 10);
        assert_eq!(q.resolve_frame(handler).file, "h.go");
        assert_eq!(q.resolve_frame(handler).module, "app");
    }

    #[test]
    fn hand_built_pprof_with_inlining() {
        // Build a raw pprof message by hand: one sample through a
        // location with two inline lines.
        let mut w = Writer::new();
        // sample_type { type: "cpu"(1), unit: "count"(2) }
        w.write_message_with(1, |m| {
            m.write_int64(1, 1);
            m.write_int64(2, 2);
        });
        // sample { location_id: [1], value: [7] }
        w.write_message_with(2, |m| {
            m.write_packed_uint64(1, &[1]);
            m.write_packed_int64(2, &[7]);
        });
        // location { id: 1, line: [{fn 1, line 5}, {fn 2, line 50}] }
        // line[0] = leaf-most inline frame (callee).
        w.write_message_with(4, |m| {
            m.write_uint64(1, 1);
            m.write_message_with(4, |lm| {
                lm.write_uint64(1, 1);
                lm.write_int64(2, 5);
            });
            m.write_message_with(4, |lm| {
                lm.write_uint64(1, 2);
                lm.write_int64(2, 50);
            });
        });
        // functions: 1 = "inlined_callee", 2 = "caller"
        w.write_message_with(5, |m| {
            m.write_uint64(1, 1);
            m.write_int64(2, 3);
        });
        w.write_message_with(5, |m| {
            m.write_uint64(1, 2);
            m.write_int64(2, 4);
        });
        for s in ["", "cpu", "count", "inlined_callee", "caller"] {
            w.write_string(6, s);
        }
        let profile = parse(w.as_bytes()).unwrap();
        profile.validate().unwrap();
        // Expect root -> caller -> inlined_callee with value at the leaf.
        let leaf = profile
            .node_ids()
            .find(|&id| profile.resolve_frame(id).name == "inlined_callee")
            .unwrap();
        let caller = profile.node(leaf).parent().unwrap();
        assert_eq!(profile.resolve_frame(caller).name, "caller");
        let cpu = profile.metric_by_name("cpu").unwrap();
        assert_eq!(profile.value(leaf, cpu), 7.0);
        assert_eq!(profile.value(caller, cpu), 0.0);
    }

    #[test]
    fn unknown_location_is_schema_error() {
        let mut w = Writer::new();
        w.write_message_with(2, |m| {
            m.write_packed_uint64(1, &[42]);
            m.write_packed_int64(2, &[1]);
        });
        w.write_string(6, "");
        let err = parse(w.as_bytes()).unwrap_err();
        assert!(matches!(err, FormatError::Schema(_)), "{err:?}");
    }

    #[test]
    fn unsymbolized_location_synthesizes_address_frame() {
        let mut w = Writer::new();
        w.write_message_with(1, |m| {
            m.write_int64(1, 1);
            m.write_int64(2, 2);
        });
        w.write_message_with(2, |m| {
            m.write_packed_uint64(1, &[1]);
            m.write_packed_int64(2, &[3]);
        });
        w.write_message_with(4, |m| {
            m.write_uint64(1, 1);
            m.write_uint64(3, 0xdeadbeef);
        });
        for s in ["", "samples", "count"] {
            w.write_string(6, s);
        }
        let profile = parse(w.as_bytes()).unwrap();
        let leaf = profile
            .node_ids()
            .find(|&id| profile.node(id).children().is_empty() && id != NodeId::ROOT)
            .unwrap();
        assert_eq!(profile.resolve_frame(leaf).name, "0xdeadbeef");
        assert_eq!(profile.resolve_frame(leaf).address, 0xdeadbeef);
    }

    #[test]
    fn empty_profile_parses() {
        let profile = parse(&[]).unwrap();
        assert_eq!(profile.node_count(), 1);
        assert!(profile.metrics().is_empty());
    }

    /// Chunk sizes covering the degenerate (1 byte), the
    /// mid-stream-suspend, and the everything-in-one-pull regimes.
    const CHUNK_SIZES: [usize; 4] = [1, 13, 4096, 1 << 24];

    #[test]
    fn streaming_matches_buffered_on_roundtrip() {
        let p = sample_profile();
        for gz in [true, false] {
            let bytes = write(
                &p,
                WriteOptions {
                    gzip: gz,
                    level: CompressionLevel::Fast,
                },
            );
            let buffered = parse(&bytes).unwrap();
            for &chunk in &CHUNK_SIZES {
                for threads in [1, 4] {
                    let streamed =
                        parse_streaming_with(&bytes, ExecPolicy::with_threads(threads), chunk)
                            .unwrap();
                    assert_eq!(streamed, buffered, "gzip={gz} chunk={chunk}");
                }
            }
        }
    }

    #[test]
    fn streaming_matches_buffered_on_errors() {
        let p = sample_profile();
        let good = write(&p, WriteOptions::default());
        let mut corrupt = good.clone();
        let n = corrupt.len();
        corrupt[n / 2] ^= 0xff;
        let mut bad_trailer = good.clone();
        let n = bad_trailer.len();
        bad_trailer[n - 6] ^= 0x01; // CRC byte
        let raw = write(
            &p,
            WriteOptions {
                gzip: false,
                level: CompressionLevel::Store,
            },
        );
        let truncated_raw = &raw[..raw.len() - 3];
        for case in [&corrupt[..], &bad_trailer, truncated_raw, &good[..n - 5]] {
            let buffered = parse(case);
            for &chunk in &CHUNK_SIZES {
                for threads in [1, 4] {
                    let streamed =
                        parse_streaming_with(case, ExecPolicy::with_threads(threads), chunk);
                    assert_eq!(streamed, buffered, "chunk={chunk} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn streaming_surfaces_schema_error_identically() {
        let mut w = Writer::new();
        w.write_message_with(2, |m| {
            m.write_packed_uint64(1, &[42]);
            m.write_packed_int64(2, &[1]);
        });
        w.write_string(6, "");
        let buffered = parse(w.as_bytes());
        for &chunk in &CHUNK_SIZES {
            let streamed =
                parse_streaming_with(w.as_bytes(), ExecPolicy::SEQUENTIAL, chunk);
            assert_eq!(streamed, buffered);
        }
    }

    #[test]
    fn corrupted_gzip_is_container_error() {
        let p = sample_profile();
        let mut bytes = write(&p, WriteOptions::default());
        let n = bytes.len();
        bytes[n / 2] ^= 0xff;
        assert!(matches!(
            parse(&bytes),
            Err(FormatError::Container(_)) | Err(FormatError::Schema(_))
        ));
    }
}

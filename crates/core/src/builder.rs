//! The data-builder API (paper §IV-B).
//!
//! Profilers adapt to EasyView either by emitting its format directly or
//! through converters. The paper reports that direct emission takes
//! "less than 20 lines of code" — this stack-shaped builder is the API
//! that makes that true: a profiler's existing enter/exit or unwind
//! callbacks map one-to-one onto [`ProfileBuilder::push`],
//! [`ProfileBuilder::pop`], and [`ProfileBuilder::sample`].

use crate::frame::Frame;
use crate::link::ContextLink;
use crate::metric::{MetricDescriptor, MetricId};
use crate::profile::{NodeId, Profile};
use crate::CoreError;

/// An incremental, stack-shaped profile writer.
///
/// # Examples
///
/// Adapting an imaginary instrumentation tool (the entire adaptation —
/// well under the paper's 20-line bound):
///
/// ```
/// use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit, ProfileBuilder};
///
/// let mut b = ProfileBuilder::new("tool-output");
/// let bytes = b.add_metric(MetricDescriptor::new(
///     "alloc",
///     MetricUnit::Bytes,
///     MetricKind::Exclusive,
/// ));
/// // on_function_enter:
/// b.push(Frame::function("main"));
/// b.push(Frame::function("parse"));
/// // on_allocation:
/// b.sample(&[(bytes, 4096.0)]);
/// // on_function_exit:
/// b.pop();
/// let profile = b.finish();
/// assert_eq!(profile.total(bytes), 4096.0);
/// ```
#[derive(Debug)]
pub struct ProfileBuilder {
    profile: Profile,
    stack: Vec<NodeId>,
}

impl ProfileBuilder {
    /// Creates a builder for a new profile.
    pub fn new(name: impl Into<String>) -> ProfileBuilder {
        ProfileBuilder {
            profile: Profile::new(name),
            stack: Vec::new(),
        }
    }

    /// Registers a metric channel.
    pub fn add_metric(&mut self, descriptor: MetricDescriptor) -> MetricId {
        self.profile.add_metric(descriptor)
    }

    /// Sets the producing profiler's name in the metadata.
    pub fn profiler(&mut self, name: impl Into<String>) -> &mut ProfileBuilder {
        self.profile.meta_mut().profiler = name.into();
        self
    }

    /// The node currently on top of the frame stack (the root when the
    /// stack is empty).
    pub fn current(&self) -> NodeId {
        self.stack.last().copied().unwrap_or(NodeId::ROOT)
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Enters `frame` (function call, loop entry, allocation context…),
    /// merging with an existing sibling when the frame matches.
    pub fn push(&mut self, frame: Frame) -> NodeId {
        let node = self.profile.child(self.current(), &frame);
        self.stack.push(node);
        node
    }

    /// Leaves the innermost frame.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StackUnderflow`] when the stack is empty.
    pub fn pop(&mut self) -> Result<NodeId, CoreError> {
        self.stack.pop().ok_or(CoreError::StackUnderflow)
    }

    /// Records metric values at the current monitoring point.
    pub fn sample(&mut self, values: &[(MetricId, f64)]) -> NodeId {
        let node = self.current();
        for &(metric, value) in values {
            self.profile.add_value(node, metric, value);
        }
        node
    }

    /// Records a complete call path in one call (for unwinding-based
    /// profilers that deliver whole backtraces).
    pub fn sample_path(&mut self, path: &[Frame], values: &[(MetricId, f64)]) -> NodeId {
        self.profile.add_sample(path, values)
    }

    /// Registers a cross-context link.
    pub fn link(&mut self, link: ContextLink) -> &mut ProfileBuilder {
        self.profile.add_link(link);
        self
    }

    /// Read access to the profile under construction (e.g. to mint
    /// [`NodeId`]s for links).
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Finishes building, returning the profile. Any frames still on the
    /// stack are implicitly popped.
    pub fn finish(self) -> Profile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkKind;
    use crate::metric::{MetricKind, MetricUnit};

    fn counter(b: &mut ProfileBuilder) -> MetricId {
        b.add_metric(MetricDescriptor::new(
            "n",
            MetricUnit::Count,
            MetricKind::Exclusive,
        ))
    }

    #[test]
    fn push_pop_tracks_stack() {
        let mut b = ProfileBuilder::new("t");
        assert_eq!(b.current(), NodeId::ROOT);
        assert_eq!(b.depth(), 0);
        let main = b.push(Frame::function("main"));
        assert_eq!(b.current(), main);
        assert_eq!(b.depth(), 1);
        b.push(Frame::function("leaf"));
        assert_eq!(b.depth(), 2);
        b.pop().unwrap();
        assert_eq!(b.current(), main);
        b.pop().unwrap();
        assert_eq!(b.current(), NodeId::ROOT);
        assert_eq!(b.pop(), Err(CoreError::StackUnderflow));
    }

    #[test]
    fn reentering_a_frame_merges() {
        let mut b = ProfileBuilder::new("t");
        let m = counter(&mut b);
        for _ in 0..3 {
            b.push(Frame::function("main"));
            b.push(Frame::function("f"));
            b.sample(&[(m, 1.0)]);
            b.pop().unwrap();
            b.pop().unwrap();
        }
        let p = b.finish();
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.total(m), 3.0);
        p.validate().unwrap();
    }

    #[test]
    fn sample_at_root_attaches_to_root() {
        let mut b = ProfileBuilder::new("t");
        let m = counter(&mut b);
        b.sample(&[(m, 5.0)]);
        let p = b.finish();
        assert_eq!(p.value(NodeId::ROOT, m), 5.0);
    }

    #[test]
    fn sample_path_does_not_disturb_stack() {
        let mut b = ProfileBuilder::new("t");
        let m = counter(&mut b);
        let main = b.push(Frame::function("main"));
        b.sample_path(
            &[Frame::function("other"), Frame::function("leaf")],
            &[(m, 2.0)],
        );
        assert_eq!(b.current(), main);
        let p = b.finish();
        assert_eq!(p.total(m), 2.0);
        assert_eq!(p.node_count(), 4);
    }

    #[test]
    fn links_and_metadata() {
        let mut b = ProfileBuilder::new("t");
        let m = counter(&mut b);
        b.profiler("drcctprof");
        let use_ctx = b.push(Frame::function("use"));
        b.pop().unwrap();
        let reuse_ctx = b.push(Frame::function("reuse"));
        b.pop().unwrap();
        b.link(
            ContextLink::new(LinkKind::UseReuse)
                .with_endpoint(use_ctx)
                .with_endpoint(reuse_ctx)
                .with_value(m, 3.0),
        );
        let p = b.finish();
        assert_eq!(p.meta().profiler, "drcctprof");
        assert_eq!(p.links().len(), 1);
        assert_eq!(p.links()[0].value(m), 3.0);
        p.validate().unwrap();
    }

    #[test]
    fn unfinished_stack_is_fine() {
        let mut b = ProfileBuilder::new("t");
        b.push(Frame::function("main"));
        b.push(Frame::function("leaf"));
        let p = b.finish();
        assert_eq!(p.node_count(), 3);
        p.validate().unwrap();
    }
}

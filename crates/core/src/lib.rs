//! `ev-core` — EasyView's generic profile representation (paper §IV-A).
//!
//! EasyView unifies the output of more than 50 profilers into one
//! representation built from four common features:
//!
//! * **Profiling contexts** — code regions at any granularity (program,
//!   function, loop, basic block, instruction) *and* data objects (heap
//!   allocations identified by their allocation call path, static objects
//!   identified by symbol name). See [`ContextKind`] and [`Frame`].
//! * **Metrics** — named, typed measurement channels ([`MetricDescriptor`])
//!   whose values attach to monitoring points.
//! * **Call paths** — monitoring points are organized into a compact
//!   calling context tree ([`Profile`]) by merging common call-path
//!   prefixes, minimizing memory and disk footprint (paper Fig. 2).
//! * **Code mapping** — every frame can carry a load module, source file,
//!   line number, and instruction address for binary/source attribution.
//!
//! Beyond the common features, the representation supports the paper's
//! advanced ones: multiple metrics per monitoring point, and metrics that
//! span *multiple* contexts ([`ContextLink`]) — data reuse pairs,
//! redundant/killing pairs, data races, false sharing (§IV-A).
//!
//! Profiles serialize to a protobuf-encoded binary format (the paper
//! expresses the schema in Protocol Buffers); see [`mod@format`]. Producers
//! adapt to EasyView through the [`ProfileBuilder`] data-builder API
//! (§IV-B) or through the converters in `ev-formats`.
//!
//! # Examples
//!
//! Building a tiny CPU profile through the data-builder API:
//!
//! ```
//! use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit, ProfileBuilder};
//!
//! let mut b = ProfileBuilder::new("quickstart");
//! let cpu = b.add_metric(MetricDescriptor::new(
//!     "cpu",
//!     MetricUnit::Nanoseconds,
//!     MetricKind::Exclusive,
//! ));
//! b.push(Frame::function("main"));
//! b.push(Frame::function("compute"));
//! b.sample(&[(cpu, 800.0)]);
//! b.pop();
//! b.push(Frame::function("io"));
//! b.sample(&[(cpu, 200.0)]);
//! let profile = b.finish();
//!
//! assert_eq!(profile.node_count(), 4); // root, main, compute, io
//! assert_eq!(profile.total(cpu), 1000.0);
//! ```

pub mod arena;
mod builder;
pub mod fast_hash;
pub mod format;
mod frame;
mod link;
mod metric;
mod profile;
mod string_table;

pub use builder::ProfileBuilder;
pub use frame::{ContextKind, Frame, FrameRef};
pub use link::{ContextLink, LinkKind};
pub use metric::{MetricDescriptor, MetricId, MetricKind, MetricUnit};
pub use profile::{Node, NodeId, Profile, ProfileMeta};
pub use string_table::{StringId, StringTable};

use std::error::Error;
use std::fmt;

/// Errors produced by `ev-core` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A [`NodeId`] that does not name a node in this profile.
    InvalidNodeId(u32),
    /// A [`MetricId`] that does not name a registered metric.
    InvalidMetricId(u16),
    /// A [`StringId`] outside the string table.
    InvalidStringId(u32),
    /// Attempted to pop past the root in [`ProfileBuilder`].
    StackUnderflow,
    /// Deserialization failed.
    Format(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidNodeId(id) => write!(f, "invalid node id {id}"),
            CoreError::InvalidMetricId(id) => write!(f, "invalid metric id {id}"),
            CoreError::InvalidStringId(id) => write!(f, "invalid string id {id}"),
            CoreError::StackUnderflow => write!(f, "pop would underflow the frame stack"),
            CoreError::Format(msg) => write!(f, "malformed profile: {msg}"),
        }
    }
}

impl Error for CoreError {}

impl From<ev_wire::WireError> for CoreError {
    fn from(err: ev_wire::WireError) -> CoreError {
        CoreError::Format(err.to_string())
    }
}

//! Cross-context links: metrics that span multiple monitoring points.
//!
//! The paper's representation can "associate multiple contexts and
//! monitoring points to a single metric" (§IV-A) — the feature powering
//! the correlated flame graphs of §VI-A and the LULESH locality case
//! study (§VII-C2, Fig. 7). A [`ContextLink`] records one such tuple:
//! e.g. a data-reuse pair (use context, reuse context, and optionally the
//! allocation context of the object), a redundant/killing pair, the two
//! racing accesses of a data race, or the two ping-ponging accesses of
//! false sharing.

use crate::metric::MetricId;
use crate::profile::NodeId;
use std::fmt;

/// The analysis that produced a [`ContextLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Data reuse: endpoints are `[allocation, use, reuse]` contexts
    /// (DrCCTProf-style locality analysis).
    UseReuse,
    /// Computation redundancy: endpoints are `[redundant, killing]`
    /// contexts (RedSpy/LoadSpy-style).
    RedundantKilling,
    /// A data race: the two conflicting access contexts.
    DataRace,
    /// False sharing: the two contexts ping-ponging on one cache line.
    FalseSharing,
    /// A heap object's allocation context linked to its access contexts
    /// (data-centric memory profiling).
    AllocAccess,
    /// An application-defined link.
    Custom,
}

impl LinkKind {
    /// Stable numeric encoding used by the binary format.
    pub fn to_code(self) -> u64 {
        match self {
            LinkKind::UseReuse => 0,
            LinkKind::RedundantKilling => 1,
            LinkKind::DataRace => 2,
            LinkKind::FalseSharing => 3,
            LinkKind::AllocAccess => 4,
            LinkKind::Custom => 5,
        }
    }

    /// Inverse of [`LinkKind::to_code`]; unknown codes decode as
    /// [`LinkKind::Custom`].
    pub fn from_code(code: u64) -> LinkKind {
        match code {
            0 => LinkKind::UseReuse,
            1 => LinkKind::RedundantKilling,
            2 => LinkKind::DataRace,
            3 => LinkKind::FalseSharing,
            4 => LinkKind::AllocAccess,
            _ => LinkKind::Custom,
        }
    }
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LinkKind::UseReuse => "use-reuse",
            LinkKind::RedundantKilling => "redundant-killing",
            LinkKind::DataRace => "data-race",
            LinkKind::FalseSharing => "false-sharing",
            LinkKind::AllocAccess => "alloc-access",
            LinkKind::Custom => "custom",
        };
        f.write_str(name)
    }
}

/// One metric tuple spanning several contexts of the same profile.
///
/// # Examples
///
/// ```
/// use ev_core::{ContextLink, LinkKind, MetricId, NodeId};
///
/// let link = ContextLink::new(LinkKind::UseReuse)
///     .with_endpoint(NodeId::ROOT) // allocation context
///     .with_endpoint(NodeId::ROOT) // use context
///     .with_endpoint(NodeId::ROOT) // reuse context
///     .with_value(MetricId::from_index(0), 1024.0);
/// assert_eq!(link.endpoints().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ContextLink {
    kind: LinkKind,
    endpoints: Vec<NodeId>,
    values: Vec<(MetricId, f64)>,
}

impl ContextLink {
    /// Creates an empty link of the given kind.
    pub fn new(kind: LinkKind) -> ContextLink {
        ContextLink {
            kind,
            endpoints: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends a context endpoint. Endpoint order is meaningful and
    /// kind-specific (see [`LinkKind`]).
    pub fn with_endpoint(mut self, node: NodeId) -> ContextLink {
        self.endpoints.push(node);
        self
    }

    /// Attaches a metric value to the link as a whole.
    pub fn with_value(mut self, metric: MetricId, value: f64) -> ContextLink {
        self.values.push((metric, value));
        self
    }

    /// The link kind.
    pub fn kind(&self) -> LinkKind {
        self.kind
    }

    /// The contexts this link connects, in kind-specific order.
    pub fn endpoints(&self) -> &[NodeId] {
        &self.endpoints
    }

    /// Metric values attached to the link.
    pub fn values(&self) -> &[(MetricId, f64)] {
        &self.values
    }

    /// The value of `metric` on this link, 0 if absent.
    pub fn value(&self, metric: MetricId) -> f64 {
        self.values
            .iter()
            .find(|&&(m, _)| m == metric)
            .map_or(0.0, |&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip() {
        for kind in [
            LinkKind::UseReuse,
            LinkKind::RedundantKilling,
            LinkKind::DataRace,
            LinkKind::FalseSharing,
            LinkKind::AllocAccess,
            LinkKind::Custom,
        ] {
            assert_eq!(LinkKind::from_code(kind.to_code()), kind);
        }
        assert_eq!(LinkKind::from_code(99), LinkKind::Custom);
    }

    #[test]
    fn builder_and_accessors() {
        let m = MetricId::from_index(3);
        let link = ContextLink::new(LinkKind::DataRace)
            .with_endpoint(NodeId::from_index(1))
            .with_endpoint(NodeId::from_index(2))
            .with_value(m, 7.0);
        assert_eq!(link.kind(), LinkKind::DataRace);
        assert_eq!(link.endpoints().len(), 2);
        assert_eq!(link.value(m), 7.0);
        assert_eq!(link.value(MetricId::from_index(9)), 0.0);
        assert_eq!(link.values(), [(m, 7.0)]);
    }

    #[test]
    fn display_names() {
        assert_eq!(LinkKind::UseReuse.to_string(), "use-reuse");
        assert_eq!(LinkKind::FalseSharing.to_string(), "false-sharing");
    }
}

//! The EasyView binary profile format.
//!
//! The paper expresses the generic representation "in a Protocol Buffer
//! schema" (§IV-A, Fig. 2). This module is the hand-rolled equivalent of
//! the code `protoc` would generate for that schema, built on the
//! `ev-wire` codec. The layout is a 5-byte header (`EVPF` magic + format
//! version) followed by one protobuf message:
//!
//! ```text
//! message Profile {
//!   repeated string string_table = 1;   // index = StringId
//!   repeated Metric metrics      = 2;   // index = MetricId
//!   repeated Node   nodes        = 3;   // index = NodeId, parents first
//!   repeated Link   links        = 4;
//!   Meta            meta         = 5;
//! }
//! message Metric { string name = 1; uint64 unit = 2; uint64 kind = 3;
//!                  string description = 4; }
//! message Node   { uint64 parent_plus_1 = 1; uint64 kind = 2;
//!                  uint64 name = 3; uint64 module = 4; uint64 file = 5;
//!                  uint64 line = 6; uint64 address = 7;
//!                  repeated uint64 metric_ids = 8 [packed];
//!                  repeated double values = 9 [packed]; }
//! message Link   { uint64 kind = 1;
//!                  repeated uint64 endpoints = 2 [packed];
//!                  repeated uint64 metric_ids = 3 [packed];
//!                  repeated double values = 4 [packed]; }
//! message Meta   { string name = 1; string profiler = 2;
//!                  string description = 3; uint64 timestamp = 4; }
//! ```
//!
//! Per proto3 convention, default values (empty strings, zeros) are not
//! emitted, and unknown fields are skipped on read — both directions of
//! schema evolution work.

use crate::frame::{ContextKind, FrameRef};
use crate::link::{ContextLink, LinkKind};
use crate::metric::{MetricDescriptor, MetricId, MetricKind, MetricUnit};
use crate::profile::{Node, NodeId, Profile, ProfileMeta};
use crate::string_table::{StringId, StringTable};
use crate::CoreError;
use ev_wire::{Reader, WireType, Writer};

/// Magic bytes identifying an EasyView profile file.
pub const MAGIC: &[u8; 4] = b"EVPF";
/// Current format version.
pub const VERSION: u8 = 1;

/// Returns `true` if `data` begins with the EasyView magic.
pub fn is_easyview(data: &[u8]) -> bool {
    data.len() >= 4 && &data[..4] == MAGIC
}

/// Serializes a profile to the EasyView binary format.
///
/// # Examples
///
/// ```
/// use ev_core::{format, Profile};
///
/// let p = Profile::new("roundtrip");
/// let bytes = format::to_bytes(&p);
/// assert!(format::is_easyview(&bytes));
/// assert_eq!(format::from_bytes(&bytes).unwrap(), p);
/// ```
pub fn to_bytes(profile: &Profile) -> Vec<u8> {
    let _span = ev_trace::span("wire.encode");
    let mut w = Writer::with_capacity(profile.node_count() * 24 + 64);
    // Header.
    let mut out = Vec::with_capacity(w.len() + 5);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);

    for s in profile.strings().iter() {
        w.write_string(1, s);
    }
    for metric in profile.metrics() {
        w.write_message_with(2, |m| {
            if !metric.name.is_empty() {
                m.write_string(1, &metric.name);
            }
            if metric.unit.to_code() != 0 {
                m.write_uint64(2, metric.unit.to_code());
            }
            if metric.kind.to_code() != 0 {
                m.write_uint64(3, metric.kind.to_code());
            }
            if !metric.description.is_empty() {
                m.write_string(4, &metric.description);
            }
        });
    }
    for node in profile.nodes() {
        w.write_message_with(3, |m| {
            if let Some(parent) = node.parent() {
                m.write_uint64(1, parent.index() as u64 + 1);
            }
            let frame = node.frame();
            if frame.kind.to_code() != 0 {
                m.write_uint64(2, frame.kind.to_code());
            }
            if frame.name != StringId::EMPTY {
                m.write_uint64(3, frame.name.index() as u64);
            }
            if frame.module != StringId::EMPTY {
                m.write_uint64(4, frame.module.index() as u64);
            }
            if frame.file != StringId::EMPTY {
                m.write_uint64(5, frame.file.index() as u64);
            }
            if frame.line != 0 {
                m.write_uint64(6, u64::from(frame.line));
            }
            if frame.address != 0 {
                m.write_uint64(7, frame.address);
            }
            if !node.values().is_empty() {
                let ids: Vec<u64> = node.values().iter().map(|&(id, _)| id.index() as u64).collect();
                let vals: Vec<f64> = node.values().iter().map(|&(_, v)| v).collect();
                m.write_packed_uint64(8, &ids);
                m.write_packed_double(9, &vals);
            }
        });
    }
    for link in profile.links() {
        w.write_message_with(4, |m| {
            if link.kind().to_code() != 0 {
                m.write_uint64(1, link.kind().to_code());
            }
            let endpoints: Vec<u64> =
                link.endpoints().iter().map(|n| n.index() as u64).collect();
            m.write_packed_uint64(2, &endpoints);
            if !link.values().is_empty() {
                let ids: Vec<u64> = link.values().iter().map(|&(id, _)| id.index() as u64).collect();
                let vals: Vec<f64> = link.values().iter().map(|&(_, v)| v).collect();
                m.write_packed_uint64(3, &ids);
                m.write_packed_double(4, &vals);
            }
        });
    }
    let meta = profile.meta();
    w.write_message_with(5, |m| {
        if !meta.name.is_empty() {
            m.write_string(1, &meta.name);
        }
        if !meta.profiler.is_empty() {
            m.write_string(2, &meta.profiler);
        }
        if !meta.description.is_empty() {
            m.write_string(3, &meta.description);
        }
        if meta.timestamp_nanos != 0 {
            m.write_uint64(4, meta.timestamp_nanos);
        }
    });

    out.extend_from_slice(w.as_bytes());
    out
}

/// Deserializes a profile from the EasyView binary format, validating
/// structural invariants.
///
/// # Errors
///
/// Returns [`CoreError::Format`] on a missing/unknown header, wire-level
/// corruption, or invariant violations (dangling ids, cyclic parents…).
pub fn from_bytes(data: &[u8]) -> Result<Profile, CoreError> {
    let _span = ev_trace::span("wire.decode");
    if !is_easyview(data) {
        return Err(CoreError::Format("missing EVPF magic".to_owned()));
    }
    if data.len() < 5 {
        return Err(CoreError::Format("truncated header".to_owned()));
    }
    let version = data[4];
    if version != VERSION {
        return Err(CoreError::Format(format!("unsupported version {version}")));
    }
    let mut r = Reader::new(&data[5..]);

    let mut strings: Vec<String> = Vec::new();
    let mut metrics: Vec<MetricDescriptor> = Vec::new();
    let mut raw_nodes: Vec<RawNode> = Vec::new();
    let mut links: Vec<ContextLink> = Vec::new();
    let mut meta = ProfileMeta::default();

    while let Some((field, ty)) = r.read_tag()? {
        match field {
            1 => strings.push(r.read_string()?.to_owned()),
            2 => metrics.push(read_metric(&mut r.read_message()?)?),
            3 => raw_nodes.push(read_node(&mut r.read_message()?)?),
            4 => links.push(read_link(&mut r.read_message()?)?),
            5 => meta = read_meta(&mut r.read_message()?)?,
            _ => r.skip(ty)?,
        }
    }

    // Rebuild the string table; intern() preserves indices because the
    // serialized order is id order and index 0 is the empty string.
    if strings.first().map(String::as_str) != Some("") {
        return Err(CoreError::Format(
            "string table must start with the empty string".to_owned(),
        ));
    }
    let table = StringTable::from_strings(strings.clone());
    if table.len() != strings.len() {
        return Err(CoreError::Format("duplicate strings in table".to_owned()));
    }

    if raw_nodes.is_empty() {
        return Err(CoreError::Format("profile has no nodes".to_owned()));
    }

    // Materialize nodes and rebuild child lists.
    let mut nodes: Vec<Node> = Vec::with_capacity(raw_nodes.len());
    for (i, raw) in raw_nodes.iter().enumerate() {
        let parent = match raw.parent_plus_1 {
            0 => None,
            p => {
                let idx = (p - 1) as usize;
                if idx >= i {
                    return Err(CoreError::Format(format!(
                        "node {i} has forward or self parent"
                    )));
                }
                Some(NodeId::from_index(idx))
            }
        };
        if raw.metric_ids.len() != raw.values.len() {
            return Err(CoreError::Format(format!(
                "node {i} metric id/value length mismatch"
            )));
        }
        let mut values: Vec<(MetricId, f64)> = raw
            .metric_ids
            .iter()
            .zip(&raw.values)
            .map(|(&id, &v)| (MetricId::from_index(id as usize), v))
            .collect();
        values.sort_by_key(|&(id, _)| id);
        let frame = FrameRef {
            kind: ContextKind::from_code(raw.kind),
            name: StringId::from_index(raw.name as usize),
            module: StringId::from_index(raw.module as usize),
            file: StringId::from_index(raw.file as usize),
            line: raw.line as u32,
            address: raw.address,
        };
        nodes.push(Node {
            frame,
            parent,
            children: Vec::new(),
            values,
        });
    }
    for i in 0..nodes.len() {
        if let Some(parent) = nodes[i].parent {
            let child = NodeId::from_index(i);
            nodes[parent.index()].children.push(child);
        }
    }

    let profile = Profile::from_parts(table, metrics, nodes, links, meta);
    profile.validate().map_err(CoreError::Format)?;
    Ok(profile)
}

struct RawNode {
    parent_plus_1: u64,
    kind: u64,
    name: u64,
    module: u64,
    file: u64,
    line: u64,
    address: u64,
    metric_ids: Vec<u64>,
    values: Vec<f64>,
}

fn read_metric(r: &mut Reader<'_>) -> Result<MetricDescriptor, CoreError> {
    let mut metric = MetricDescriptor::default();
    while let Some((field, ty)) = r.read_tag()? {
        match field {
            1 => metric.name = r.read_string()?.to_owned(),
            2 => metric.unit = MetricUnit::from_code(r.read_varint()?),
            3 => metric.kind = MetricKind::from_code(r.read_varint()?),
            4 => metric.description = r.read_string()?.to_owned(),
            _ => r.skip(ty)?,
        }
    }
    Ok(metric)
}

fn read_node(r: &mut Reader<'_>) -> Result<RawNode, CoreError> {
    let mut node = RawNode {
        parent_plus_1: 0,
        kind: 0,
        name: 0,
        module: 0,
        file: 0,
        line: 0,
        address: 0,
        metric_ids: Vec::new(),
        values: Vec::new(),
    };
    while let Some((field, ty)) = r.read_tag()? {
        match field {
            1 => node.parent_plus_1 = r.read_varint()?,
            2 => node.kind = r.read_varint()?,
            3 => node.name = r.read_varint()?,
            4 => node.module = r.read_varint()?,
            5 => node.file = r.read_varint()?,
            6 => node.line = r.read_varint()?,
            7 => node.address = r.read_varint()?,
            8 => r.read_packed_uint64(&mut node.metric_ids)?,
            9 => r.read_packed_double(&mut node.values)?,
            _ => r.skip(ty)?,
        }
    }
    Ok(node)
}

fn read_link(r: &mut Reader<'_>) -> Result<ContextLink, CoreError> {
    // proto3 semantics: an absent enum field means code 0.
    let mut kind = LinkKind::from_code(0);
    let mut endpoints: Vec<u64> = Vec::new();
    let mut metric_ids: Vec<u64> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    while let Some((field, ty)) = r.read_tag()? {
        match field {
            1 => kind = LinkKind::from_code(r.read_varint()?),
            2 => r.read_packed_uint64(&mut endpoints)?,
            3 => r.read_packed_uint64(&mut metric_ids)?,
            4 => r.read_packed_double(&mut values)?,
            _ => r.skip(ty)?,
        }
    }
    if metric_ids.len() != values.len() {
        return Err(CoreError::Format(
            "link metric id/value length mismatch".to_owned(),
        ));
    }
    let mut link = ContextLink::new(kind);
    for e in endpoints {
        link = link.with_endpoint(NodeId::from_index(e as usize));
    }
    for (id, v) in metric_ids.into_iter().zip(values) {
        link = link.with_value(MetricId::from_index(id as usize), v);
    }
    Ok(link)
}

fn read_meta(r: &mut Reader<'_>) -> Result<ProfileMeta, CoreError> {
    let mut meta = ProfileMeta::default();
    while let Some((field, ty)) = r.read_tag()? {
        match field {
            1 => meta.name = r.read_string()?.to_owned(),
            2 => meta.profiler = r.read_string()?.to_owned(),
            3 => meta.description = r.read_string()?.to_owned(),
            4 => meta.timestamp_nanos = r.read_varint()?,
            _ => r.skip(ty)?,
        }
    }
    Ok(meta)
}

// Expose a WireType import so the unused-import lint stays honest if the
// decode loop changes shape.
#[allow(unused)]
fn _wire_type_witness(ty: WireType) -> u64 {
    ty.bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::ProfileBuilder;

    fn rich_profile() -> Profile {
        let mut b = ProfileBuilder::new("rich");
        let cpu = b.add_metric(MetricDescriptor::new(
            "cpu",
            MetricUnit::Nanoseconds,
            MetricKind::Exclusive,
        ));
        let mem = b.add_metric(
            MetricDescriptor::new("mem", MetricUnit::Bytes, MetricKind::Point)
                .with_description("resident bytes"),
        );
        b.profiler("test-tool");
        b.push(Frame::function("main").with_source("main.c", 10));
        let use_ctx = b.push(
            Frame::function("compute")
                .with_module("libwork.so")
                .with_source("work.c", 42)
                .with_address(0x1234),
        );
        b.sample(&[(cpu, 1e6), (mem, 4096.0)]);
        b.pop().unwrap();
        let reuse_ctx = b.push(Frame::new(ContextKind::Loop, "loop@main.c:20"));
        b.sample(&[(cpu, 5e5)]);
        b.link(
            ContextLink::new(LinkKind::UseReuse)
                .with_endpoint(use_ctx)
                .with_endpoint(reuse_ctx)
                .with_value(cpu, 77.0),
        );
        let mut p = b.finish();
        p.meta_mut().timestamp_nanos = 1_700_000_000_000_000_000;
        p.meta_mut().description = "unit-test profile".to_owned();
        p
    }

    #[test]
    fn roundtrip_empty() {
        let p = Profile::new("empty");
        let bytes = to_bytes(&p);
        assert_eq!(from_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn roundtrip_rich() {
        let p = rich_profile();
        let bytes = to_bytes(&p);
        let decoded = from_bytes(&bytes).unwrap();
        assert_eq!(decoded, p);
        decoded.validate().unwrap();
    }

    #[test]
    fn header_detection() {
        let p = Profile::new("h");
        let bytes = to_bytes(&p);
        assert!(is_easyview(&bytes));
        assert!(!is_easyview(b"EVP"));
        assert!(!is_easyview(b"GARBAGE!"));
    }

    #[test]
    fn rejects_wrong_version() {
        let p = Profile::new("v");
        let mut bytes = to_bytes(&p);
        bytes[4] = 99;
        assert!(matches!(from_bytes(&bytes), Err(CoreError::Format(_))));
    }

    #[test]
    fn truncation_never_panics() {
        let p = rich_profile();
        let bytes = to_bytes(&p);
        // A cut at a field boundary yields a valid shorter message
        // (protobuf has no framing); any other cut must error. Either
        // way: no panic, and every Ok satisfies the invariants.
        for cut in 0..bytes.len() {
            if let Ok(decoded) = from_bytes(&bytes[..cut]) {
                decoded.validate().unwrap();
            }
        }
        // Cuts inside the header always error.
        for cut in 0..5 {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_bitflips_gracefully() {
        // Bit flips may still decode (protobuf is dense), but must never
        // panic and any Ok result must satisfy the invariants.
        let p = rich_profile();
        let bytes = to_bytes(&p);
        for i in 5..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x55;
            if let Ok(decoded) = from_bytes(&corrupted) {
                decoded.validate().unwrap();
            }
        }
    }

    #[test]
    fn unknown_fields_are_skipped() {
        // Simulate a newer writer: append an unknown field to the body.
        let p = Profile::new("fwd");
        let mut bytes = to_bytes(&p);
        let mut extra = Writer::new();
        extra.write_string(99, "from the future");
        bytes.extend_from_slice(extra.as_bytes());
        assert_eq!(from_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn default_values_not_encoded() {
        // An empty profile's encoding should be tiny: header + empty
        // string entry + meta name.
        let p = Profile::new("x");
        let bytes = to_bytes(&p);
        assert!(bytes.len() < 32, "got {} bytes", bytes.len());
    }
}

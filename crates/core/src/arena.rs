//! Arena storage: bump-allocated strings and slab-backed slices.
//!
//! Wire-level decoders build large transient tables (string tables,
//! inline-expanded frame lists, location line runs) whose natural
//! per-message representation — one `Vec` or `String` per record —
//! costs an allocator round-trip per record and scatters the data
//! across the heap. The two types here replace that shape with two
//! flat buffers:
//!
//! * [`Arena<T>`] — a typed slab. Records append their elements
//!   contiguously and keep a [`Span`] (offset + length) instead of an
//!   owning `Vec<T>`. One allocation amortized over every record.
//! * [`Interner`] — a deduplicating string store whose bytes live in a
//!   single bump buffer. Ids are dense `u32`s in first-intern order,
//!   and lookup is an open-addressed probe keyed by an FxHash of the
//!   bytes, so interning neither clones the key nor allocates per
//!   string.
//!
//! `ev_core::StringTable` is a thin wrapper over [`Interner`], which
//! makes every profile's string storage arena-backed; the one-pass
//! pprof decoder additionally uses [`Arena`] for its location/line and
//! frame slabs (DESIGN §4f).

use crate::fast_hash::FxHasher;
use std::hash::Hasher;

/// A contiguous run inside an [`Arena`] (or any flat buffer): element
/// offset plus length. `Span::default()` is the empty run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    start: u32,
    len: u32,
}

impl Span {
    /// Number of elements covered.
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// `true` if the span covers no elements.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// A typed slab: one growable buffer shared by many logical slices.
///
/// # Examples
///
/// ```
/// use ev_core::arena::Arena;
///
/// let mut lines: Arena<u32> = Arena::new();
/// let mark = lines.mark();
/// lines.push(10);
/// lines.push(20);
/// let span = lines.span_since(mark);
/// assert_eq!(lines.get(span), &[10, 20]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Arena<T> {
    items: Vec<T>,
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Arena<T> {
        Arena { items: Vec::new() }
    }

    /// Creates an arena with room for `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Arena<T> {
        Arena {
            items: Vec::with_capacity(capacity),
        }
    }

    /// Total elements across all spans.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if nothing has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The current end of the slab; pair with [`Arena::span_since`] to
    /// delimit the elements pushed in between.
    ///
    /// # Panics
    ///
    /// Panics if the arena already holds `u32::MAX` elements.
    pub fn mark(&self) -> u32 {
        u32::try_from(self.items.len()).expect("arena overflow")
    }

    /// Appends one element.
    pub fn push(&mut self, item: T) {
        self.items.push(item);
    }

    /// The span covering everything pushed since `mark`.
    pub fn span_since(&self, mark: u32) -> Span {
        Span {
            start: mark,
            len: self.mark() - mark,
        }
    }

    /// Allocates a whole slice in one call, returning its span.
    pub fn alloc_extend(&mut self, items: impl IntoIterator<Item = T>) -> Span {
        let mark = self.mark();
        self.items.extend(items);
        self.span_since(mark)
    }

    /// The elements of `span`.
    ///
    /// # Panics
    ///
    /// Panics if `span` was not produced by this arena.
    pub fn get(&self, span: Span) -> &[T] {
        &self.items[span.start as usize..(span.start + span.len) as usize]
    }
}

fn hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    // Mix the length so zero-padded tails of different lengths (the
    // word-at-a-time remainder) do not collide systematically.
    h.write_usize(s.len());
    h.finish()
}

/// A deduplicating string store over a single bump buffer.
///
/// Ids are dense and assigned in first-intern order, matching the
/// contract of `ev_core::StringTable` (which this type backs).
///
/// # Examples
///
/// ```
/// use ev_core::arena::Interner;
///
/// let mut i = Interner::new();
/// let a = i.intern("main");
/// assert_eq!(i.intern("main"), a);
/// assert_eq!(i.resolve(a), "main");
/// assert_eq!(i.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// Every interned string's bytes, back to back.
    bytes: Vec<u8>,
    /// Id → (offset, length) into `bytes`.
    spans: Vec<(u32, u32)>,
    /// Open-addressed probe table; a slot holds `id + 1`, 0 = empty.
    /// Length is always a power of two (or zero before first use).
    table: Vec<u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    fn str_at(&self, id: u32) -> &str {
        let (start, len) = self.spans[id as usize];
        let bytes = &self.bytes[start as usize..(start + len) as usize];
        // SAFETY: `bytes` is exactly the byte run of a `&str` appended
        // by `intern`; the buffer is append-only, so the run is intact
        // valid UTF-8.
        unsafe { std::str::from_utf8_unchecked(bytes) }
    }

    /// Interns `s`, returning its dense id; equal strings get equal ids.
    ///
    /// # Panics
    ///
    /// Panics if total interned bytes would exceed `u32::MAX`.
    pub fn intern(&mut self, s: &str) -> u32 {
        if self.table.is_empty() {
            self.table = vec![0; 16];
        }
        let mask = self.table.len() - 1;
        let mut slot = (hash_str(s) as usize) & mask;
        loop {
            match self.table[slot] {
                0 => break,
                occupied => {
                    let id = occupied - 1;
                    if self.str_at(id) == s {
                        return id;
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
        let id = u32::try_from(self.spans.len()).expect("interner id overflow");
        let start = self.bytes.len();
        assert!(
            start + s.len() <= u32::MAX as usize,
            "interner byte storage overflow"
        );
        self.bytes.extend_from_slice(s.as_bytes());
        self.spans.push((start as u32, s.len() as u32));
        self.table[slot] = id + 1;
        // Keep the probe table under 7/8 load.
        if (self.spans.len() + 1) * 8 > self.table.len() * 7 {
            self.grow();
        }
        id
    }

    /// Looks up an already-interned string without inserting.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut slot = (hash_str(s) as usize) & mask;
        loop {
            match self.table[slot] {
                0 => return None,
                occupied => {
                    let id = occupied - 1;
                    if self.str_at(id) == s {
                        return Some(id);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The string for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &str {
        assert!((id as usize) < self.spans.len(), "unknown interner id {id}");
        self.str_at(id)
    }

    /// Fallible lookup by id.
    pub fn get(&self, id: u32) -> Option<&str> {
        ((id as usize) < self.spans.len()).then(|| self.str_at(id))
    }

    /// Iterates over the interned strings in id order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        (0..self.spans.len() as u32).map(|id| self.str_at(id))
    }

    fn grow(&mut self) {
        let new_len = (self.table.len() * 2).max(16);
        let mut table = vec![0u32; new_len];
        let mask = new_len - 1;
        for id in 0..self.spans.len() as u32 {
            let mut slot = (hash_str(self.str_at(id)) as usize) & mask;
            while table[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            table[slot] = id + 1;
        }
        self.table = table;
    }
}

impl PartialEq for Interner {
    fn eq(&self, other: &Interner) -> bool {
        self.spans.len() == other.spans.len() && self.iter().eq(other.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_test::prelude::*;

    #[test]
    fn arena_spans_delimit_runs() {
        let mut a: Arena<u64> = Arena::new();
        let m1 = a.mark();
        let empty = a.span_since(m1);
        assert!(empty.is_empty());
        a.push(1);
        a.push(2);
        let first = a.span_since(m1);
        let second = a.alloc_extend([7, 8, 9]);
        assert_eq!(a.get(first), &[1, 2]);
        assert_eq!(a.get(second), &[7, 8, 9]);
        assert_eq!(first.len(), 2);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert_eq!(a.get(Span::default()), &[] as &[u64]);
    }

    #[test]
    fn interner_deduplicates_and_resolves() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("bar");
        assert_ne!(a, b);
        assert_eq!(i.intern("foo"), a);
        assert_eq!(i.resolve(a), "foo");
        assert_eq!(i.resolve(b), "bar");
        assert_eq!(i.get(99), None);
        assert_eq!(i.lookup("bar"), Some(b));
        assert_eq!(i.lookup("baz"), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn interner_empty_string() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.lookup(""), None);
        let e = i.intern("");
        assert_eq!(i.resolve(e), "");
        assert_eq!(i.intern(""), e);
    }

    #[test]
    fn interner_survives_growth() {
        let mut i = Interner::new();
        let ids: Vec<u32> = (0..1000).map(|n| i.intern(&format!("s{n}"))).collect();
        // Dense in first-intern order.
        assert_eq!(ids, (0..1000).collect::<Vec<u32>>());
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(i.resolve(*id), format!("s{n}"));
            assert_eq!(i.lookup(&format!("s{n}")), Some(*id));
        }
    }

    #[test]
    fn interner_equality_is_by_contents() {
        let mut a = Interner::new();
        let mut b = Interner::new();
        for s in ["x", "y", "z"] {
            a.intern(s);
        }
        for s in ["x", "y"] {
            b.intern(s);
        }
        assert_ne!(a, b);
        b.intern("z");
        assert_eq!(a, b);
        b.intern("w");
        assert_ne!(a, b);
    }

    property! {
        fn interner_matches_reference_map(strings in vec(string_printable(0..24), 0..200)) {
            // Differential against the obvious HashMap construction.
            let mut interner = Interner::new();
            let mut reference: Vec<String> = Vec::new();
            for s in &strings {
                let id = interner.intern(s);
                match reference.iter().position(|r| r == s) {
                    Some(pos) => prop_assert_eq!(id as usize, pos),
                    None => {
                        prop_assert_eq!(id as usize, reference.len());
                        reference.push(s.clone());
                    }
                }
            }
            prop_assert_eq!(interner.len(), reference.len());
            for (id, s) in reference.iter().enumerate() {
                prop_assert_eq!(interner.resolve(id as u32), s.as_str());
            }
            prop_assert!(interner.iter().eq(reference.iter().map(String::as_str)));
        }

        fn arena_roundtrips_chunks(chunks in vec(vec(any_u32(), 0..9), 0..40)) {
            let mut arena: Arena<u32> = Arena::new();
            let spans: Vec<Span> = chunks
                .iter()
                .map(|c| arena.alloc_extend(c.iter().copied()))
                .collect();
            for (chunk, span) in chunks.iter().zip(&spans) {
                prop_assert_eq!(arena.get(*span), chunk.as_slice());
            }
        }
    }
}

//! Profiling contexts: frames and their granularities.

use crate::string_table::{StringId, StringTable};
use std::fmt;

/// The granularity of a profiling context (paper §IV-A).
///
/// Profilers report insights for code regions at different granularities,
/// and — for data-centric profilers like Perf-mem, DrCCTProf, Cheetah, or
/// MemProf — for *data objects*: heap objects identified by their
/// allocation call path and static objects identified by symbol name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ContextKind {
    /// The synthetic tree root (program entry).
    Root,
    /// A function / procedure frame.
    #[default]
    Function,
    /// A loop within a function.
    Loop,
    /// A basic block.
    BasicBlock,
    /// A single instruction.
    Instruction,
    /// A source line (used by line-granularity profilers such as Scalene).
    Line,
    /// A heap object, named by its allocation site.
    HeapObject,
    /// A static/global object, named by its symbol.
    StaticObject,
    /// A thread or process boundary frame.
    Thread,
}

impl ContextKind {
    /// Stable numeric encoding used by the binary format.
    pub fn to_code(self) -> u64 {
        match self {
            ContextKind::Root => 0,
            ContextKind::Function => 1,
            ContextKind::Loop => 2,
            ContextKind::BasicBlock => 3,
            ContextKind::Instruction => 4,
            ContextKind::Line => 5,
            ContextKind::HeapObject => 6,
            ContextKind::StaticObject => 7,
            ContextKind::Thread => 8,
        }
    }

    /// Inverse of [`ContextKind::to_code`]; unknown codes map to
    /// [`ContextKind::Function`], keeping old readers forward-compatible
    /// with schema growth (mirroring protobuf enum semantics).
    pub fn from_code(code: u64) -> ContextKind {
        match code {
            0 => ContextKind::Root,
            2 => ContextKind::Loop,
            3 => ContextKind::BasicBlock,
            4 => ContextKind::Instruction,
            5 => ContextKind::Line,
            6 => ContextKind::HeapObject,
            7 => ContextKind::StaticObject,
            8 => ContextKind::Thread,
            _ => ContextKind::Function,
        }
    }

    /// `true` for the data-object kinds (heap/static).
    pub fn is_data(self) -> bool {
        matches!(self, ContextKind::HeapObject | ContextKind::StaticObject)
    }
}

impl fmt::Display for ContextKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ContextKind::Root => "root",
            ContextKind::Function => "function",
            ContextKind::Loop => "loop",
            ContextKind::BasicBlock => "basic-block",
            ContextKind::Instruction => "instruction",
            ContextKind::Line => "line",
            ContextKind::HeapObject => "heap-object",
            ContextKind::StaticObject => "static-object",
            ContextKind::Thread => "thread",
        };
        f.write_str(name)
    }
}

/// A frame specification with owned strings — the user-facing way to
/// describe a profiling context before it is interned into a profile.
///
/// Code mapping fields follow the paper's §IV-A list: load module, source
/// file and line, and instruction address.
///
/// # Examples
///
/// ```
/// use ev_core::Frame;
///
/// let f = Frame::function("CalcHourglassForceForElems")
///     .with_module("lulesh2.0")
///     .with_source("lulesh.cc", 2310)
///     .with_address(0x41f2c0);
/// assert_eq!(f.line, 2310);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Frame {
    /// Granularity of the context.
    pub kind: ContextKind,
    /// Function name, loop label, or data-object name.
    pub name: String,
    /// Load module (executable or shared library), empty if unknown.
    pub module: String,
    /// Source file path, empty if unknown.
    pub file: String,
    /// 1-based source line, 0 if unknown.
    pub line: u32,
    /// Instruction pointer / module offset, 0 if unknown.
    pub address: u64,
}

impl Frame {
    /// Creates a function frame with only a name.
    pub fn function(name: impl Into<String>) -> Frame {
        Frame {
            kind: ContextKind::Function,
            name: name.into(),
            ..Frame::default()
        }
    }

    /// Creates a frame of an arbitrary kind.
    pub fn new(kind: ContextKind, name: impl Into<String>) -> Frame {
        Frame {
            kind,
            name: name.into(),
            ..Frame::default()
        }
    }

    /// Creates a heap-object frame (data-centric profiling).
    pub fn heap_object(name: impl Into<String>) -> Frame {
        Frame::new(ContextKind::HeapObject, name)
    }

    /// Creates a thread frame.
    pub fn thread(name: impl Into<String>) -> Frame {
        Frame::new(ContextKind::Thread, name)
    }

    /// Sets the load module.
    pub fn with_module(mut self, module: impl Into<String>) -> Frame {
        self.module = module.into();
        self
    }

    /// Sets the source file and line.
    pub fn with_source(mut self, file: impl Into<String>, line: u32) -> Frame {
        self.file = file.into();
        self.line = line;
        self
    }

    /// Sets the instruction address.
    pub fn with_address(mut self, address: u64) -> Frame {
        self.address = address;
        self
    }

    /// Returns `true` if source mapping (file + line) is available —
    /// EasyView's color semantics use this to darken unmapped frames
    /// (paper §VI-B).
    pub fn has_source_mapping(&self) -> bool {
        !self.file.is_empty() && self.line != 0
    }

    /// Interns this frame's strings into `table`, producing the compact
    /// stored form.
    pub fn intern(&self, table: &mut StringTable) -> FrameRef {
        FrameRef {
            kind: self.kind,
            name: table.intern(&self.name),
            module: table.intern(&self.module),
            file: table.intern(&self.file),
            line: self.line,
            address: self.address,
        }
    }
}

impl fmt::Display for Frame {
    /// Renders as `name (module!file:line)` with unknown parts elided.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind == ContextKind::Root {
            return f.write_str("<root>");
        }
        write!(f, "{}", self.name)?;
        let has_module = !self.module.is_empty();
        let has_file = !self.file.is_empty();
        if has_module || has_file {
            f.write_str(" (")?;
            if has_module {
                write!(f, "{}", self.module)?;
                if has_file {
                    f.write_str("!")?;
                }
            }
            if has_file {
                write!(f, "{}", self.file)?;
                if self.line != 0 {
                    write!(f, ":{}", self.line)?;
                }
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

/// The interned form of a [`Frame`], stored in profile nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameRef {
    /// Granularity of the context.
    pub kind: ContextKind,
    /// Interned name.
    pub name: StringId,
    /// Interned load module ([`StringId::EMPTY`] = unknown).
    pub module: StringId,
    /// Interned source file ([`StringId::EMPTY`] = unknown).
    pub file: StringId,
    /// 1-based source line, 0 if unknown.
    pub line: u32,
    /// Instruction address, 0 if unknown.
    pub address: u64,
}

impl FrameRef {
    /// The synthetic root frame.
    pub fn root() -> FrameRef {
        FrameRef {
            kind: ContextKind::Root,
            name: StringId::EMPTY,
            module: StringId::EMPTY,
            file: StringId::EMPTY,
            line: 0,
            address: 0,
        }
    }

    /// Resolves back to an owned [`Frame`] using `table`.
    pub fn resolve(&self, table: &StringTable) -> Frame {
        Frame {
            kind: self.kind,
            name: table.resolve(self.name).to_owned(),
            module: table.resolve(self.module).to_owned(),
            file: table.resolve(self.file).to_owned(),
            line: self.line,
            address: self.address,
        }
    }

    /// The identity key used when merging call-path prefixes: two frames
    /// merge into one CCT node iff all their fields agree.
    pub fn merge_key(&self) -> (ContextKind, StringId, StringId, StringId, u32, u64) {
        (
            self.kind, self.name, self.module, self.file, self.line, self.address,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_kind_codes_roundtrip() {
        for kind in [
            ContextKind::Root,
            ContextKind::Function,
            ContextKind::Loop,
            ContextKind::BasicBlock,
            ContextKind::Instruction,
            ContextKind::Line,
            ContextKind::HeapObject,
            ContextKind::StaticObject,
            ContextKind::Thread,
        ] {
            assert_eq!(ContextKind::from_code(kind.to_code()), kind);
        }
    }

    #[test]
    fn unknown_code_maps_to_function() {
        assert_eq!(ContextKind::from_code(999), ContextKind::Function);
    }

    #[test]
    fn data_kinds() {
        assert!(ContextKind::HeapObject.is_data());
        assert!(ContextKind::StaticObject.is_data());
        assert!(!ContextKind::Function.is_data());
    }

    #[test]
    fn builder_methods_compose() {
        let f = Frame::function("f")
            .with_module("libc.so")
            .with_source("malloc.c", 3)
            .with_address(0x10);
        assert_eq!(f.kind, ContextKind::Function);
        assert_eq!(f.module, "libc.so");
        assert_eq!(f.file, "malloc.c");
        assert_eq!(f.line, 3);
        assert_eq!(f.address, 0x10);
        assert!(f.has_source_mapping());
        assert!(!Frame::function("g").has_source_mapping());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Frame::function("f").to_string(), "f");
        assert_eq!(
            Frame::function("f").with_module("m.so").to_string(),
            "f (m.so)"
        );
        assert_eq!(
            Frame::function("f").with_source("a.c", 7).to_string(),
            "f (a.c:7)"
        );
        assert_eq!(
            Frame::function("f")
                .with_module("m.so")
                .with_source("a.c", 7)
                .to_string(),
            "f (m.so!a.c:7)"
        );
        assert_eq!(
            Frame::new(ContextKind::Root, "ignored").to_string(),
            "<root>"
        );
    }

    #[test]
    fn intern_resolve_roundtrip() {
        let mut table = StringTable::new();
        let f = Frame::function("brk")
            .with_module("libc-2.31.so")
            .with_source("brk.c", 31)
            .with_address(0xfeed);
        let r = f.intern(&mut table);
        assert_eq!(r.resolve(&table), f);
    }

    #[test]
    fn merge_key_distinguishes_fields() {
        let mut table = StringTable::new();
        let base = Frame::function("f").with_source("a.c", 1).intern(&mut table);
        let same = Frame::function("f").with_source("a.c", 1).intern(&mut table);
        let diff_line = Frame::function("f").with_source("a.c", 2).intern(&mut table);
        let diff_kind = Frame::new(ContextKind::Loop, "f")
            .with_source("a.c", 1)
            .intern(&mut table);
        assert_eq!(base.merge_key(), same.merge_key());
        assert_ne!(base.merge_key(), diff_line.merge_key());
        assert_ne!(base.merge_key(), diff_kind.merge_key());
    }

    #[test]
    fn root_frame_ref() {
        let table = StringTable::new();
        let root = FrameRef::root();
        assert_eq!(root.resolve(&table).kind, ContextKind::Root);
    }
}

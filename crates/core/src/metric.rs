//! Metric descriptors: the typed measurement channels of a profile.

use std::fmt;

/// A handle to a metric registered in a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId(pub(crate) u16);

impl MetricId {
    /// The raw index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a raw index (used by deserialization).
    pub fn from_index(index: usize) -> MetricId {
        MetricId(index as u16)
    }
}

/// How a metric's values relate to the calling context tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MetricKind {
    /// Attributed to the exact node where it was measured; inclusive
    /// values are derived by summing over subtrees (paper §V-A).
    #[default]
    Exclusive,
    /// Already includes callee costs (some profilers report these
    /// directly, e.g. HPCToolkit's `(I)` metrics).
    Inclusive,
    /// A point observation where summation is meaningless (e.g. a
    /// high-water mark); aggregation uses min/max/mean instead.
    Point,
}

impl MetricKind {
    /// Stable numeric encoding used by the binary format.
    pub fn to_code(self) -> u64 {
        match self {
            MetricKind::Exclusive => 0,
            MetricKind::Inclusive => 1,
            MetricKind::Point => 2,
        }
    }

    /// Inverse of [`MetricKind::to_code`]; unknown codes decode as
    /// [`MetricKind::Exclusive`].
    pub fn from_code(code: u64) -> MetricKind {
        match code {
            1 => MetricKind::Inclusive,
            2 => MetricKind::Point,
            _ => MetricKind::Exclusive,
        }
    }
}

/// The unit a metric is measured in, used for display formatting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MetricUnit {
    /// A unitless count (samples, occurrences, instructions).
    #[default]
    Count,
    /// Nanoseconds of time.
    Nanoseconds,
    /// Bytes of memory.
    Bytes,
    /// CPU cycles.
    Cycles,
    /// A ratio or percentage in [0, 1].
    Ratio,
}

impl MetricUnit {
    /// Stable numeric encoding used by the binary format.
    pub fn to_code(self) -> u64 {
        match self {
            MetricUnit::Count => 0,
            MetricUnit::Nanoseconds => 1,
            MetricUnit::Bytes => 2,
            MetricUnit::Cycles => 3,
            MetricUnit::Ratio => 4,
        }
    }

    /// Inverse of [`MetricUnit::to_code`]; unknown codes decode as
    /// [`MetricUnit::Count`].
    pub fn from_code(code: u64) -> MetricUnit {
        match code {
            1 => MetricUnit::Nanoseconds,
            2 => MetricUnit::Bytes,
            3 => MetricUnit::Cycles,
            4 => MetricUnit::Ratio,
            _ => MetricUnit::Count,
        }
    }

    /// Formats `value` in a human-readable form for this unit
    /// (`1.50 ms`, `2.0 MiB`, `37.2%`, …).
    pub fn format(self, value: f64) -> String {
        match self {
            MetricUnit::Count => {
                if value == value.trunc() && value.abs() < 1e15 {
                    format!("{}", value as i64)
                } else {
                    format!("{value:.2}")
                }
            }
            MetricUnit::Nanoseconds => {
                let abs = value.abs();
                if abs >= 1e9 {
                    format!("{:.2} s", value / 1e9)
                } else if abs >= 1e6 {
                    format!("{:.2} ms", value / 1e6)
                } else if abs >= 1e3 {
                    format!("{:.2} µs", value / 1e3)
                } else {
                    format!("{value:.0} ns")
                }
            }
            MetricUnit::Bytes => {
                let abs = value.abs();
                if abs >= 1024.0 * 1024.0 * 1024.0 {
                    format!("{:.2} GiB", value / (1024.0 * 1024.0 * 1024.0))
                } else if abs >= 1024.0 * 1024.0 {
                    format!("{:.2} MiB", value / (1024.0 * 1024.0))
                } else if abs >= 1024.0 {
                    format!("{:.2} KiB", value / 1024.0)
                } else {
                    format!("{value:.0} B")
                }
            }
            MetricUnit::Cycles => format!("{value:.0} cyc"),
            MetricUnit::Ratio => format!("{:.1}%", value * 100.0),
        }
    }
}

impl fmt::Display for MetricUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MetricUnit::Count => "count",
            MetricUnit::Nanoseconds => "ns",
            MetricUnit::Bytes => "bytes",
            MetricUnit::Cycles => "cycles",
            MetricUnit::Ratio => "ratio",
        };
        f.write_str(name)
    }
}

/// Describes one metric channel of a profile.
///
/// # Examples
///
/// ```
/// use ev_core::{MetricDescriptor, MetricKind, MetricUnit};
///
/// let alloc = MetricDescriptor::new("alloc_space", MetricUnit::Bytes, MetricKind::Exclusive)
///     .with_description("bytes allocated, attributed to the allocation call path");
/// assert_eq!(alloc.name, "alloc_space");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricDescriptor {
    /// Short name (`cpu`, `alloc_space`, `cache_misses`).
    pub name: String,
    /// Measurement unit.
    pub unit: MetricUnit,
    /// Attribution semantics.
    pub kind: MetricKind,
    /// Optional human-readable description.
    pub description: String,
}

impl MetricDescriptor {
    /// Creates a descriptor.
    pub fn new(name: impl Into<String>, unit: MetricUnit, kind: MetricKind) -> MetricDescriptor {
        MetricDescriptor {
            name: name.into(),
            unit,
            kind,
            description: String::new(),
        }
    }

    /// Sets a description.
    pub fn with_description(mut self, description: impl Into<String>) -> MetricDescriptor {
        self.description = description.into();
        self
    }
}

impl fmt::Display for MetricDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_and_unit_codes_roundtrip() {
        for kind in [MetricKind::Exclusive, MetricKind::Inclusive, MetricKind::Point] {
            assert_eq!(MetricKind::from_code(kind.to_code()), kind);
        }
        for unit in [
            MetricUnit::Count,
            MetricUnit::Nanoseconds,
            MetricUnit::Bytes,
            MetricUnit::Cycles,
            MetricUnit::Ratio,
        ] {
            assert_eq!(MetricUnit::from_code(unit.to_code()), unit);
        }
    }

    #[test]
    fn unknown_codes_fall_back() {
        assert_eq!(MetricKind::from_code(77), MetricKind::Exclusive);
        assert_eq!(MetricUnit::from_code(77), MetricUnit::Count);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(MetricUnit::Count.format(42.0), "42");
        assert_eq!(MetricUnit::Count.format(0.5), "0.50");
        assert_eq!(MetricUnit::Nanoseconds.format(500.0), "500 ns");
        assert_eq!(MetricUnit::Nanoseconds.format(1_500.0), "1.50 µs");
        assert_eq!(MetricUnit::Nanoseconds.format(2_000_000.0), "2.00 ms");
        assert_eq!(MetricUnit::Nanoseconds.format(3e9), "3.00 s");
        assert_eq!(MetricUnit::Bytes.format(512.0), "512 B");
        assert_eq!(MetricUnit::Bytes.format(2048.0), "2.00 KiB");
        assert_eq!(MetricUnit::Bytes.format(3.0 * 1024.0 * 1024.0), "3.00 MiB");
        assert_eq!(
            MetricUnit::Bytes.format(1.5 * 1024.0 * 1024.0 * 1024.0),
            "1.50 GiB"
        );
        assert_eq!(MetricUnit::Cycles.format(100.0), "100 cyc");
        assert_eq!(MetricUnit::Ratio.format(0.372), "37.2%");
    }

    #[test]
    fn descriptor_display() {
        let d = MetricDescriptor::new("cpu", MetricUnit::Nanoseconds, MetricKind::Exclusive);
        assert_eq!(d.to_string(), "cpu [ns]");
    }

    #[test]
    fn metric_id_index_roundtrip() {
        let id = MetricId::from_index(5);
        assert_eq!(id.index(), 5);
    }
}

//! Interned strings shared across a profile.
//!
//! Function names, file paths, and load-module names repeat heavily in
//! call-path profiles; interning them once keeps the calling context tree
//! compact (paper §IV-A: "minimizes the storage in both memory and disk").

use crate::arena::Interner;

/// A handle to an interned string in a [`StringTable`].
///
/// `StringId(0)` is always the empty string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StringId(pub(crate) u32);

impl StringId {
    /// The id of the empty string, present in every table.
    pub const EMPTY: StringId = StringId(0);

    /// The raw index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a raw index (used by deserialization).
    pub fn from_index(index: usize) -> StringId {
        StringId(index as u32)
    }
}

/// A deduplicating string table.
///
/// # Examples
///
/// ```
/// use ev_core::StringTable;
///
/// let mut t = StringTable::new();
/// let a = t.intern("main");
/// let b = t.intern("main");
/// assert_eq!(a, b);
/// assert_eq!(t.resolve(a), "main");
/// ```
#[derive(Debug, Clone, Default)]
pub struct StringTable {
    interner: Interner,
}

impl StringTable {
    /// Creates a table containing only the empty string.
    pub fn new() -> StringTable {
        let mut table = StringTable {
            interner: Interner::new(),
        };
        table.intern("");
        table
    }

    /// Interns `s`, returning its id; repeated calls with equal strings
    /// return equal ids.
    pub fn intern(&mut self, s: &str) -> StringId {
        StringId(self.interner.intern(s))
    }

    /// Returns the string for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table (or a table whose
    /// contents this one was deserialized from).
    pub fn resolve(&self, id: StringId) -> &str {
        self.interner.resolve(id.0)
    }

    /// Fallible lookup, for ids from untrusted serialized data.
    pub fn get(&self, id: StringId) -> Option<&str> {
        self.interner.get(id.0)
    }

    /// Looks up an already-interned string without inserting.
    pub fn lookup(&self, s: &str) -> Option<StringId> {
        self.interner.lookup(s).map(StringId)
    }

    /// Number of interned strings (including the empty string).
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// Always `false`: the empty string is interned at construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over the interned strings in id order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.interner.iter()
    }

    /// Rebuilds a table from serialized contents. The first entry must be
    /// the empty string; if absent it is prepended, preserving relative
    /// order of the rest (this only happens for hand-built inputs).
    pub fn from_strings(strings: Vec<String>) -> StringTable {
        let mut table = StringTable::new();
        for s in &strings {
            table.intern(s);
        }
        table
    }
}

impl PartialEq for StringTable {
    fn eq(&self, other: &StringTable) -> bool {
        self.interner == other.interner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_test::prelude::*;

    #[test]
    fn empty_string_is_id_zero() {
        let mut t = StringTable::new();
        assert_eq!(t.intern(""), StringId::EMPTY);
        assert_eq!(t.resolve(StringId::EMPTY), "");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn interning_deduplicates() {
        let mut t = StringTable::new();
        let a = t.intern("foo");
        let b = t.intern("bar");
        let c = t.intern("foo");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut t = StringTable::new();
        assert_eq!(t.lookup("x"), None);
        let id = t.intern("x");
        assert_eq!(t.lookup("x"), Some(id));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn get_is_fallible() {
        let t = StringTable::new();
        assert_eq!(t.get(StringId(99)), None);
        assert_eq!(t.get(StringId::EMPTY), Some(""));
    }

    #[test]
    fn from_strings_roundtrip() {
        let mut t = StringTable::new();
        for s in ["alpha", "beta", "gamma"] {
            t.intern(s);
        }
        let rebuilt = StringTable::from_strings(t.iter().map(str::to_owned).collect());
        assert_eq!(t, rebuilt);
    }

    property! {
        fn resolve_inverts_intern(strings in vec(string_printable(0..21), 0..50)) {
            let mut t = StringTable::new();
            let ids: Vec<_> = strings.iter().map(|s| t.intern(s)).collect();
            for (s, id) in strings.iter().zip(ids) {
                prop_assert_eq!(t.resolve(id), s.as_str());
            }
        }

        fn ids_are_dense(strings in vec(string_from("abcdef", 1..5), 0..50)) {
            let mut t = StringTable::new();
            for s in &strings {
                t.intern(s);
            }
            // Every id below len() resolves.
            for i in 0..t.len() {
                prop_assert!(t.get(StringId::from_index(i)).is_some());
            }
        }
    }
}

//! The calling context tree (CCT) at the heart of the representation.

use crate::frame::{Frame, FrameRef};
use crate::link::ContextLink;
use crate::metric::{MetricDescriptor, MetricId};
use crate::fast_hash::FxHashMap;
use crate::string_table::{StringId, StringTable};

/// A handle to a node in a [`Profile`]'s calling context tree.
///
/// `NodeId` values are only meaningful for the profile that produced
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root node, present in every profile.
    pub const ROOT: NodeId = NodeId(0);

    /// The raw index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a raw index (used by deserialization).
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

/// One monitoring point: a frame in the CCT plus its metric values.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    pub(crate) frame: FrameRef,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
    /// Sparse metric values, sorted by [`MetricId`].
    pub(crate) values: Vec<(MetricId, f64)>,
}

impl Node {
    /// The interned frame of this node.
    pub fn frame(&self) -> FrameRef {
        self.frame
    }

    /// The parent node, `None` for the root.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Child nodes in insertion order.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Sparse `(metric, value)` pairs attached to this node.
    pub fn values(&self) -> &[(MetricId, f64)] {
        &self.values
    }

    /// The value of `metric` at this node, 0 if absent.
    pub fn value(&self, metric: MetricId) -> f64 {
        match self.values.binary_search_by_key(&metric, |&(m, _)| m) {
            Ok(i) => self.values[i].1,
            Err(_) => 0.0,
        }
    }

    pub(crate) fn add_value(&mut self, metric: MetricId, delta: f64) {
        match self.values.binary_search_by_key(&metric, |&(m, _)| m) {
            Ok(i) => self.values[i].1 += delta,
            Err(i) => self.values.insert(i, (metric, delta)),
        }
    }

    pub(crate) fn set_value(&mut self, metric: MetricId, value: f64) {
        match self.values.binary_search_by_key(&metric, |&(m, _)| m) {
            Ok(i) => self.values[i].1 = value,
            Err(i) => self.values.insert(i, (metric, value)),
        }
    }
}

/// Descriptive metadata about a profile.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileMeta {
    /// A short name for the profile (e.g. the workload or file name).
    pub name: String,
    /// The tool that produced the original data (`pprof`, `perf`,
    /// `hpctoolkit`, …).
    pub profiler: String,
    /// Free-form notes (command line, host, duration…).
    pub description: String,
    /// Wall-clock capture timestamp in nanoseconds since the epoch,
    /// 0 if unknown. Used to order snapshot series (paper §VII-C1).
    pub timestamp_nanos: u64,
}

/// A profile: metadata, metric schema, a prefix-merged calling context
/// tree, and cross-context links.
///
/// The CCT invariant: among the children of any node, every
/// [`FrameRef::merge_key`] appears at most once. [`Profile::child`]
/// maintains this by returning the existing child when one matches.
///
/// # Examples
///
/// ```
/// use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit, NodeId, Profile};
///
/// let mut p = Profile::new("demo");
/// let cpu = p.add_metric(MetricDescriptor::new(
///     "cpu",
///     MetricUnit::Count,
///     MetricKind::Exclusive,
/// ));
/// let main = p.child(NodeId::ROOT, &Frame::function("main"));
/// let work = p.child(main, &Frame::function("work"));
/// p.add_value(work, cpu, 10.0);
///
/// // Re-inserting the same path merges into the same nodes.
/// assert_eq!(p.child(main, &Frame::function("work")), work);
/// assert_eq!(p.total(cpu), 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct Profile {
    strings: StringTable,
    metrics: Vec<MetricDescriptor>,
    nodes: Vec<Node>,
    links: Vec<ContextLink>,
    meta: ProfileMeta,
    /// Fast child lookup: (parent, frame) → child. Not serialized.
    child_index: FxHashMap<(NodeId, FrameRef), NodeId>,
    /// True when `child_index` lags behind `nodes` (after bulk builds
    /// via [`Profile::push_child_unchecked`] or deserialization).
    /// [`Profile::child_ref`] rebuilds lazily before its first probe.
    index_stale: bool,
}

impl Profile {
    /// Creates an empty profile containing only the root node.
    pub fn new(name: impl Into<String>) -> Profile {
        Profile {
            strings: StringTable::new(),
            metrics: Vec::new(),
            nodes: vec![Node {
                frame: FrameRef::root(),
                parent: None,
                children: Vec::new(),
                values: Vec::new(),
            }],
            links: Vec::new(),
            meta: ProfileMeta {
                name: name.into(),
                ..ProfileMeta::default()
            },
            child_index: FxHashMap::default(),
            index_stale: false,
        }
    }

    /// The profile metadata.
    pub fn meta(&self) -> &ProfileMeta {
        &self.meta
    }

    /// Mutable access to the metadata.
    pub fn meta_mut(&mut self) -> &mut ProfileMeta {
        &mut self.meta
    }

    /// The string table backing this profile's frames.
    pub fn strings(&self) -> &StringTable {
        &self.strings
    }

    /// Interns a string into this profile's table.
    pub fn intern(&mut self, s: &str) -> StringId {
        self.strings.intern(s)
    }

    /// Interns a frame's strings, returning the compact stored form.
    /// Producers that reuse frames many times (generators, converters)
    /// intern once and insert with [`Profile::child_ref`], avoiding
    /// per-sample string hashing.
    pub fn intern_frame(&mut self, frame: &Frame) -> FrameRef {
        frame.intern(&mut self.strings)
    }

    /// Registers a metric, returning its id.
    ///
    /// # Panics
    ///
    /// Panics after 65 535 metrics; real profiles carry a handful.
    pub fn add_metric(&mut self, descriptor: MetricDescriptor) -> MetricId {
        assert!(self.metrics.len() < u16::MAX as usize, "too many metrics");
        let id = MetricId(self.metrics.len() as u16);
        self.metrics.push(descriptor);
        id
    }

    /// The descriptor for `metric`.
    ///
    /// # Panics
    ///
    /// Panics if `metric` is not registered in this profile.
    pub fn metric(&self, metric: MetricId) -> &MetricDescriptor {
        &self.metrics[metric.index()]
    }

    /// All registered metric descriptors, in id order.
    pub fn metrics(&self) -> &[MetricDescriptor] {
        &self.metrics
    }

    /// Returns the id of the metric named `name`, if registered.
    pub fn metric_by_name(&self, name: &str) -> Option<MetricId> {
        self.metrics
            .iter()
            .position(|m| m.name == name)
            .map(MetricId::from_index)
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// The node for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this profile.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes, including the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids in creation order (root first).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Returns the child of `parent` matching `frame`, creating it if
    /// absent — the prefix-merging step that keeps the CCT compact.
    pub fn child(&mut self, parent: NodeId, frame: &Frame) -> NodeId {
        let frame_ref = frame.intern(&mut self.strings);
        self.child_ref(parent, frame_ref)
    }

    /// Pre-reserves capacity for about `additional` more nodes.
    /// Converters that know the scale of the profile they are building
    /// (e.g. its sample count) call this once up front so CCT
    /// construction does not repeatedly regrow a million-node table
    /// mid-build. The child index is left alone: bulk builders go
    /// through [`Profile::push_child_unchecked`] and never populate it.
    pub fn reserve_nodes(&mut self, additional: usize) {
        self.nodes.reserve(additional);
    }

    /// Like [`Profile::child`] for an already-interned frame.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a node of this profile.
    pub fn child_ref(&mut self, parent: NodeId, frame: FrameRef) -> NodeId {
        assert!(parent.index() < self.nodes.len(), "invalid parent id");
        if self.index_stale {
            self.rebuild_index();
        }
        // Entry API: one hash of the (parent, frame) key per call instead
        // of a get-then-insert pair on the create path.
        let id = NodeId(self.nodes.len() as u32);
        match self.child_index.entry((parent, frame)) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(id);
                self.nodes.push(Node {
                    frame,
                    parent: Some(parent),
                    children: Vec::new(),
                    values: Vec::new(),
                });
                self.nodes[parent.index()].children.push(id);
                id
            }
        }
    }

    /// Appends a new child of `parent` without consulting or updating
    /// the child-lookup index — the bulk-construction primitive for
    /// decoders that maintain their own (cheaper) edge dedup.
    ///
    /// The caller must guarantee `parent` has no existing child whose
    /// frame equals `frame`, or [`Profile::validate`] will later reject
    /// the profile (duplicate child frames). The child index is marked
    /// stale; the next [`Profile::child`]/[`Profile::child_ref`] call
    /// rebuilds it in one pass, so mixing this with the checked API
    /// stays correct — bulk builders just shouldn't interleave the two
    /// per node, or the rebuild cost comes back.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a node of this profile.
    pub fn push_child_unchecked(&mut self, parent: NodeId, frame: FrameRef) -> NodeId {
        assert!(parent.index() < self.nodes.len(), "invalid parent id");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            frame,
            parent: Some(parent),
            children: Vec::new(),
            values: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        self.index_stale = true;
        id
    }

    /// Inserts a full call path (outermost frame first) and adds the
    /// metric values at the leaf. Returns the leaf node.
    pub fn add_sample(&mut self, path: &[Frame], values: &[(MetricId, f64)]) -> NodeId {
        let mut node = NodeId::ROOT;
        for frame in path {
            node = self.child(node, frame);
        }
        for &(metric, value) in values {
            self.add_value(node, metric, value);
        }
        node
    }

    /// Adds `delta` to the value of `metric` at `node`.
    pub fn add_value(&mut self, node: NodeId, metric: MetricId, delta: f64) {
        self.nodes[node.index()].add_value(metric, delta);
    }

    /// Overwrites the value of `metric` at `node`.
    pub fn set_value(&mut self, node: NodeId, metric: MetricId, value: f64) {
        self.nodes[node.index()].set_value(metric, value);
    }

    /// The value of `metric` at `node`, 0 if absent.
    pub fn value(&self, node: NodeId, metric: MetricId) -> f64 {
        self.nodes[node.index()].value(metric)
    }

    /// Sum of `metric` over all nodes — for exclusive metrics this is the
    /// program total.
    pub fn total(&self, metric: MetricId) -> f64 {
        self.nodes.iter().map(|n| n.value(metric)).sum()
    }

    /// Resolves a node's frame to owned strings.
    pub fn resolve_frame(&self, node: NodeId) -> Frame {
        self.node(node).frame.resolve(&self.strings)
    }

    /// The call path from the root (exclusive) down to `node` (inclusive),
    /// outermost first.
    pub fn path(&self, node: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut current = Some(node);
        while let Some(id) = current {
            if id == NodeId::ROOT {
                break;
            }
            path.push(id);
            current = self.node(id).parent;
        }
        path.reverse();
        path
    }

    /// Depth of `node` (root = 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut depth = 0;
        let mut current = self.node(node).parent;
        while let Some(id) = current {
            depth += 1;
            current = self.node(id).parent;
        }
        depth
    }

    /// Pre-order (parent before children) traversal from the root.
    pub fn pre_order(&self) -> PreOrder<'_> {
        self.pre_order_from(NodeId::ROOT)
    }

    /// Pre-order traversal of the subtree rooted at `start`.
    pub fn pre_order_from(&self, start: NodeId) -> PreOrder<'_> {
        PreOrder {
            profile: self,
            stack: vec![start],
        }
    }

    /// Post-order (children before parent) traversal from the root.
    pub fn post_order(&self) -> PostOrder {
        let mut order = Vec::with_capacity(self.nodes.len());
        // Reverse pre-order with child order flipped gives post-order.
        let mut stack = vec![NodeId::ROOT];
        while let Some(id) = stack.pop() {
            order.push(id);
            stack.extend(self.node(id).children.iter().copied());
        }
        PostOrder { order }
    }

    /// Registers a cross-context link (use/reuse pair, race pair, …).
    pub fn add_link(&mut self, link: ContextLink) {
        self.links.push(link);
    }

    /// All cross-context links.
    pub fn links(&self) -> &[ContextLink] {
        &self.links
    }

    /// Validates internal invariants; used by tests and after
    /// deserializing untrusted data.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("profile has no root".to_owned());
        }
        if self.nodes[0].parent.is_some() {
            return Err("root has a parent".to_owned());
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(parent) = node.parent {
                if parent.index() >= self.nodes.len() {
                    return Err(format!("node {i} has out-of-range parent"));
                }
                if parent.index() >= i {
                    return Err(format!("node {i} precedes its parent"));
                }
                if !self.nodes[parent.index()].children.contains(&NodeId(i as u32)) {
                    return Err(format!("node {i} missing from parent's child list"));
                }
            } else if i != 0 {
                return Err(format!("non-root node {i} has no parent"));
            }
            // Prefix-merge invariant: sibling merge keys are unique.
            let mut seen = std::collections::HashSet::new();
            for &child in &node.children {
                if child.index() >= self.nodes.len() {
                    return Err(format!("node {i} has out-of-range child"));
                }
                let key = self.nodes[child.index()].frame.merge_key();
                if !seen.insert(key) {
                    return Err(format!("node {i} has duplicate child frames"));
                }
            }
            for &(metric, _) in &node.values {
                if metric.index() >= self.metrics.len() {
                    return Err(format!("node {i} references unknown metric"));
                }
            }
            // Frame string ids must resolve.
            for sid in [node.frame.name, node.frame.module, node.frame.file] {
                if self.strings.get(sid).is_none() {
                    return Err(format!("node {i} references unknown string"));
                }
            }
        }
        for (i, link) in self.links.iter().enumerate() {
            for &node in link.endpoints() {
                if node.index() >= self.nodes.len() {
                    return Err(format!("link {i} references unknown node"));
                }
            }
        }
        Ok(())
    }

    /// Rebuilds the child-lookup index from the node table. Runs
    /// lazily, on the first [`Profile::child_ref`] after the index went
    /// stale — deserialized or bulk-built profiles that are only ever
    /// read never pay for it.
    pub(crate) fn rebuild_index(&mut self) {
        self.child_index.clear();
        self.child_index.reserve(self.nodes.len().saturating_sub(1));
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(parent) = node.parent {
                self.child_index.insert((parent, node.frame), NodeId(i as u32));
            }
        }
        self.index_stale = false;
    }

    /// Constructs a profile from raw parts (used by deserialization).
    pub(crate) fn from_parts(
        strings: StringTable,
        metrics: Vec<MetricDescriptor>,
        nodes: Vec<Node>,
        links: Vec<ContextLink>,
        meta: ProfileMeta,
    ) -> Profile {
        Profile {
            strings,
            metrics,
            nodes,
            links,
            meta,
            child_index: FxHashMap::default(),
            // Lazy: read-only consumers (views, exporters) never probe
            // the child index, so don't build it on deserialization.
            index_stale: true,
        }
    }

    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }
}

impl PartialEq for Profile {
    fn eq(&self, other: &Profile) -> bool {
        self.strings == other.strings
            && self.metrics == other.metrics
            && self.nodes == other.nodes
            && self.links == other.links
            && self.meta == other.meta
    }
}

/// Iterator over node ids in pre-order. Created by
/// [`Profile::pre_order`].
#[derive(Debug)]
pub struct PreOrder<'a> {
    profile: &'a Profile,
    stack: Vec<NodeId>,
}

impl Iterator for PreOrder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        // Push children reversed so the leftmost child pops first.
        let children = self.profile.node(id).children();
        self.stack.extend(children.iter().rev().copied());
        Some(id)
    }
}

/// Iterator over node ids in post-order. Created by
/// [`Profile::post_order`].
#[derive(Debug)]
pub struct PostOrder {
    order: Vec<NodeId>,
}

impl Iterator for PostOrder {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        self.order.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{MetricKind, MetricUnit};

    fn metric(p: &mut Profile, name: &str) -> MetricId {
        p.add_metric(MetricDescriptor::new(
            name,
            MetricUnit::Count,
            MetricKind::Exclusive,
        ))
    }

    fn sample_profile() -> (Profile, MetricId) {
        // root -> main -> {a -> c, b}
        let mut p = Profile::new("test");
        let m = metric(&mut p, "cpu");
        p.add_sample(
            &[Frame::function("main"), Frame::function("a"), Frame::function("c")],
            &[(m, 4.0)],
        );
        p.add_sample(&[Frame::function("main"), Frame::function("b")], &[(m, 6.0)]);
        (p, m)
    }

    #[test]
    fn new_profile_has_only_root() {
        let p = Profile::new("empty");
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.node(NodeId::ROOT).parent(), None);
        assert!(p.node(NodeId::ROOT).children().is_empty());
        p.validate().unwrap();
    }

    #[test]
    fn prefix_merging() {
        let (mut p, m) = sample_profile();
        assert_eq!(p.node_count(), 5); // root, main, a, c, b
        // Same path again merges, values accumulate.
        p.add_sample(&[Frame::function("main"), Frame::function("b")], &[(m, 1.0)]);
        assert_eq!(p.node_count(), 5);
        assert_eq!(p.total(m), 11.0);
        p.validate().unwrap();
    }

    #[test]
    fn distinct_lines_do_not_merge() {
        let mut p = Profile::new("t");
        let main1 = p.child(NodeId::ROOT, &Frame::function("main").with_source("m.c", 1));
        let main2 = p.child(NodeId::ROOT, &Frame::function("main").with_source("m.c", 2));
        assert_ne!(main1, main2);
        p.validate().unwrap();
    }

    #[test]
    fn value_accessors() {
        let (mut p, m) = sample_profile();
        let main = p.child(NodeId::ROOT, &Frame::function("main"));
        let b = p.child(main, &Frame::function("b"));
        assert_eq!(p.value(b, m), 6.0);
        p.set_value(b, m, 2.5);
        assert_eq!(p.value(b, m), 2.5);
        p.add_value(b, m, 0.5);
        assert_eq!(p.value(b, m), 3.0);
        let unregistered = MetricId::from_index(0);
        assert_eq!(p.node(NodeId::ROOT).value(unregistered), 0.0);
    }

    #[test]
    fn multiple_metrics_per_node() {
        let mut p = Profile::new("t");
        let cpu = metric(&mut p, "cpu");
        let mem = metric(&mut p, "mem");
        let n = p.add_sample(&[Frame::function("f")], &[(cpu, 1.0), (mem, 64.0)]);
        assert_eq!(p.value(n, cpu), 1.0);
        assert_eq!(p.value(n, mem), 64.0);
        assert_eq!(p.node(n).values().len(), 2);
    }

    #[test]
    fn metric_by_name() {
        let mut p = Profile::new("t");
        let cpu = metric(&mut p, "cpu");
        assert_eq!(p.metric_by_name("cpu"), Some(cpu));
        assert_eq!(p.metric_by_name("nope"), None);
        assert_eq!(p.metric(cpu).name, "cpu");
    }

    #[test]
    fn pre_order_visits_parents_first() {
        let (p, _) = sample_profile();
        let order: Vec<String> = p
            .pre_order()
            .map(|id| p.resolve_frame(id).name)
            .collect();
        assert_eq!(order, ["", "main", "a", "c", "b"]);
    }

    #[test]
    fn post_order_visits_children_first() {
        let (p, _) = sample_profile();
        let order: Vec<String> = p
            .post_order()
            .map(|id| p.resolve_frame(id).name)
            .collect();
        assert_eq!(order, ["c", "a", "b", "main", ""]);
    }

    #[test]
    fn pre_order_from_subtree() {
        let (mut p, _) = sample_profile();
        let main = p.child(NodeId::ROOT, &Frame::function("main"));
        let names: Vec<String> = p
            .pre_order_from(main)
            .map(|id| p.resolve_frame(id).name)
            .collect();
        assert_eq!(names, ["main", "a", "c", "b"]);
    }

    #[test]
    fn path_and_depth() {
        let (mut p, _) = sample_profile();
        let main = p.child(NodeId::ROOT, &Frame::function("main"));
        let a = p.child(main, &Frame::function("a"));
        let c = p.child(a, &Frame::function("c"));
        assert_eq!(p.path(c), vec![main, a, c]);
        assert_eq!(p.depth(c), 3);
        assert_eq!(p.depth(NodeId::ROOT), 0);
        assert_eq!(p.path(NodeId::ROOT), Vec::<NodeId>::new());
    }

    #[test]
    fn traversals_cover_every_node_once() {
        let (p, _) = sample_profile();
        let pre: std::collections::HashSet<_> = p.pre_order().collect();
        let post: std::collections::HashSet<_> = p.post_order().collect();
        assert_eq!(pre.len(), p.node_count());
        assert_eq!(post.len(), p.node_count());
        assert_eq!(pre, post);
    }

    #[test]
    fn deep_tree_traversal_is_iterative() {
        // 100k-deep chain must not overflow the stack.
        let mut p = Profile::new("deep");
        let mut node = NodeId::ROOT;
        for i in 0..100_000 {
            node = p.child(node, &Frame::function(format!("f{}", i % 10)).with_address(i));
        }
        assert_eq!(p.pre_order().count(), 100_001);
        assert_eq!(p.post_order().count(), 100_001);
        assert_eq!(p.depth(node), 100_000);
    }

    #[test]
    fn meta_roundtrip() {
        let mut p = Profile::new("named");
        assert_eq!(p.meta().name, "named");
        p.meta_mut().profiler = "pprof".to_owned();
        p.meta_mut().timestamp_nanos = 12345;
        assert_eq!(p.meta().profiler, "pprof");
    }

    #[test]
    fn validate_catches_duplicate_children() {
        let (mut p, _) = sample_profile();
        // Forge a duplicate child by bypassing the index.
        let main = p.child(NodeId::ROOT, &Frame::function("main"));
        let dup = NodeId(p.nodes.len() as u32);
        let frame = p.nodes[main.index()].frame;
        p.nodes.push(Node {
            frame,
            parent: Some(NodeId::ROOT),
            children: Vec::new(),
            values: Vec::new(),
        });
        p.nodes[NodeId::ROOT.index()].children.push(dup);
        assert!(p.validate().is_err());
    }
}

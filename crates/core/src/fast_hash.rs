//! A fast, non-cryptographic hasher for interning and CCT child lookup.
//!
//! The hot loop of profile construction is a hash-map probe per call
//! frame per sample; SipHash (std's default, DoS-resistant) costs more
//! than the rest of the insertion combined. Profiles are not
//! attacker-controlled hash-flooding targets in an IDE context, so the
//! builder uses the FxHash construction (as rustc does): multiply by a
//! large odd constant and rotate, one word at a time.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash word-at-a-time hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn discriminates() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn byte_slices_of_all_lengths() {
        let data = [0xABu8; 17];
        let mut seen = std::collections::HashSet::new();
        for len in 0..=17 {
            let mut h = FxHasher::default();
            h.write(&data[..len]);
            seen.insert(h.finish());
        }
        // All prefixes hash distinctly (17 zero-padded tails could
        // collide in a bad construction).
        assert!(seen.len() >= 16, "{} distinct", seen.len());
    }

    #[test]
    fn map_works_end_to_end() {
        let mut map: FxHashMap<(u32, u64), usize> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert((i, u64::from(i) * 7), i as usize);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&(500, 3500)), Some(&500));
    }
}

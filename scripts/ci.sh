#!/usr/bin/env bash
# Tier-1 gate: everything here must pass offline (no network, no
# registry) on a clean checkout. ROADMAP.md points at this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== clippy (deny warnings) =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping lint step"
fi

echo "== CLI smoke =="
EV=target/release/easyview
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
printf 'main;work;inner 40\nmain;idle 10\n' > "$SMOKE_DIR/smoke.folded"
"$EV" info "$SMOKE_DIR/smoke.folded" > /dev/null
# Determinism contract: identical rendering regardless of thread count.
# (Cache *hits* on repeated identical requests are per-process and are
# asserted by the ev-cli unit tests; here we check the stats surface.)
"$EV" view "$SMOKE_DIR/smoke.folded" --threads 1 --cache-stats > "$SMOKE_DIR/seq.txt"
for threads in 2 4; do
    "$EV" view "$SMOKE_DIR/smoke.folded" --threads "$threads" --cache-stats \
        > "$SMOKE_DIR/par.txt"
    if ! diff "$SMOKE_DIR/seq.txt" "$SMOKE_DIR/par.txt" > /dev/null; then
        echo "FAIL: view output differs between --threads 1 and --threads $threads" >&2
        exit 1
    fi
done
grep -q '^view-cache: .* miss' "$SMOKE_DIR/seq.txt" \
    || { echo "FAIL: --cache-stats did not print the view-cache line" >&2; exit 1; }
"$EV" diff "$SMOKE_DIR/smoke.folded" "$SMOKE_DIR/smoke.folded" --threads 4 > /dev/null
"$EV" aggregate "$SMOKE_DIR/smoke.folded" "$SMOKE_DIR/smoke.folded" --threads 4 > /dev/null

echo "== trace smoke (self-profiling) =="
# Dogfood loop: a traced flame run over a gzip'd pprof input must emit
# an EasyView profile that easyview itself renders.
"$EV" convert "$SMOKE_DIR/smoke.folded" "$SMOKE_DIR/smoke.pprof" > /dev/null
"$EV" flame "$SMOKE_DIR/smoke.pprof" \
    --trace-out "$SMOKE_DIR/self.evpf" --trace-format easyview > /dev/null
"$EV" flame "$SMOKE_DIR/self.evpf" > /dev/null
for stage in flate.inflate wire.decode convert.pprof analysis.metric_view \
             flame.layout flame.render; do
    "$EV" search "$SMOKE_DIR/self.evpf" "$stage" | grep -q "$stage" \
        || { echo "FAIL: self-profile misses the $stage stage" >&2; exit 1; }
done
# Chrome export must be JSON the chrome importer itself accepts.
"$EV" flame "$SMOKE_DIR/smoke.pprof" \
    --trace-out "$SMOKE_DIR/self.trace.json" --trace-format chrome > /dev/null
"$EV" info "$SMOKE_DIR/self.trace.json" > /dev/null \
    || { echo "FAIL: chrome trace export does not re-import" >&2; exit 1; }
"$EV" stats "$SMOKE_DIR/smoke.pprof" > "$SMOKE_DIR/stats.txt"
grep -q '^view-cache: ' "$SMOKE_DIR/stats.txt" \
    || { echo "FAIL: stats did not print the view-cache line" >&2; exit 1; }
grep -q '^counter ' "$SMOKE_DIR/stats.txt" \
    || { echo "FAIL: stats did not print pipeline counters" >&2; exit 1; }
grep -q '^counter flate\.lut_primary ' "$SMOKE_DIR/stats.txt" \
    || { echo "FAIL: stats did not report the decode fast-path counters" >&2; exit 1; }
# The one-pass pprof decoder must actually run (nonzero field/sample
# counters) when a pprof fixture is loaded ...
grep -Eq '^counter wire\.onepass_fields [1-9]' "$SMOKE_DIR/stats.txt" \
    || { echo "FAIL: stats did not report nonzero wire.onepass_fields" >&2; exit 1; }
grep -Eq '^counter wire\.onepass_samples [1-9]' "$SMOKE_DIR/stats.txt" \
    || { echo "FAIL: stats did not report nonzero wire.onepass_samples" >&2; exit 1; }
# ... and the EASYVIEW_PPROF_REFERENCE escape hatch must route around
# it entirely (no onepass counters registered at all).
EASYVIEW_PPROF_REFERENCE=1 "$EV" stats "$SMOKE_DIR/smoke.pprof" > "$SMOKE_DIR/stats_ref.txt"
if grep -q '^counter wire\.onepass_' "$SMOKE_DIR/stats_ref.txt"; then
    echo "FAIL: EASYVIEW_PPROF_REFERENCE=1 still ran the one-pass decoder" >&2
    exit 1
fi

echo "== multi-member gzip smoke =="
# The golden 3-member fixture must render identically at any thread
# count and report one flate.members count per gzip member.
MM=tests/fixtures/multi_member.pb.gz
"$EV" info "$MM" > /dev/null
"$EV" view "$MM" --threads 1 > "$SMOKE_DIR/mm_seq.txt"
for threads in 2 8; do
    "$EV" view "$MM" --threads "$threads" > "$SMOKE_DIR/mm_par.txt"
    if ! diff "$SMOKE_DIR/mm_seq.txt" "$SMOKE_DIR/mm_par.txt" > /dev/null; then
        echo "FAIL: multi-member view differs between --threads 1 and --threads $threads" >&2
        exit 1
    fi
done
"$EV" stats "$MM" > "$SMOKE_DIR/mm_stats.txt"
grep -q '^counter flate\.members 3$' "$SMOKE_DIR/mm_stats.txt" \
    || { echo "FAIL: stats did not count 3 gzip members" >&2; exit 1; }

echo "== streaming ingest smoke =="
# The bounded-memory streaming path must render byte-identically to the
# buffered decoder at any chunk size, and must actually run chunked
# (nonzero flate.stream_chunks in the counter surface).
"$EV" view "$SMOKE_DIR/smoke.pprof" > "$SMOKE_DIR/stream_ref.txt"
for chunk in 512 65536; do
    "$EV" view "$SMOKE_DIR/smoke.pprof" --stream --chunk-size "$chunk" \
        > "$SMOKE_DIR/stream_out.txt"
    if ! diff "$SMOKE_DIR/stream_ref.txt" "$SMOKE_DIR/stream_out.txt" > /dev/null; then
        echo "FAIL: --stream --chunk-size $chunk view differs from buffered" >&2
        exit 1
    fi
done
"$EV" stats "$SMOKE_DIR/smoke.pprof" --stream --chunk-size 512 \
    > "$SMOKE_DIR/stream_stats.txt"
grep -Eq '^counter flate\.stream_chunks [1-9]' "$SMOKE_DIR/stream_stats.txt" \
    || { echo "FAIL: --stream did not report nonzero flate.stream_chunks" >&2; exit 1; }
grep -Eq '^counter wire\.stream_refills [1-9]' "$SMOKE_DIR/stream_stats.txt" \
    || { echo "FAIL: --stream did not report nonzero wire.stream_refills" >&2; exit 1; }

echo "== ingest smoke =="
# Runs the ingest bench in quick mode over the golden gzip'd pprof
# fixtures: fast and reference decoders must be byte-identical, the
# decompressed bytes must match pinned digests, and the fast path must
# clear the (relaxed, noise-tolerant) speedup gate.
rm -f BENCH_ingest.json
target/release/ingest --quick \
    || { echo "FAIL: ingest bench (quick) failed" >&2; exit 1; }
[ -s BENCH_ingest.json ] \
    || { echo "FAIL: BENCH_ingest.json missing or empty" >&2; exit 1; }
grep -q '"schema": "ev-bench-ingest/v1"' BENCH_ingest.json \
    || { echo "FAIL: BENCH_ingest.json malformed (schema key missing)" >&2; exit 1; }
# Restore the committed full-mode report; the quick run is a gate, not
# the artifact of record.
git checkout -- BENCH_ingest.json 2>/dev/null || true

echo "== serve smoke =="
# Runs the serve bench in quick mode: deterministic IDE session replay
# against ONE shared concurrent EVP server (per-session digest-checked
# across thread counts), per-method latency quantiles, and a
# flight-recorder chrome export that must re-import through our own
# parser.
rm -f BENCH_serve.json
target/release/serve --quick --flight-out "$SMOKE_DIR/flight.trace.json" \
    || { echo "FAIL: serve bench (quick) failed" >&2; exit 1; }
[ -s BENCH_serve.json ] \
    || { echo "FAIL: BENCH_serve.json missing or empty" >&2; exit 1; }
grep -q '"schema": "ev-bench-serve/v2"' BENCH_serve.json \
    || { echo "FAIL: BENCH_serve.json malformed (schema key missing)" >&2; exit 1; }
grep -q '"coalesced"' BENCH_serve.json \
    || { echo "FAIL: BENCH_serve.json misses the view-cache coalescing stats" >&2; exit 1; }
grep -Eq '"ide.requests": [1-9]' BENCH_serve.json \
    || { echo "FAIL: BENCH_serve.json has no ide.requests count" >&2; exit 1; }
grep -q '"ide.latency.profile/codeLink"' BENCH_serve.json \
    || { echo "FAIL: BENCH_serve.json misses per-method latency histograms" >&2; exit 1; }
# The exported flight recording is chrome trace JSON our importer reads.
[ -s "$SMOKE_DIR/flight.trace.json" ] \
    || { echo "FAIL: serve --flight-out wrote nothing" >&2; exit 1; }
"$EV" info "$SMOKE_DIR/flight.trace.json" > /dev/null \
    || { echo "FAIL: flight-recorder chrome export does not re-import" >&2; exit 1; }
git checkout -- BENCH_serve.json 2>/dev/null || true

echo "== shared-server smoke =="
# One shared EVP server, four deterministic editor sessions, replayed at
# several worker-thread counts. Per-session response digests must be
# identical regardless of how sessions are scheduled onto threads, the
# view cache must observe at least one coalesced request, and a
# malformed hex payload must come back as a JSON-RPC error, not a crash.
"$EV" serve-smoke --threads 1 > "$SMOKE_DIR/smoke_t1.txt" \
    || { echo "FAIL: serve-smoke --threads 1 failed" >&2; exit 1; }
grep '^digests: ' "$SMOKE_DIR/smoke_t1.txt" > "$SMOKE_DIR/smoke_ref.txt" \
    || { echo "FAIL: serve-smoke printed no digests line" >&2; exit 1; }
for threads in 2 8; do
    "$EV" serve-smoke --threads "$threads" > "$SMOKE_DIR/smoke_tn.txt" \
        || { echo "FAIL: serve-smoke --threads $threads failed" >&2; exit 1; }
    grep '^digests: ' "$SMOKE_DIR/smoke_tn.txt" > "$SMOKE_DIR/smoke_cmp.txt"
    if ! diff "$SMOKE_DIR/smoke_ref.txt" "$SMOKE_DIR/smoke_cmp.txt" > /dev/null; then
        echo "FAIL: per-session digests differ at --threads $threads" >&2
        exit 1
    fi
done
grep -Eq '^coalesced: [1-9]' "$SMOKE_DIR/smoke_t1.txt" \
    || { echo "FAIL: serve-smoke observed no request coalescing" >&2; exit 1; }
grep -q '^bad-hex: error -32602' "$SMOKE_DIR/smoke_t1.txt" \
    || { echo "FAIL: malformed hex was not refused with INVALID_PARAMS" >&2; exit 1; }

echo "== script engine smoke =="
# The bytecode VM and the tree-walking reference interpreter must agree
# byte for byte on a real analysis script, at any thread count (the
# pure map_nodes callback fans out over ev-par), and the script-engine
# counters must surface in stats — absent under reference routing.
cat > "$SMOKE_DIR/sample.evs" <<'EOF'
let scores = map_nodes(fn(n) {
    fn damp(v, k, self) {
        if k < 1 { return v; }
        return self(v * 0.5 + 1, k - 1, self);
    }
    return damp(value(n, "samples"), 4, damp);
});
let acc = 0;
for s in scores { acc = acc + s; }
print(node_count(), floor(acc));
EOF
"$EV" script "$SMOKE_DIR/smoke.pprof" "$SMOKE_DIR/sample.evs" > "$SMOKE_DIR/script_vm.txt"
EASYVIEW_SCRIPT_REFERENCE=1 "$EV" script "$SMOKE_DIR/smoke.pprof" "$SMOKE_DIR/sample.evs" \
    > "$SMOKE_DIR/script_ref.txt"
if ! diff "$SMOKE_DIR/script_vm.txt" "$SMOKE_DIR/script_ref.txt" > /dev/null; then
    echo "FAIL: script output differs between VM and reference interpreter" >&2
    exit 1
fi
for threads in 1 2 8; do
    "$EV" script "$SMOKE_DIR/smoke.pprof" "$SMOKE_DIR/sample.evs" --threads "$threads" \
        > "$SMOKE_DIR/script_par.txt"
    if ! diff "$SMOKE_DIR/script_vm.txt" "$SMOKE_DIR/script_par.txt" > /dev/null; then
        echo "FAIL: script output differs at --threads $threads" >&2
        exit 1
    fi
done
"$EV" stats "$SMOKE_DIR/smoke.pprof" --script "$SMOKE_DIR/sample.evs" --threads 2 \
    > "$SMOKE_DIR/script_stats.txt"
grep -Eq '^counter script\.vm_ops [1-9]' "$SMOKE_DIR/script_stats.txt" \
    || { echo "FAIL: stats did not report nonzero script.vm_ops" >&2; exit 1; }
grep -Eq '^counter script\.chunks_compiled [1-9]' "$SMOKE_DIR/script_stats.txt" \
    || { echo "FAIL: stats did not report nonzero script.chunks_compiled" >&2; exit 1; }
grep -Eq '^counter script\.par_visits [1-9]' "$SMOKE_DIR/script_stats.txt" \
    || { echo "FAIL: stats did not report nonzero script.par_visits" >&2; exit 1; }
EASYVIEW_SCRIPT_REFERENCE=1 "$EV" stats "$SMOKE_DIR/smoke.pprof" \
    --script "$SMOKE_DIR/sample.evs" --threads 2 > "$SMOKE_DIR/script_stats_ref.txt"
if grep -q '^counter script\.' "$SMOKE_DIR/script_stats_ref.txt"; then
    echo "FAIL: EASYVIEW_SCRIPT_REFERENCE=1 still ran the bytecode VM" >&2
    exit 1
fi

echo "== script bench smoke =="
# Runs the script bench in quick mode: differential pre-gate (VM ==
# reference == parallel on every workload) plus the relaxed 2x speedup
# gate on the CCT fold.
rm -f BENCH_script.json
target/release/script --quick \
    || { echo "FAIL: script bench (quick) failed" >&2; exit 1; }
[ -s BENCH_script.json ] \
    || { echo "FAIL: BENCH_script.json missing or empty" >&2; exit 1; }
grep -q '"schema": "ev-bench-script/v1"' BENCH_script.json \
    || { echo "FAIL: BENCH_script.json malformed (schema key missing)" >&2; exit 1; }
git checkout -- BENCH_script.json 2>/dev/null || true

echo "== stats --json smoke =="
"$EV" stats "$SMOKE_DIR/smoke.pprof" --json > "$SMOKE_DIR/stats.json"
grep -q '"schema": "easyview-stats/v1"' "$SMOKE_DIR/stats.json" \
    || { echo "FAIL: stats --json schema missing" >&2; exit 1; }
grep -q '"counters"' "$SMOKE_DIR/stats.json" \
    || { echo "FAIL: stats --json misses the counters section" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$SMOKE_DIR/stats.json" \
        || { echo "FAIL: stats --json is not valid JSON" >&2; exit 1; }
fi

echo "== OK =="

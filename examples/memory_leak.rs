//! The cloud case study (paper §VII-C1, Fig. 4): find memory leaks in a
//! gRPC client by aggregating periodic heap snapshots.
//!
//! Reproduces the paper's workflow end to end: PProf-style snapshots
//! every 0.1 s → aggregate into one unified tree → per-context
//! histograms over time → classify timelines → leak warnings, plus the
//! IDE-side actions (code link, hover) on a flagged context.
//!
//! Run with: `cargo run -p ev-bench --example memory_leak`

use ev_analysis::{aggregate, classify_timeline, TimelinePattern};
use ev_core::Profile;
use ev_flame::{FlameGraph, Histogram};
use ev_ide::{EditorClient, EvpServer};
use ev_gen::grpc_leak;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Capture: 40 snapshots at 0.1 s spacing (synthetic stand-ins for
    //    the paper's rpcx-benchmark client snapshots).
    let snapshots = grpc_leak::snapshots(40, 7);
    println!(
        "captured {} heap snapshots over {:.1} s",
        snapshots.len(),
        (snapshots.len() - 1) as f64 * 0.1
    );

    // 2. Aggregate all snapshots into one tree (paper §V-A-c).
    let refs: Vec<&Profile> = snapshots.iter().collect();
    let agg = aggregate(&refs, "inuse_space").map_err(|i| format!("snapshot {i} has no metric"))?;

    // 3. Walk the aggregate's allocation contexts, attach histograms,
    //    and classify their timelines.
    println!("\nallocation contexts and their active-memory timelines:");
    let mut flagged = Vec::new();
    for node in agg.profile.node_ids() {
        if !agg.profile.node(node).children().is_empty() {
            continue;
        }
        let frame = agg.profile.resolve_frame(node);
        if frame.name.is_empty() {
            continue;
        }
        let series = agg.series(node);
        let pattern = classify_timeline(series);
        let hist = Histogram::new(series);
        println!("  {:<44} {} {}", frame.name, hist.sparkline(), pattern);
        if pattern == TimelinePattern::PotentialLeak {
            flagged.push(node);
        }
    }

    // 4. The flame-graph overview of the aggregate (Fig. 4's bottom pane).
    let graph = FlameGraph::top_down(&agg.profile, agg.metrics.sum);
    println!("\naggregate flame graph (sum of in-use bytes):");
    print!("{}", ev_flame::render::ansi(&graph, 78, false));

    // 5. Fig. 4 steps ③–④ on the first flagged context: code link into
    //    the editor, then hover for the detailed metrics.
    let mut client = EditorClient::connect(EvpServer::new());
    let id = client.open_profile(&agg.profile)?;
    let leak = flagged.first().ok_or("expected a flagged leak")?;
    client.code_link(id, leak.index() as i64)?;
    let editor = client.editor().clone();
    println!(
        "\ncode link: editor opened {} at line {}",
        editor.open_file.as_deref().unwrap_or("?"),
        editor.highlighted_line.unwrap_or(0)
    );
    let hover = client.hover(
        id,
        editor.open_file.as_deref().unwrap_or(""),
        editor.highlighted_line.unwrap_or(0),
    )?;
    println!("hover: {}", hover.join(" | "));

    println!(
        "\nverdict: {} potential leak site(s) — the paper flags\n\
         transport.newBufWriter and bufio.NewReaderSize, 'continuously\n\
         high with no clear sign of reclamation'.",
        flagged.len()
    );
    Ok(())
}

//! Customizable analysis with EVscript (paper §V-B): the programming
//! pane where users extend the engine without installing anything.
//!
//! Shows the two callback classes the paper defines — node-visit
//! callbacks and metric-computation callbacks — on a perf-style profile
//! with cycles and instructions, plus a by-source-line merge (the
//! paper's own example of a node-visit customization).
//!
//! Run with: `cargo run -p ev-bench --example custom_script`

use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit, Profile};
use ev_script::ScriptHost;

fn build_profile() -> Profile {
    let mut p = Profile::new("perf-session");
    let cycles = p.add_metric(MetricDescriptor::new(
        "cycles",
        MetricUnit::Cycles,
        MetricKind::Exclusive,
    ));
    let instructions = p.add_metric(MetricDescriptor::new(
        "instructions",
        MetricUnit::Count,
        MetricKind::Exclusive,
    ));
    type SampleSpec<'a> = (&'a [(&'a str, &'a str, u32)], f64, f64);
    let samples: &[SampleSpec] = &[
        (&[("main", "app.c", 10), ("matmul", "math.c", 50)], 9.0e8, 1.2e8),
        (&[("main", "app.c", 10), ("memcpy_chain", "util.c", 7)], 6.0e8, 5.5e8),
        (&[("main", "app.c", 10), ("branchy_parse", "parse.c", 90)], 4.0e8, 1.0e8),
        (&[("main", "app.c", 12), ("matmul", "math.c", 50)], 2.0e8, 0.3e8),
    ];
    for &(path, cyc, inst) in samples {
        let frames: Vec<Frame> = path
            .iter()
            .map(|&(n, f, l)| Frame::function(n).with_source(f, l))
            .collect();
        p.add_sample(&frames, &[(cycles, cyc), (instructions, inst)]);
    }
    p
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut profile = build_profile();
    let mut host = ScriptHost::new(&mut profile);

    // 1. Metric-computation callback: derive cycles-per-instruction
    //    (the paper's own example formula).
    let out = host.run(
        r#"
        derive("cpi", fn(n) {
            let i = value(n, "instructions");
            if i == 0 { return 0; }
            return value(n, "cycles") / i;
        });
        # Rank the contexts by CPI.
        let worst = 0;
        visit(fn(n) {
            if value(n, "cpi") > value(worst, "cpi") { worst = n; }
        });
        print("worst CPI:", name(worst), "at", file(worst) + ":" + str(line(worst)),
              "cpi =", value(worst, "cpi"));
        "#,
    )?;
    print!("{}", out.stdout);

    // 2. Node-visit callback: merge contexts mapped to the same source
    //    line (the paper: "users can decide to merge two nodes if they
    //    are mapped to the same source code line").
    let out = host.run(
        r#"
        let lines = [];
        let totals = [];
        visit(fn(n) {
            if value(n, "cycles") == 0 { return; }
            let key = file(n) + ":" + str(line(n));
            let found = false;
            let i = 0;
            while i < len(lines) {
                if lines[i] == key {
                    totals[i] = totals[i] + value(n, "cycles");
                    found = true;
                }
                i = i + 1;
            }
            if !found {
                push(lines, key);
                push(totals, value(n, "cycles"));
            }
        });
        print("cycles by source line:");
        let i = 0;
        while i < len(lines) {
            print("  " + lines[i], totals[i]);
            i = i + 1;
        }
        "#,
    )?;
    print!("{}", out.stdout);

    // 3. The derived metric is now a first-class channel of the profile:
    //    every view can use it.
    let cpi = profile.metric_by_name("cpi").ok_or("cpi missing")?;
    let table = {
        let mut t = ev_flame::TreeTable::new(&profile, &[cpi]);
        t.expand_to_depth(8);
        t
    };
    println!("\ntree table over the script-derived metric:");
    print!("{}", table.render());
    Ok(())
}

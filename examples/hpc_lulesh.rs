//! The HPC case study (paper §VII-C2, Figs. 6–7): combine two
//! profilers' outputs over LULESH in one tool.
//!
//! HPCToolkit pinpoints the hotspot (the allocator, visible bottom-up);
//! DrCCTProf explains the locality problem (use/reuse pairs between the
//! two force kernels, navigated through correlated flame graphs).
//!
//! Run with: `cargo run -p ev-bench --example hpc_lulesh`

use ev_core::LinkKind;
use ev_flame::{render, CorrelatedView, FlameGraph};
use ev_gen::lulesh;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: hotspot analysis on the HPCToolkit profile (Fig. 6).
    let cpu_profile = lulesh::cpu_profile(42);
    let cpu = cpu_profile
        .metric_by_name("CPUTIME (sec)")
        .ok_or("metric missing")?;

    println!("bottom-up flame graph (Fig. 6) — hot leaves and their callers:");
    let bottom_up = FlameGraph::bottom_up(&cpu_profile, cpu);
    print!("{}", render::ansi(&bottom_up, 78, false));

    let hottest = bottom_up
        .rects()
        .iter()
        .filter(|r| r.depth == 1)
        .max_by(|a, b| a.width.total_cmp(&b.width))
        .ok_or("empty graph")?;
    println!(
        "\nhot leaf: {} with {:.1}% of CPU — \"the hotspot is rooted in\n\
         the memory management\"; the paper swaps in TCMalloc.",
        hottest.label,
        hottest.width * 100.0
    );

    // --- Part 2: locality analysis on the DrCCTProf profile (Fig. 7).
    let reuse = lulesh::reuse_profile(42);
    let view = CorrelatedView::new(&reuse.profile, LinkKind::UseReuse, reuse.bytes);

    // Left pane: all array allocations.
    let allocations = view.endpoints(0, &[]);
    println!("\ncorrelated view, pane 1 — array allocations ({}):", allocations.len());
    for &alloc in allocations.iter().take(3) {
        println!("  {}", reuse.profile.resolve_frame(alloc).name);
    }
    println!("  …");

    // Select the first allocation (paper's step ①): its uses appear.
    let selected_alloc = allocations[0];
    let uses = view.endpoints(1, &[selected_alloc]);
    println!(
        "\nselect {:?} -> pane 2 shows {} use context(s):",
        reuse.profile.resolve_frame(selected_alloc).name,
        uses.len()
    );
    for &use_ctx in &uses {
        let path: Vec<String> = reuse
            .profile
            .path(use_ctx)
            .iter()
            .map(|&id| reuse.profile.resolve_frame(id).name)
            .collect();
        println!("  {}", path.join(" → "));
    }

    // Select the first use (step ②): the reuses appear.
    let selected_use = uses[0];
    let reuses = view.endpoints(2, &[selected_alloc, selected_use]);
    println!("\nselect the use -> pane 3 shows {} reuse context(s):", reuses.len());
    for &reuse_ctx in &reuses {
        let path: Vec<String> = reuse
            .profile
            .path(reuse_ctx)
            .iter()
            .map(|&id| reuse.profile.resolve_frame(id).name)
            .collect();
        println!("  {}", path.join(" → "));
    }

    // --- Part 3: the modeled optimizations.
    let (alloc_speedup, locality_speedup) = lulesh::modeled_speedups(&cpu_profile);
    println!(
        "\noptimizations guided by the views:\n\
         - TCMalloc swap:        {:.0}% speedup (paper: ~30%)\n\
         - hoist + loop fusion:  {:.0}% further (paper: ~28%)",
        (alloc_speedup - 1.0) * 100.0,
        (locality_speedup - 1.0) * 100.0
    );
    Ok(())
}

//! The differential view (paper §VI-A, Fig. 3): Spark executing the
//! same query through RDD APIs (P₁) vs SQL Dataset APIs (P₂).
//!
//! Reproduces the figure's reading: `[D]` tags on the deleted shuffle,
//! `[A]` tags on the added SQL engine, quantified deltas everywhere —
//! and shows the same diff re-shaped bottom-up, which prior
//! color-only differential flame graphs cannot do.
//!
//! Run with: `cargo run -p ev-bench --example diff_spark`

use ev_flame::{render, DiffFlameGraph, FlameGraph};
use ev_gen::spark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rdd = spark::rdd_profile();
    let sql = spark::sql_profile();

    let dfg = DiffFlameGraph::new(&rdd, &sql, spark::metric_name())
        .map_err(|i| format!("profile {i} lacks the metric"))?;

    println!("differential flame graph (Fig. 3), P1 = RDD, P2 = SQL Dataset:");
    print!("{}", render::ansi(dfg.graph(), 96, false));

    println!("\ntag counts:");
    for (tag, count) in dfg.diff().tag_counts() {
        println!("  {tag}  {count} context(s)");
    }

    println!("\nlargest regressions and wins:");
    let mut entries: Vec<_> = dfg
        .diff()
        .entries()
        .filter(|(_, e)| e.delta() != 0.0)
        .collect();
    entries.sort_by(|a, b| b.1.delta().abs().total_cmp(&a.1.delta().abs()));
    for (node, entry) in entries.iter().take(5) {
        println!(
            "  {} {:<64} Δ {:+.1} s",
            entry.tag,
            dfg.diff().profile.resolve_frame(*node).name,
            entry.delta() / 1e9
        );
    }

    // The union tree is a plain profile, so the same diff re-shapes into
    // a bottom-up view — quantified, not just colored.
    let bottom_up = FlameGraph::bottom_up(&dfg.diff().profile, dfg.diff().delta);
    println!(
        "\nbottom-up over the delta metric: {} frames (the paper's point:\n\
         'more insights into all the three types of flame graphs').",
        bottom_up.rects().len()
    );

    println!(
        "\nconclusion: SQL Dataset run is {:.1}x faster — the gains come\n\
         from the efficient SQL engine ([A] frames) and bypassing the\n\
         costly data shuffle ([D] frames), exactly Fig. 3's finding.",
        spark::speedup()
    );
    Ok(())
}

//! Quickstart: build a profile, convert foreign formats, and view it —
//! the 5-minute tour of the EasyView API.
//!
//! Run with: `cargo run -p ev-bench --example quickstart`

use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit, ProfileBuilder};
use ev_flame::{render, FlameGraph, TreeTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Produce a profile through the data-builder API — the route a
    //    profiler takes to emit EasyView's format directly (§IV-B).
    let mut builder = ProfileBuilder::new("quickstart");
    builder.profiler("demo-tool");
    let cpu = builder.add_metric(MetricDescriptor::new(
        "cpu",
        MetricUnit::Nanoseconds,
        MetricKind::Exclusive,
    ));
    builder.push(Frame::function("main").with_source("app.rs", 3));
    builder.push(Frame::function("parse_config").with_source("config.rs", 41));
    builder.sample(&[(cpu, 12e6)]);
    builder.pop()?;
    builder.push(Frame::function("serve_requests").with_source("server.rs", 88));
    for _ in 0..3 {
        builder.push(Frame::function("handle_one").with_source("server.rs", 120));
        builder.sample(&[(cpu, 25e6)]);
        builder.pop()?;
    }
    builder.sample(&[(cpu, 8e6)]);
    let profile = builder.finish();

    // 2. Serialize / reload in the native binary format.
    let bytes = ev_core::format::to_bytes(&profile);
    let reloaded = ev_core::format::from_bytes(&bytes)?;
    println!(
        "native format: {} bytes, {} nodes, roundtrip ok = {}",
        bytes.len(),
        reloaded.node_count(),
        reloaded == profile
    );

    // 3. Convert a foreign format: folded stacks from any FlameGraph
    //    tooling parse through the same front door.
    let folded = "main;compute;fft 420\nmain;compute;ifft 180\nmain;io 95\n";
    let converted = ev_formats::parse_auto(folded.as_bytes())?;
    println!(
        "converted collapsed stacks: {} nodes, format detected = {}",
        converted.node_count(),
        ev_formats::detect(folded.as_bytes())
    );

    // 4. Lay out and render the top-down flame graph.
    let graph = FlameGraph::top_down(&profile, cpu);
    println!("\ntop-down flame graph ({} frames):", graph.rects().len());
    print!("{}", render::ansi(&graph, 78, false));

    // 5. The tree-table view with the hot path expanded.
    let mut table = TreeTable::new(&profile, &[cpu]);
    table.expand_hot_path(0);
    println!("\ntree table (hot path expanded):");
    print!("{}", table.render());

    // 6. SVG output for documents.
    let svg = render::svg(&graph, &render::SvgOptions::default());
    std::fs::write("/tmp/quickstart-flame.svg", &svg)?;
    println!("\nwrote /tmp/quickstart-flame.svg ({} bytes)", svg.len());
    Ok(())
}

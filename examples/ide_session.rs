//! A full EVP session (paper §VI-B): everything an editor does with a
//! profile, over the wire protocol.
//!
//! Walks the protocol end to end — initialize, open, the three flame
//! views, search, the mandatory code-link action, code lenses, hovers,
//! the floating-window summary, and a customization script — exactly
//! the traffic the VSCode extension generates.
//!
//! Run with: `cargo run -p ev-bench --example ide_session`

use ev_formats::parse_auto;
use ev_ide::{EditorClient, EvpServer};
use ev_json::Value;

const FOLDED: &str = "\
main;router;handle_api;json_decode 240
main;router;handle_api;db_query 310
main;router;handle_api;render 120
main;router;handle_static 80
main;gc 95
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Any supported format can feed the session; use folded stacks here.
    let mut profile = parse_auto(FOLDED.as_bytes())?;
    // Give two frames source mapping so code links work.
    let db = profile
        .node_ids()
        .find(|&id| profile.resolve_frame(id).name == "db_query")
        .ok_or("frame missing")?;
    let frame = ev_core::Frame::function("db_query").with_source("src/db.rs", 77);
    let parent = profile.node(db).parent().ok_or("no parent")?;
    let mapped = profile.child(parent, &frame);
    let samples = profile.metric_by_name("samples").ok_or("metric")?;
    let v = profile.value(db, samples);
    profile.set_value(db, samples, 0.0);
    profile.set_value(mapped, samples, v);

    let mut client = EditorClient::connect(EvpServer::new());

    // initialize: capability discovery.
    let init = client.request("initialize", Value::Null)?;
    println!(
        "server: {} v{}, {} capabilities",
        init.get("name").and_then(Value::as_str).unwrap_or("?"),
        init.get("version").and_then(Value::as_str).unwrap_or("?"),
        init.get("capabilities").and_then(Value::as_array).map_or(0, <[Value]>::len),
    );

    // profile/open.
    let id = client.open_profile(&profile)?;
    println!("opened profile #{id}");

    // The three generic views (§VI-A-a).
    for view in ["topDown", "bottomUp", "flat"] {
        let rects = client.flame_graph(id, view, "samples")?;
        println!("  {view:<9} view: {} frames", rects.len());
    }

    // Search.
    let hits = client.search(id, "handle")?;
    println!(
        "search \"handle\": {:?}",
        hits.iter().map(|(_, l)| l.as_str()).collect::<Vec<_>>()
    );

    // Code link (the mandatory action) on the mapped frame.
    let rects = client.flame_graph(id, "topDown", "samples")?;
    let target = rects
        .iter()
        .find(|r| r.label == "db_query" && r.mapped)
        .ok_or("mapped frame missing")?;
    client.code_link(id, target.node)?;
    let editor = client.editor().clone();
    println!(
        "code link: opened {} line {}, {} code lens(es)",
        editor.open_file.as_deref().unwrap_or("?"),
        editor.highlighted_line.unwrap_or(0),
        editor.lenses.len()
    );
    for (line, text) in &editor.lenses {
        println!("  lens @{line}: {text}");
    }

    // Hover on the highlighted line.
    let hover = client.hover(id, "src/db.rs", 77)?;
    println!("hover: {}", hover.join(" | "));

    // Floating-window summary.
    let summary = client.summary(id)?;
    println!(
        "summary: {} nodes, hottest = {}",
        summary.get("nodes").and_then(Value::as_i64).unwrap_or(0),
        summary
            .get("hottest")
            .and_then(|h| h.at(0))
            .and_then(|h| h.get("label"))
            .and_then(Value::as_str)
            .unwrap_or("?")
    );

    // The programming pane (§V-B): derive a share metric in EVscript.
    let stdout = client.run_script(
        id,
        r#"
        derive("share", fn(n) { return value(n, "samples") / total("samples"); });
        let worst = 0;
        visit(fn(n) { if value(n, "share") > value(worst, "share") { worst = n; } });
        print("hottest context:", name(worst));
        "#,
    )?;
    print!("script output: {stdout}");
    Ok(())
}

//! Memory-scaling analysis (paper §V-B): differentiate two runs by
//! *division* instead of subtraction to find contexts that scale worse
//! than the program — the ScaAnalyzer-style measurement the paper cites
//! as a use of customizable differential metrics.
//!
//! Run with: `cargo run -p ev-bench --example memory_scaling`

use ev_analysis::scaling_diff;
use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit, Profile};

/// A fake MPI application's heap profile at a given rank count: local
/// state scales linearly, halo-exchange buffers quadratically, constants
/// not at all.
fn run_at(ranks: u32) -> Profile {
    let mut p = Profile::new(format!("app@{ranks}ranks"));
    let m = p.add_metric(MetricDescriptor::new(
        "heap",
        MetricUnit::Bytes,
        MetricKind::Exclusive,
    ));
    let r = f64::from(ranks);
    let mib = 1024.0 * 1024.0;
    p.add_sample(
        &[Frame::function("main"), Frame::function("allocate_local_state")],
        &[(m, 48.0 * r * mib)],
    );
    p.add_sample(
        &[
            Frame::function("main"),
            Frame::function("exchange_halos"),
            Frame::function("allocate_halo_buffers"),
        ],
        &[(m, 2.0 * r * r * mib)],
    );
    p.add_sample(
        &[Frame::function("main"), Frame::function("load_constants")],
        &[(m, 64.0 * mib)],
    );
    p
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let small = run_at(4);
    let large = run_at(16);

    let s = scaling_diff(&small, &large, "heap").map_err(|i| format!("profile {i} lacks heap"))?;
    println!(
        "program heap grows {:.1}x from 4 to 16 ranks",
        s.program_ratio
    );

    println!("\nper-context scaling ratios:");
    for node in s.profile.node_ids() {
        let ratio = s.ratio(node);
        if ratio == 0.0 {
            continue;
        }
        let frame = s.profile.resolve_frame(node);
        if frame.name.is_empty() {
            continue;
        }
        println!("  {:<28} {:>6.1}x", frame.name, ratio);
    }

    println!("\nscaling bottlenecks (ratio > program ratio):");
    for (node, ratio) in s.bottlenecks(0.10) {
        println!(
            "  {:<28} {:>6.1}x  <- superlinear, fix before scaling out",
            s.profile.resolve_frame(node).name,
            ratio
        );
    }

    println!(
        "\n(the subtraction-based diff would rank allocate_local_state\n\
         first by absolute delta; division surfaces the quadratic halo\n\
         buffers — the paper's point about ratio-based differentials.)"
    );
    Ok(())
}

//! Cross-crate property tests: randomized profiles exercise the full
//! serialization, conversion, analysis, and protocol stack.

use ev_core::{MetricId, Profile};
use ev_gen::synthetic::SyntheticSpec;
use ev_ide::EvpServer;
use ev_test::prelude::*;

fn arb_spec() -> impl Gen<Value = SyntheticSpec> {
    (
        any_u64(),
        50usize..400,
        2usize..6,
        8usize..20,
        1usize..4,
    )
        .prop_map(|(seed, samples, min_depth, max_depth, metrics)| SyntheticSpec {
            seed,
            samples,
            functions: 200,
            min_depth,
            max_depth: max_depth.max(min_depth + 1),
            modules: 4,
            metrics,
        })
}

property! {
    #![cases(24)]

    fn native_format_roundtrips_generated_profiles(spec in arb_spec()) {
        let profile = spec.build();
        profile.validate().unwrap();
        let bytes = ev_core::format::to_bytes(&profile);
        let decoded = ev_core::format::from_bytes(&bytes).unwrap();
        prop_assert_eq!(decoded, profile);
    }

    fn pprof_roundtrip_preserves_shape_and_mass(spec in arb_spec()) {
        let profile = spec.build();
        let bytes = ev_formats::pprof::write(
            &profile,
            ev_formats::pprof::WriteOptions::default(),
        );
        let decoded = ev_formats::pprof::parse(&bytes).unwrap();
        decoded.validate().unwrap();
        prop_assert_eq!(decoded.node_count(), profile.node_count());
        for (i, metric) in profile.metrics().iter().enumerate() {
            let m1 = MetricId::from_index(i);
            let m2 = decoded.metric_by_name(&metric.name).unwrap();
            let (t1, t2) = (profile.total(m1), decoded.total(m2));
            // pprof stores integer values; allow rounding per node.
            prop_assert!((t1 - t2).abs() <= profile.node_count() as f64, "{t1} vs {t2}");
        }
    }

    fn transforms_conserve_mass_on_generated_profiles(spec in arb_spec()) {
        let profile = spec.build();
        let metric = MetricId::from_index(0);
        let total = profile.total(metric);
        let name = profile.metric(metric).name.clone();
        let bu = ev_analysis::bottom_up(&profile, metric);
        let flat = ev_analysis::flatten(&profile, metric);
        let m_bu = bu.metric_by_name(&name).unwrap();
        let m_flat = flat.metric_by_name(&name).unwrap();
        prop_assert!((bu.total(m_bu) - total).abs() / total < 1e-9);
        prop_assert!((flat.total(m_flat) - total).abs() / total < 1e-9);
    }

    fn aggregate_of_clones_is_scalar_multiple(spec in arb_spec(), n in 2usize..5) {
        let profile = spec.build();
        let metric = MetricId::from_index(0);
        let name = profile.metric(metric).name.clone();
        let clones: Vec<&Profile> = std::iter::repeat_n(&profile, n).collect();
        let agg = ev_analysis::aggregate(&clones, &name).unwrap();
        let total = profile.total(metric);
        prop_assert!(
            (agg.profile.total(agg.metrics.sum) - total * n as f64).abs() / total < 1e-9
        );
        prop_assert!(
            (agg.profile.total(agg.metrics.mean) - total).abs() / total < 1e-9
        );
        // min == max == per-profile value at every node.
        for id in agg.profile.node_ids() {
            let min = agg.profile.value(id, agg.metrics.min);
            let max = agg.profile.value(id, agg.metrics.max);
            prop_assert!((min - max).abs() < 1e-9);
        }
    }

    fn evp_server_never_panics_on_arbitrary_bytes(data in vec(any_u8(), 0..512)) {
        let server = EvpServer::new();
        // Arbitrary bytes: either an error or a partial-frame wait, never
        // a panic.
        let _ = server.handle_bytes(&data);
    }

    fn evp_server_survives_arbitrary_json_requests(
        method in string_from("abcdefghijklmnopqrstuvwxyz/", 0..25),
        id in any_i64(),
        junk in string_from("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789", 0..17),
    ) {
        let server = EvpServer::new();
        let request = ev_json::Value::object([
            ("jsonrpc", ev_json::Value::from("2.0")),
            ("id", ev_json::Value::Int(id)),
            ("method", ev_json::Value::from(method)),
            ("params", ev_json::Value::object([
                ("profileId", ev_json::Value::Int(id)),
                ("junk", ev_json::Value::from(junk)),
            ])),
        ]);
        let frame = ev_ide::rpc::encode_frame(&request);
        let (reply, consumed) = server.handle_bytes(&frame).unwrap();
        prop_assert_eq!(consumed, frame.len());
        // Every well-formed request gets exactly one well-formed response.
        let (value, used) = ev_ide::rpc::decode_frame(&reply).unwrap().unwrap();
        prop_assert_eq!(used, reply.len());
        prop_assert!(ev_ide::rpc::Response::from_value(&value).is_ok());
    }

    fn flame_layout_geometry_on_generated_profiles(spec in arb_spec()) {
        let profile = spec.build();
        let metric = MetricId::from_index(0);
        let graph = ev_flame::FlameGraph::top_down(&profile, metric);
        for pair in graph.rects().windows(2) {
            if pair[0].depth == pair[1].depth {
                prop_assert!(pair[0].x + pair[0].width <= pair[1].x + 1e-9);
            }
        }
        // Search finds every function name that exists.
        let hit = graph.search("pkg.Function");
        prop_assert!(hit.len() <= graph.rects().len());
    }
}

//! Golden round-trip tests over checked-in gzip'd pprof fixtures.
//!
//! Each fixture runs the full substrate stack — `ev-flate` gzip
//! inflate → `ev-wire` protobuf decode → EasyView profile — and is
//! pinned to golden numbers (node count, exact total bits), so any
//! change to the decoding pipeline that alters output is caught against
//! bytes that never change. The decoded profile must also survive a
//! native-format re-encode round trip and produce bit-identical views
//! through the parallel and cached paths.
//!
//! Regenerate the fixtures (after an intentional generator change)
//! with:
//!
//! ```text
//! cargo test -p ev-bench --test golden_pprof -- --ignored regenerate
//! ```
//!
//! and update the golden constants from the test's output.

use ev_analysis::{profile_fingerprint, view_key, ExecPolicy, MetricView, ViewCache};
use ev_core::Profile;
use ev_flate::{gzip_decompress, is_gzip};
use ev_gen::{grpc_leak, synthetic::SyntheticSpec};
use std::path::PathBuf;

struct Golden {
    file: &'static str,
    nodes: usize,
    metric: &'static str,
    /// `total(metric).to_bits()` — exact, not approximate.
    total_bits: u64,
}

const GOLDENS: [Golden; 2] = [
    Golden {
        file: "synthetic_cpu.pb.gz",
        nodes: 2202,
        metric: "cpu",
        total_bits: 0x4162_fa83_a000_0000,
    },
    Golden {
        file: "grpc_leak.pb.gz",
        nodes: 10,
        metric: "inuse_space",
        total_bits: 0x419d_9803_7800_0000,
    },
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

fn fixture_sources() -> Vec<(&'static str, Vec<u8>)> {
    let synthetic = SyntheticSpec {
        samples: 2_000,
        seed: 11,
        ..SyntheticSpec::default()
    }
    .build_pprof();
    let leak = grpc_leak::snapshots(3, 11).pop().expect("snapshots");
    let leak_gz = ev_formats::pprof::write(&leak, ev_formats::pprof::WriteOptions::default());
    vec![
        ("synthetic_cpu.pb.gz", synthetic),
        ("grpc_leak.pb.gz", leak_gz),
    ]
}

#[test]
#[ignore = "writes tests/fixtures and prints golden constants"]
fn regenerate() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for (name, bytes) in fixture_sources() {
        std::fs::write(dir.join(name), &bytes).unwrap();
        let p = ev_formats::pprof::parse(&bytes).unwrap();
        let m = ev_core::MetricId::from_index(0);
        println!(
            "{name}: nodes={} metric={:?} total_bits={:#x} ({} bytes)",
            p.node_count(),
            p.metrics()[0].name,
            p.total(m).to_bits(),
            bytes.len()
        );
    }
    for (name, bytes) in negative_fixture_sources() {
        std::fs::write(dir.join(name), &bytes).unwrap();
        let outcome = match ev_formats::pprof::parse(&bytes) {
            Ok(p) => format!("parses: nodes={} metrics={}", p.node_count(), p.metrics().len()),
            Err(e) => format!("fails: {e}"),
        };
        println!(
            "{name}: crc32={:#010x} ({} bytes) {outcome}",
            ev_flate::crc32(&bytes),
            bytes.len()
        );
    }
}

fn load_fixture(golden: &Golden) -> (Vec<u8>, Profile) {
    let path = fixture_dir().join(golden.file);
    let bytes = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); see regenerate()", path.display()));
    let profile = ev_formats::pprof::parse(&bytes).expect("fixture parses");
    (bytes, profile)
}

#[test]
fn fixtures_decode_to_golden_profiles() {
    for golden in &GOLDENS {
        let (bytes, profile) = load_fixture(golden);
        assert!(is_gzip(&bytes), "{}: fixture is gzip'd", golden.file);
        // The inflate and wire-decode stages are separable: inflating
        // first and decoding the raw body yields the same profile.
        let raw = gzip_decompress(&bytes).expect("fixture inflates");
        let from_raw = ev_formats::pprof::parse(&raw).expect("raw body decodes");
        assert_eq!(
            ev_formats::easyview::write(&from_raw),
            ev_formats::easyview::write(&profile),
            "{}",
            golden.file
        );

        assert_eq!(profile.node_count(), golden.nodes, "{}", golden.file);
        let m = profile
            .metric_by_name(golden.metric)
            .unwrap_or_else(|| panic!("{}: metric {}", golden.file, golden.metric));
        assert_eq!(
            profile.total(m).to_bits(),
            golden.total_bits,
            "{}: total {} != golden",
            golden.file,
            profile.total(m)
        );
        profile.validate().unwrap();
    }
}

#[test]
fn fixtures_round_trip_through_native_format() {
    for golden in &GOLDENS {
        let (_, profile) = load_fixture(golden);
        let native = ev_formats::easyview::write(&profile);
        let back = ev_formats::easyview::parse(&native).expect("native parses");
        // Re-encoding the re-decoded profile is byte-stable.
        assert_eq!(ev_formats::easyview::write(&back), native, "{}", golden.file);
        assert_eq!(back.node_count(), profile.node_count(), "{}", golden.file);
    }
}

#[test]
fn fixtures_views_stable_across_parallel_and_cached_paths() {
    for golden in &GOLDENS {
        let (bytes, profile) = load_fixture(golden);
        let m = profile.metric_by_name(golden.metric).unwrap();
        let seq = MetricView::compute_with(&profile, m, ExecPolicy::SEQUENTIAL);
        for threads in [2, 4, 8] {
            let par = MetricView::compute_with(&profile, m, ExecPolicy::with_threads(threads));
            for id in profile.node_ids() {
                assert_eq!(
                    par.inclusive(id).to_bits(),
                    seq.inclusive(id).to_bits(),
                    "{} threads={threads}",
                    golden.file
                );
            }
        }
        // Two independent parses of the same bytes fingerprint alike, so
        // a view computed for one is a cache hit for the other.
        let reparsed = ev_formats::pprof::parse(&bytes).unwrap();
        assert_eq!(profile_fingerprint(&profile), profile_fingerprint(&reparsed));
        let key = view_key(&profile, m, &["top_down"]);
        assert_eq!(key, view_key(&reparsed, m, &["top_down"]));
        let mut cache: ViewCache<u64> = ViewCache::new(4);
        cache.get_or_insert_with(key, || seq.total().to_bits());
        let hit = cache.get_or_insert_with(view_key(&reparsed, m, &["top_down"]), || {
            panic!("must be served from cache")
        });
        assert_eq!(*hit, seq.total().to_bits());
        assert_eq!(cache.stats().hits, 1);
    }
}

// ---------------------------------------------------------------------
// Malformed-wire robustness: pinned-digest negative fixtures.
//
// Each checked-in fixture is either deliberately corrupt (truncated or
// overlong varints, length claims past the input, invalid UTF-8,
// dangling location ids, forbidden field numbers and wire types) or
// structurally odd-but-legal (deep unknown nesting, out-of-range string
// indices, duplicate ids). The one-pass decoder and the two-pass
// reference must produce the *identical* outcome for every one — a
// typed error or a parse, never a panic or runaway allocation — and
// the fixture bytes themselves are pinned by crc32 so the cases can
// never silently drift.

/// What both decoders must do with a negative fixture.
enum Expect {
    /// Both return `Ok`; pinned node and metric counts.
    Parses { nodes: usize, metrics: usize },
    /// Both return the same error with this exact display.
    Fails { message: &'static str },
}

struct Negative {
    file: &'static str,
    crc32: u32,
    expect: Expect,
}

const NEGATIVES: [Negative; 9] = [
    Negative {
        file: "bad_truncated_varint.pb",
        crc32: 0x94c154d2,
        expect: Expect::Fails {
            message: "container error: unexpected end of input",
        },
    },
    Negative {
        file: "bad_overlong_varint.pb",
        crc32: 0x14274602,
        expect: Expect::Fails {
            message: "container error: varint exceeds 10 bytes",
        },
    },
    Negative {
        file: "bad_length_overrun.pb",
        crc32: 0x2ec0bf38,
        expect: Expect::Fails {
            message: "container error: length 268435455 exceeds remaining input 0",
        },
    },
    Negative {
        file: "bad_string_utf8.pb",
        crc32: 0xf8ddc56a,
        expect: Expect::Fails {
            message: "container error: string field is not valid utf-8",
        },
    },
    Negative {
        file: "bad_unknown_location.pb",
        crc32: 0x4432b760,
        expect: Expect::Fails {
            message: "schema error: sample references unknown location 99",
        },
    },
    Negative {
        file: "bad_zero_field.pb",
        crc32: 0xd202ef8d,
        expect: Expect::Fails {
            message: "container error: field number must be nonzero",
        },
    },
    Negative {
        file: "bad_group_wiretype.pb",
        crc32: 0x45d03605,
        expect: Expect::Fails {
            message: "container error: invalid wire type 3",
        },
    },
    Negative {
        file: "odd_deep_nesting.pb",
        crc32: 0x840cbeea,
        expect: Expect::Parses { nodes: 1, metrics: 0 },
    },
    Negative {
        file: "odd_degenerate_tables.pb",
        crc32: 0xac38ca6f,
        expect: Expect::Parses { nodes: 2, metrics: 1 },
    },
];

fn negative_fixture_sources() -> Vec<(&'static str, Vec<u8>)> {
    use ev_wire::Writer;
    let mut out: Vec<(&'static str, Vec<u8>)> = Vec::new();

    // Field 9 (time_nanos, varint) truncated on a continuation byte.
    out.push(("bad_truncated_varint.pb", vec![0x48, 0x80]));

    // Eleven continuation bytes: past the 10-byte u64 maximum.
    let mut overlong = vec![0x48];
    overlong.extend(std::iter::repeat_n(0x80, 11));
    out.push(("bad_overlong_varint.pb", overlong));

    // Size-cap abuse: a string-table entry claiming 256 MiB with zero
    // payload bytes behind it — must error without allocating.
    let mut huge = vec![0x32];
    ev_wire::encode_varint(0x0fff_ffff, &mut huge);
    out.push(("bad_length_overrun.pb", huge));

    // Invalid UTF-8 in the string table.
    let mut w = Writer::new();
    w.write_bytes(6, &[0xff, 0xfe, 0xfd]);
    out.push(("bad_string_utf8.pb", w.into_bytes()));

    // A sample referencing a location never defined.
    let mut w = Writer::new();
    w.write_message_with(2, |m| {
        m.write_packed_uint64(1, &[99]);
        m.write_packed_int64(2, &[1]);
    });
    w.write_string(6, "");
    out.push(("bad_unknown_location.pb", w.into_bytes()));

    // Field number zero is forbidden by protobuf.
    out.push(("bad_zero_field.pb", vec![0x00]));

    // Deprecated group wire type (3).
    out.push(("bad_group_wiretype.pb", vec![0x0b]));

    // 100-deep nested unknown LEN messages: field skipping is
    // iterative (length-based), so this parses without recursing.
    let mut nested = Vec::new();
    for _ in 0..100 {
        let mut w = Writer::new();
        w.write_bytes(8, &nested);
        nested = w.into_bytes();
    }
    out.push(("odd_deep_nesting.pb", nested));

    // Out-of-range and negative string indices, duplicate location ids
    // (last definition wins), dangling mapping references, more sample
    // values than sample types, unknown fields, and known fields on
    // the wrong wire type — all legal-but-odd, all must parse.
    let mut w = Writer::new();
    w.write_message_with(1, |m| {
        m.write_int64(1, 1 << 40); // type name far out of range -> "samples"
        m.write_int64(2, -3); // negative unit index -> clamps to ""
    });
    w.write_message_with(4, |m| {
        m.write_uint64(1, 7);
        m.write_uint64(2, 12345); // dangling mapping id
    });
    w.write_message_with(4, |m| {
        m.write_uint64(1, 7); // duplicate id: this definition wins
        m.write_uint64(3, 0xabc);
    });
    w.write_message_with(2, |m| {
        m.write_packed_uint64(1, &[7]);
        m.write_packed_int64(2, &[2, 3]); // second value has no metric
    });
    w.write_uint64(4, 9); // location on varint wire type: skipped
    w.write_fixed64(6, 0xdead); // string table on fixed64: skipped
    w.write_uint64(1 << 20, 5); // unknown high field number
    out.push(("odd_degenerate_tables.pb", w.into_bytes()));

    out
}

#[test]
fn negative_fixtures_yield_identical_typed_outcomes() {
    for negative in &NEGATIVES {
        let path = fixture_dir().join(negative.file);
        let bytes = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing fixture {} ({e}); see regenerate()", path.display())
        });
        assert_eq!(
            ev_flate::crc32(&bytes),
            negative.crc32,
            "{}: fixture bytes drifted",
            negative.file
        );
        let one = ev_formats::pprof::parse(&bytes);
        let reference = ev_formats::pprof::parse_reference(&bytes);
        assert_eq!(one, reference, "{}: decoders disagree", negative.file);
        match &negative.expect {
            Expect::Parses { nodes, metrics } => {
                let p = one.unwrap_or_else(|e| panic!("{}: {e}", negative.file));
                assert_eq!(p.node_count(), *nodes, "{}", negative.file);
                assert_eq!(p.metrics().len(), *metrics, "{}", negative.file);
                p.validate().unwrap();
            }
            Expect::Fails { message } => {
                let err = one.expect_err(negative.file);
                assert_eq!(&err.to_string(), message, "{}", negative.file);
            }
        }
    }
}

#[test]
fn every_fixture_decodes_identically_via_reference() {
    // Sweep the whole fixture directory — positive goldens, the
    // multi-member gzip file, and every negative — asserting the
    // one-pass and reference decoders agree byte for byte, at several
    // thread counts.
    let mut seen = 0;
    for entry in std::fs::read_dir(fixture_dir()).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        for threads in [1, 2, 8] {
            let policy = ExecPolicy::with_threads(threads);
            let one = ev_formats::pprof::parse_with(&bytes, policy);
            let reference = ev_formats::pprof::parse_reference_with(&bytes, policy);
            match (&one, &reference) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{} threads={threads}", path.display()),
                (a, b) => assert_eq!(a, b, "{} threads={threads}", path.display()),
            }
        }
        seen += 1;
    }
    assert!(seen >= GOLDENS.len() + NEGATIVES.len(), "fixture sweep saw {seen} files");
}

//! Golden round-trip tests over checked-in gzip'd pprof fixtures.
//!
//! Each fixture runs the full substrate stack — `ev-flate` gzip
//! inflate → `ev-wire` protobuf decode → EasyView profile — and is
//! pinned to golden numbers (node count, exact total bits), so any
//! change to the decoding pipeline that alters output is caught against
//! bytes that never change. The decoded profile must also survive a
//! native-format re-encode round trip and produce bit-identical views
//! through the parallel and cached paths.
//!
//! Regenerate the fixtures (after an intentional generator change)
//! with:
//!
//! ```text
//! cargo test -p ev-bench --test golden_pprof -- --ignored regenerate
//! ```
//!
//! and update the golden constants from the test's output.

use ev_analysis::{profile_fingerprint, view_key, ExecPolicy, MetricView, ViewCache};
use ev_core::Profile;
use ev_flate::{gzip_decompress, is_gzip};
use ev_gen::{grpc_leak, synthetic::SyntheticSpec};
use std::path::PathBuf;

struct Golden {
    file: &'static str,
    nodes: usize,
    metric: &'static str,
    /// `total(metric).to_bits()` — exact, not approximate.
    total_bits: u64,
}

const GOLDENS: [Golden; 2] = [
    Golden {
        file: "synthetic_cpu.pb.gz",
        nodes: 2202,
        metric: "cpu",
        total_bits: 0x4162_fa83_a000_0000,
    },
    Golden {
        file: "grpc_leak.pb.gz",
        nodes: 10,
        metric: "inuse_space",
        total_bits: 0x419d_9803_7800_0000,
    },
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

fn fixture_sources() -> Vec<(&'static str, Vec<u8>)> {
    let synthetic = SyntheticSpec {
        samples: 2_000,
        seed: 11,
        ..SyntheticSpec::default()
    }
    .build_pprof();
    let leak = grpc_leak::snapshots(3, 11).pop().expect("snapshots");
    let leak_gz = ev_formats::pprof::write(&leak, ev_formats::pprof::WriteOptions::default());
    vec![
        ("synthetic_cpu.pb.gz", synthetic),
        ("grpc_leak.pb.gz", leak_gz),
    ]
}

#[test]
#[ignore = "writes tests/fixtures and prints golden constants"]
fn regenerate() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for (name, bytes) in fixture_sources() {
        std::fs::write(dir.join(name), &bytes).unwrap();
        let p = ev_formats::pprof::parse(&bytes).unwrap();
        let m = ev_core::MetricId::from_index(0);
        println!(
            "{name}: nodes={} metric={:?} total_bits={:#x} ({} bytes)",
            p.node_count(),
            p.metrics()[0].name,
            p.total(m).to_bits(),
            bytes.len()
        );
    }
}

fn load_fixture(golden: &Golden) -> (Vec<u8>, Profile) {
    let path = fixture_dir().join(golden.file);
    let bytes = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); see regenerate()", path.display()));
    let profile = ev_formats::pprof::parse(&bytes).expect("fixture parses");
    (bytes, profile)
}

#[test]
fn fixtures_decode_to_golden_profiles() {
    for golden in &GOLDENS {
        let (bytes, profile) = load_fixture(golden);
        assert!(is_gzip(&bytes), "{}: fixture is gzip'd", golden.file);
        // The inflate and wire-decode stages are separable: inflating
        // first and decoding the raw body yields the same profile.
        let raw = gzip_decompress(&bytes).expect("fixture inflates");
        let from_raw = ev_formats::pprof::parse(&raw).expect("raw body decodes");
        assert_eq!(
            ev_formats::easyview::write(&from_raw),
            ev_formats::easyview::write(&profile),
            "{}",
            golden.file
        );

        assert_eq!(profile.node_count(), golden.nodes, "{}", golden.file);
        let m = profile
            .metric_by_name(golden.metric)
            .unwrap_or_else(|| panic!("{}: metric {}", golden.file, golden.metric));
        assert_eq!(
            profile.total(m).to_bits(),
            golden.total_bits,
            "{}: total {} != golden",
            golden.file,
            profile.total(m)
        );
        profile.validate().unwrap();
    }
}

#[test]
fn fixtures_round_trip_through_native_format() {
    for golden in &GOLDENS {
        let (_, profile) = load_fixture(golden);
        let native = ev_formats::easyview::write(&profile);
        let back = ev_formats::easyview::parse(&native).expect("native parses");
        // Re-encoding the re-decoded profile is byte-stable.
        assert_eq!(ev_formats::easyview::write(&back), native, "{}", golden.file);
        assert_eq!(back.node_count(), profile.node_count(), "{}", golden.file);
    }
}

#[test]
fn fixtures_views_stable_across_parallel_and_cached_paths() {
    for golden in &GOLDENS {
        let (bytes, profile) = load_fixture(golden);
        let m = profile.metric_by_name(golden.metric).unwrap();
        let seq = MetricView::compute_with(&profile, m, ExecPolicy::SEQUENTIAL);
        for threads in [2, 4, 8] {
            let par = MetricView::compute_with(&profile, m, ExecPolicy::with_threads(threads));
            for id in profile.node_ids() {
                assert_eq!(
                    par.inclusive(id).to_bits(),
                    seq.inclusive(id).to_bits(),
                    "{} threads={threads}",
                    golden.file
                );
            }
        }
        // Two independent parses of the same bytes fingerprint alike, so
        // a view computed for one is a cache hit for the other.
        let reparsed = ev_formats::pprof::parse(&bytes).unwrap();
        assert_eq!(profile_fingerprint(&profile), profile_fingerprint(&reparsed));
        let key = view_key(&profile, m, &["top_down"]);
        assert_eq!(key, view_key(&reparsed, m, &["top_down"]));
        let mut cache: ViewCache<u64> = ViewCache::new(4);
        cache.get_or_insert_with(key, || seq.total().to_bits());
        let hit = cache.get_or_insert_with(view_key(&reparsed, m, &["top_down"]), || {
            panic!("must be served from cache")
        });
        assert_eq!(*hit, seq.total().to_bits());
        assert_eq!(cache.stats().hits, 1);
    }
}

//! End-to-end integration: a profile travels the full system —
//! generator → pprof bytes → converter → analysis → views → IDE
//! protocol → customization script — with invariants checked at every
//! hop.

use ev_core::{MetricId, Profile};
use ev_flame::{render, FlameGraph, TreeTable};
use ev_ide::{EditorClient, EvpServer};
use ev_gen::synthetic::SyntheticSpec;
use ev_script::ScriptHost;

fn generated() -> (Profile, MetricId) {
    let bytes = SyntheticSpec {
        seed: 33,
        samples: 3_000,
        ..SyntheticSpec::default()
    }
    .build_pprof();
    let profile = ev_formats::pprof::parse(&bytes).expect("parse generated pprof");
    let metric = profile.metric_by_name("cpu").expect("cpu metric");
    (profile, metric)
}

#[test]
fn pprof_bytes_to_views() {
    let (profile, metric) = generated();
    profile.validate().expect("valid CCT");
    let total = profile.total(metric);
    assert!(total > 0.0);

    // All three views conserve mass and satisfy geometry invariants.
    for graph in [
        FlameGraph::top_down(&profile, metric),
        FlameGraph::bottom_up(&profile, metric),
        FlameGraph::flat(&profile, metric),
    ] {
        assert!((graph.total() - total).abs() / total < 1e-9);
        for rect in graph.rects() {
            assert!(rect.width >= 0.0 && rect.x + rect.width <= 1.0 + 1e-9);
        }
        // Renderers accept every layout.
        let svg = render::svg(&graph, &render::SvgOptions::default());
        assert!(svg.ends_with("</svg>\n"));
        assert!(!render::ansi(&graph, 100, false).is_empty());
    }
}

#[test]
fn native_format_roundtrip_of_converted_profile() {
    let (profile, _) = generated();
    let bytes = ev_core::format::to_bytes(&profile);
    let reloaded = ev_core::format::from_bytes(&bytes).expect("native roundtrip");
    assert_eq!(reloaded, profile);
}

#[test]
fn pprof_reencode_preserves_structure_and_totals() {
    let (profile, metric) = generated();
    let bytes = ev_formats::pprof::write(&profile, ev_formats::pprof::WriteOptions::default());
    let second = ev_formats::pprof::parse(&bytes).expect("reparse");
    let m2 = second.metric_by_name("cpu").expect("metric");
    assert_eq!(second.node_count(), profile.node_count());
    assert!((second.total(m2) - profile.total(metric)).abs() < 1e-6);
}

#[test]
fn ide_session_over_generated_profile() {
    let (profile, _) = generated();
    let mut client = EditorClient::connect(EvpServer::new());
    let id = client.open_profile(&profile).expect("open");
    let rects = client.flame_graph(id, "topDown", "cpu").expect("layout");
    assert!(rects.len() > 10);
    // Every mapped frame code-links successfully.
    let mapped = rects.iter().find(|r| r.mapped).expect("a mapped frame");
    client.code_link(id, mapped.node).expect("code link");
    assert!(client.editor().open_file.is_some());
    // Summary agrees with the profile.
    let summary = client.summary(id).expect("summary");
    assert_eq!(
        summary.get("nodes").and_then(ev_json::Value::as_i64),
        Some(profile.node_count() as i64)
    );
}

#[test]
fn script_derivation_feeds_views() {
    let (mut profile, _) = generated();
    ScriptHost::new(&mut profile)
        .run(r#"derive("share", fn(n) { return value(n, "cpu") / total("cpu"); });"#)
        .expect("script");
    let share = profile.metric_by_name("share").expect("derived metric");
    // The derived metric drives a tree table like any native one.
    let mut table = TreeTable::new(&profile, &[share]);
    table.expand_to_depth(2);
    assert!(table.rows().len() > 1);
}

#[test]
fn analysis_chain_prune_collapse_diff() {
    let (profile, metric) = generated();
    let pruned = ev_analysis::prune(&profile, metric, 0.001);
    pruned.validate().expect("pruned is valid");
    assert!(pruned.node_count() <= profile.node_count() + 512);
    let collapsed = ev_analysis::collapse_recursion(&pruned);
    collapsed.validate().expect("collapsed is valid");
    let m = collapsed.metric_by_name("cpu").expect("metric survives");
    assert!((collapsed.total(m) - profile.total(metric)).abs() / profile.total(metric) < 1e-9);
    // Diffing the pipeline output against the original tags nothing as
    // changed in the shared prefix beyond what pruning folded.
    let d = ev_analysis::diff(&profile, &pruned, "cpu", 1e-9).expect("diff");
    assert!(d.profile.node_count() >= pruned.node_count());
}

//! Golden tests for RFC 1952 multi-member gzip ingest.
//!
//! `tests/fixtures/multi_member.pb.gz` is the grpc_leak pprof body
//! split into three gzip members — the middle one carrying FNAME, the
//! last FEXTRA — concatenated back to back, which is exactly what Go's
//! pprof writer or a `cat a.gz b.gz c.gz` pipeline produces. The
//! member-streaming decoder must reassemble it byte-identically to the
//! single-member fixture at any thread count.
//!
//! Regenerate (after an intentional generator change) with:
//!
//! ```text
//! cargo test -p ev-bench --test multi_member_gzip -- --ignored regenerate
//! ```

use ev_flate::{crc32, deflate_compress, gzip_decompress, gzip_decompress_with, CompressionLevel,
               ExecPolicy};
use std::path::PathBuf;

const FIXTURE: &str = "multi_member.pb.gz";
const SOURCE_FIXTURE: &str = "grpc_leak.pb.gz";
/// Pinned CRC32 of the reassembled pprof body — identical to the
/// single-member source fixture's pinned digest by construction.
const PINNED_DIGEST: u32 = 0x4889_efab;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

/// Builds one gzip member with explicit header flags and field bytes.
fn member(data: &[u8], flags: u8, fields: &[u8]) -> Vec<u8> {
    let mut gz = vec![0x1f, 0x8b, 8, flags, 0, 0, 0, 0, 0, 255];
    gz.extend_from_slice(fields);
    gz.extend_from_slice(&deflate_compress(data, CompressionLevel::High));
    gz.extend_from_slice(&crc32(data).to_le_bytes());
    gz.extend_from_slice(&(data.len() as u32).to_le_bytes());
    gz
}

fn build_fixture() -> (Vec<u8>, Vec<u8>) {
    let single = std::fs::read(fixture_dir().join(SOURCE_FIXTURE)).expect("source fixture");
    let raw = gzip_decompress(&single).expect("source decompresses");
    let (a, b) = (raw.len() / 3, 2 * raw.len() / 3);
    let mut multi = member(&raw[..a], 0, &[]);
    multi.extend_from_slice(&member(&raw[a..b], 1 << 3 /* FNAME */, b"part2.pb\0"));
    let mut extra = Vec::new();
    extra.extend_from_slice(&6u16.to_le_bytes()); // XLEN
    extra.extend_from_slice(b"EV\x02\x00ok"); // subfield id + len + data
    multi.extend_from_slice(&member(&raw[b..], 1 << 2 /* FEXTRA */, &extra));
    (multi, raw)
}

#[test]
#[ignore = "writes tests/fixtures/multi_member.pb.gz"]
fn regenerate() {
    let (multi, raw) = build_fixture();
    std::fs::write(fixture_dir().join(FIXTURE), &multi).unwrap();
    println!(
        "{FIXTURE}: {} bytes, 3 members, body digest {:#010x}",
        multi.len(),
        crc32(&raw)
    );
}

#[test]
fn fixture_matches_generator() {
    let (expected, _) = build_fixture();
    let on_disk = std::fs::read(fixture_dir().join(FIXTURE)).expect("fixture checked in");
    assert_eq!(on_disk, expected, "fixture drifted; regenerate deliberately");
}

#[test]
fn decompresses_to_pinned_digest_at_every_thread_count() {
    let multi = std::fs::read(fixture_dir().join(FIXTURE)).expect("fixture");
    let seq = gzip_decompress(&multi).expect("multi-member decompresses");
    assert_eq!(crc32(&seq), PINNED_DIGEST, "reassembled body digest drifted");
    for threads in [1, 2, 8] {
        let par = gzip_decompress_with(&multi, ExecPolicy::with_threads(threads)).unwrap();
        assert_eq!(par, seq, "threads {threads}");
    }
}

#[test]
fn converts_identically_to_the_single_member_source() {
    let multi = std::fs::read(fixture_dir().join(FIXTURE)).expect("fixture");
    let single = std::fs::read(fixture_dir().join(SOURCE_FIXTURE)).expect("source");
    // Same decompressed body ⇒ the converted profiles are identical.
    let from_single = ev_formats::pprof::parse(&single).unwrap();
    for threads in [1, 2, 8] {
        let from_multi =
            ev_formats::pprof::parse_with(&multi, ExecPolicy::with_threads(threads)).unwrap();
        assert_eq!(from_multi, from_single, "threads {threads}");
        assert_eq!(
            ev_formats::easyview::write(&from_multi),
            ev_formats::easyview::write(&from_single),
            "threads {threads}"
        );
    }
}

#[test]
fn negatives_truncation_and_garbage() {
    let multi = std::fs::read(fixture_dir().join(FIXTURE)).expect("fixture");
    // Truncating inside the second or third member must error, never
    // return a partial first-member result.
    let (_, raw) = build_fixture();
    let first_len = member(&raw[..raw.len() / 3], 0, &[]).len();
    for cut in [first_len + 5, multi.len() - 1] {
        assert!(gzip_decompress(&multi[..cut]).is_err(), "cut at {cut}");
    }
    // Trailing garbage after the final member is a loud error.
    let mut padded = multi.clone();
    padded.extend_from_slice(b"\0\0\0\0junk");
    assert!(matches!(
        gzip_decompress(&padded),
        Err(ev_flate::FlateError::TrailingGarbage { .. })
    ));
}

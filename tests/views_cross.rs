//! Cross-crate view integration: the case-study workloads drive the
//! advanced views (aggregate, differential, correlated) and the
//! user-facing claims hold on the output.

use ev_analysis::{aggregate, classify_timeline, diff, DiffTag, MetricView, TimelinePattern};
use ev_core::{LinkKind, Profile};
use ev_flame::{CorrelatedView, DiffFlameGraph, FlameGraph, Histogram, TreeTable};
use ev_gen::{grpc_leak, lulesh, spark};

#[test]
fn aggregate_histograms_detect_exactly_the_leaking_sites() {
    let snapshots = grpc_leak::snapshots(50, 99);
    let refs: Vec<&Profile> = snapshots.iter().collect();
    let agg = aggregate(&refs, "inuse_space").expect("aggregate");
    agg.profile.validate().expect("valid");

    let mut leaks = Vec::new();
    for node in agg.profile.node_ids() {
        if !agg.profile.node(node).children().is_empty() {
            continue;
        }
        if classify_timeline(agg.series(node)) == TimelinePattern::PotentialLeak {
            leaks.push(agg.profile.resolve_frame(node).name);
        }
    }
    leaks.sort();
    assert_eq!(
        leaks,
        ["bufio.NewReaderSize", "transport.newBufWriter"],
        "exactly the paper's two leak sites"
    );

    // Histograms over the leak series are visibly non-decreasing.
    let leak_node = agg
        .profile
        .node_ids()
        .find(|&id| agg.profile.resolve_frame(id).name == "transport.newBufWriter")
        .expect("leak node");
    let hist = Histogram::new(agg.series(leak_node));
    let normalized = hist.normalized();
    assert!(normalized.last().copied().unwrap_or(0.0) > 0.9);
}

#[test]
fn lulesh_bottom_up_finds_brk_and_correlated_view_walks_links() {
    let cpu = lulesh::cpu_profile(3);
    let metric = cpu.metric_by_name("CPUTIME (sec)").expect("metric");

    // Fig. 6: brk tops the bottom-up view but is scattered top-down.
    let bottom_up = FlameGraph::bottom_up(&cpu, metric);
    let top_leaf = bottom_up
        .rects()
        .iter()
        .filter(|r| r.depth == 1)
        .max_by(|a, b| a.width.total_cmp(&b.width))
        .expect("leaves");
    assert_eq!(top_leaf.label, "brk");
    let top_down = FlameGraph::top_down(&cpu, metric);
    let brk_rects = top_down
        .rects()
        .iter()
        .filter(|r| r.label == "brk")
        .count();
    assert!(brk_rects >= 2, "brk is split across call paths top-down");

    // Fig. 7: alloc → use → reuse navigation.
    let reuse = lulesh::reuse_profile(3);
    let view = CorrelatedView::new(&reuse.profile, LinkKind::UseReuse, reuse.bytes);
    let allocations = view.endpoints(0, &[]);
    assert_eq!(allocations.len(), 8);
    for &alloc in &allocations {
        let uses = view.endpoints(1, &[alloc]);
        assert_eq!(uses.len(), 1);
        let reuses = view.endpoints(2, &[alloc, uses[0]]);
        assert_eq!(reuses.len(), 1);
        // The reuse pane shows the hourglass kernel in its path.
        let pane = view.pane(2, &[alloc, uses[0]]);
        assert!(pane
            .rects()
            .iter()
            .any(|r| r.label == "CalcHourglassForceForElems"));
    }
}

#[test]
fn spark_differential_matches_fig3_reading() {
    let rdd = spark::rdd_profile();
    let sql = spark::sql_profile();
    let dfg = DiffFlameGraph::new(&rdd, &sql, spark::metric_name()).expect("diff");
    let labels: Vec<&str> = dfg
        .graph()
        .rects()
        .iter()
        .map(|r| r.label.as_str())
        .collect();
    assert!(labels
        .iter()
        .any(|l| l.starts_with("[D]") && l.contains("Shuffle")));
    assert!(labels
        .iter()
        .any(|l| l.starts_with("[A]") && l.contains("sql")));
    // Tag counts: something added, something deleted, spine unchanged.
    let counts = dfg.diff().tag_counts();
    assert!(counts[0].1 > 0 && counts[1].1 > 0 && counts[4].1 > 0);
    // Quantified: total delta is negative (P2 is faster).
    assert!(dfg.diff().profile.total(dfg.diff().delta) < 0.0);
}

#[test]
fn diff_of_workload_against_itself_is_silent() {
    let p = spark::rdd_profile();
    let d = diff(&p, &p, spark::metric_name(), 0.0).expect("diff");
    for (_, entry) in d.entries() {
        assert_eq!(entry.tag, DiffTag::Unchanged);
    }
}

#[test]
fn tree_table_and_flame_graph_agree_on_inclusive_values() {
    let cpu = lulesh::cpu_profile(5);
    let metric = cpu.metric_by_name("CPUTIME (sec)").expect("metric");
    let graph = FlameGraph::top_down(&cpu, metric);
    let mut table = TreeTable::new(&cpu, &[metric]);
    table.expand_to_depth(64);
    let view = MetricView::compute(&cpu, metric);
    for row in table.rows() {
        assert!((row.values[0].0 - view.inclusive(row.node)).abs() < 1e-9);
        if let Some(rect) = graph.rects().iter().find(|r| r.node == row.node) {
            assert!((rect.value - row.values[0].0).abs() < 1e-9);
        }
    }
}

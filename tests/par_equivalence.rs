//! Sequential-vs-parallel equivalence: every parallel analysis path
//! must produce output **bit-identical** to `threads = 1` (the
//! determinism contract of `ev-par`). Random profiles are run at 1, 2,
//! 4, and 8 threads and compared through the serialized EasyView native
//! format, so any divergence — values, tree shape, string-table order,
//! node numbering — fails the test.

use ev_analysis::{aggregate_with, diff_with, ExecPolicy, MetricView};
use ev_core::{MetricKind, Profile};
use ev_flame::FlameGraph;
use ev_gen::synthetic::SyntheticSpec;
use ev_test::prelude::*;
use ev_test::profiles::{
    arb_profile_batch, arb_profile_pair, profile_from_samples_kind, SampleSpec,
};
use ev_test::Rng;

const THREADS: [usize; 3] = [2, 4, 8];

fn easyview_bytes(p: &Profile) -> Vec<u8> {
    ev_formats::easyview::write(p)
}

property! {
    #![cases(16)]

    fn aggregate_matches_sequential(batch in arb_profile_batch(2..9, 30, 6)) {
        let refs: Vec<&Profile> = batch.iter().collect();
        let seq = aggregate_with(&refs, "cpu", ExecPolicy::SEQUENTIAL).unwrap();
        let seq_bytes = easyview_bytes(&seq.profile);
        let nodes: Vec<_> = seq.profile.node_ids().collect();
        for &t in &THREADS {
            let par = aggregate_with(&refs, "cpu", ExecPolicy::with_threads(t)).unwrap();
            prop_assert_eq!(&easyview_bytes(&par.profile), &seq_bytes, "threads={}", t);
            for &node in &nodes {
                let (s, p) = (seq.series(node), par.series(node));
                prop_assert_eq!(s.len(), p.len());
                for (a, b) in s.iter().zip(p) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "threads={}", t);
                }
            }
        }
    }

    // Multi-member gzip ingest: a pprof body split into N gzip members
    // must convert bit-identically whether the members are inflated
    // sequentially or fanned out onto the pool.
    fn multi_member_ingest_matches_sequential(
        batch in arb_profile_batch(2..6, 30, 6),
        splits in 2usize..5,
    ) {
        use ev_flate::{crc32, deflate_compress, CompressionLevel};
        let refs: Vec<&Profile> = batch.iter().collect();
        let agg = aggregate_with(&refs, "cpu", ExecPolicy::SEQUENTIAL).unwrap();
        let single = ev_formats::pprof::write(&agg.profile, Default::default());
        let raw = ev_flate::gzip_decompress(&single).unwrap();
        // Re-wrap the body as `splits` concatenated members.
        let mut multi = Vec::new();
        for i in 0..splits {
            let part = &raw[raw.len() * i / splits..raw.len() * (i + 1) / splits];
            multi.extend_from_slice(&[0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 255]);
            multi.extend_from_slice(&deflate_compress(part, CompressionLevel::Fast));
            multi.extend_from_slice(&crc32(part).to_le_bytes());
            multi.extend_from_slice(&(part.len() as u32).to_le_bytes());
        }
        let seq = ev_formats::pprof::parse_with(&multi, ExecPolicy::SEQUENTIAL).unwrap();
        let seq_bytes = easyview_bytes(&seq);
        for &t in &THREADS {
            let par = ev_formats::pprof::parse_with(&multi, ExecPolicy::with_threads(t)).unwrap();
            prop_assert_eq!(&easyview_bytes(&par), &seq_bytes, "threads={}", t);
        }
    }

    fn diff_matches_sequential(pair in arb_profile_pair(40, 6)) {
        let (first, second) = pair;
        let seq = diff_with(&first, &second, "cpu", 0.0, ExecPolicy::SEQUENTIAL).unwrap();
        let seq_bytes = easyview_bytes(&seq.profile);
        for &t in &THREADS {
            let par = diff_with(&first, &second, "cpu", 0.0, ExecPolicy::with_threads(t)).unwrap();
            prop_assert_eq!(&easyview_bytes(&par.profile), &seq_bytes, "threads={}", t);
            for (node, entry) in seq.entries() {
                prop_assert_eq!(par.entry(node), entry, "threads={}", t);
            }
        }
    }
}

/// A profile big enough to cross the parallel-path node threshold in
/// `MetricView` and the flame layout (small trees fall back to the
/// sequential reference, which would make the test vacuous).
fn big_profile() -> Profile {
    let p = SyntheticSpec {
        samples: 30_000,
        seed: 42,
        ..SyntheticSpec::default()
    }
    .build();
    assert!(
        p.node_count() >= 4096,
        "synthetic profile too small to exercise the parallel path: {} nodes",
        p.node_count()
    );
    p
}

/// A large profile whose metric is `Inclusive`-kind, covering the
/// exclusive-derivation and zero-fix parallel passes.
fn big_inclusive_profile() -> Profile {
    let mut rng = Rng::new(7);
    let mut samples: Vec<SampleSpec> = Vec::new();
    for _ in 0..20_000 {
        let depth = rng.gen_range(1..=12usize);
        let path: Vec<String> = (0..depth)
            .map(|_| format!("fn{}", rng.gen_range(0..50u32)))
            .collect();
        samples.push((path, rng.gen_range(0.0..100.0)));
    }
    let p = profile_from_samples_kind("inclusive-big", &samples, MetricKind::Inclusive);
    assert!(p.node_count() >= 4096, "{} nodes", p.node_count());
    p
}

fn assert_views_identical(p: &Profile, metric_name: &str) {
    let m = p.metric_by_name(metric_name).unwrap();
    let seq = MetricView::compute_with(p, m, ExecPolicy::SEQUENTIAL);
    for &t in &THREADS {
        let par = MetricView::compute_with(p, m, ExecPolicy::with_threads(t));
        for id in p.node_ids() {
            assert_eq!(
                par.inclusive(id).to_bits(),
                seq.inclusive(id).to_bits(),
                "inclusive({id:?}) threads={t}"
            );
            assert_eq!(
                par.exclusive(id).to_bits(),
                seq.exclusive(id).to_bits(),
                "exclusive({id:?}) threads={t}"
            );
        }
    }
}

#[test]
fn metric_view_parallel_path_matches_exclusive_kind() {
    assert_views_identical(&big_profile(), "cpu");
}

#[test]
fn metric_view_parallel_path_matches_inclusive_kind() {
    assert_views_identical(&big_inclusive_profile(), "cpu");
}

#[test]
fn flame_layouts_parallel_path_matches() {
    let p = big_profile();
    let m = p.metric_by_name("cpu").unwrap();
    type LayoutFn = fn(&Profile, ev_core::MetricId, ExecPolicy) -> FlameGraph;
    let layouts: [(&str, LayoutFn); 3] = [
        ("top_down", FlameGraph::top_down_with),
        ("bottom_up", FlameGraph::bottom_up_with),
        ("flat", FlameGraph::flat_with),
    ];
    for (name, layout) in layouts {
        let seq = layout(&p, m, ExecPolicy::SEQUENTIAL);
        for &t in &THREADS {
            let par = layout(&p, m, ExecPolicy::with_threads(t));
            assert_eq!(par.rects(), seq.rects(), "{name} rects threads={t}");
            assert_eq!(par.elided(), seq.elided(), "{name} elided threads={t}");
            assert_eq!(par.max_depth(), seq.max_depth(), "{name} depth threads={t}");
            assert_eq!(
                par.total().to_bits(),
                seq.total().to_bits(),
                "{name} total threads={t}"
            );
        }
    }
}

#[test]
fn aggregate_large_structure_sharing_batch_matches() {
    // Eight structure-sharing snapshots (same spec, different seeds
    // share the synthetic call-tree skeleton) — the workload shape the
    // paper's aggregation view targets.
    let snapshots: Vec<Profile> = (0..8)
        .map(|k| {
            SyntheticSpec {
                samples: 5_000,
                seed: 100 + k,
                ..SyntheticSpec::default()
            }
            .build()
        })
        .collect();
    let refs: Vec<&Profile> = snapshots.iter().collect();
    let seq = aggregate_with(&refs, "cpu", ExecPolicy::SEQUENTIAL).unwrap();
    let seq_bytes = easyview_bytes(&seq.profile);
    for &t in &THREADS {
        let par = aggregate_with(&refs, "cpu", ExecPolicy::with_threads(t)).unwrap();
        assert_eq!(easyview_bytes(&par.profile), seq_bytes, "threads={t}");
    }
}

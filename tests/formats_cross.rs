//! Cross-format integration: the same logical workload expressed in
//! different profiler formats converges to consistent profiles through
//! the binding layer (paper §IV-B's interoperability claim).

use ev_formats::{detect, parse_auto, Format};

/// One workload: main → {compute(70), io(30)} in four formats.
struct Fixture {
    format: Format,
    bytes: Vec<u8>,
    metric: &'static str,
    /// Scale of the metric relative to "1 unit" (formats use different
    /// units).
    scale: f64,
}

fn fixtures() -> Vec<Fixture> {
    let collapsed = "main;compute 70\nmain;io 30\n".as_bytes().to_vec();

    let chrome = r#"{"traceEvents": [
        {"ph": "X", "name": "main", "ts": 0, "dur": 100, "pid": 1, "tid": 1},
        {"ph": "X", "name": "compute", "ts": 0, "dur": 70, "pid": 1, "tid": 1},
        {"ph": "X", "name": "io", "ts": 70, "dur": 30, "pid": 1, "tid": 1}
    ]}"#
    .as_bytes()
    .to_vec();

    let speedscope = r#"{
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": [{"name": "main"}, {"name": "compute"}, {"name": "io"}]},
        "profiles": [{
            "type": "sampled", "name": "t0",
            "samples": [[0, 1], [0, 2]],
            "weights": [70, 30]
        }]
    }"#
    .as_bytes()
    .to_vec();

    // pprof built through our writer.
    let pprof = {
        use ev_core::{Frame, MetricDescriptor, MetricKind, MetricUnit, Profile};
        let mut p = Profile::new("fixture");
        let m = p.add_metric(MetricDescriptor::new(
            "samples",
            MetricUnit::Count,
            MetricKind::Exclusive,
        ));
        p.add_sample(
            &[Frame::function("main"), Frame::function("compute")],
            &[(m, 70.0)],
        );
        p.add_sample(&[Frame::function("main"), Frame::function("io")], &[(m, 30.0)]);
        ev_formats::pprof::write(&p, ev_formats::pprof::WriteOptions::default())
    };

    vec![
        Fixture {
            format: Format::Collapsed,
            bytes: collapsed,
            metric: "samples",
            scale: 1.0,
        },
        Fixture {
            format: Format::ChromeTrace,
            bytes: chrome,
            metric: "wall",
            scale: 1000.0, // µs → ns
        },
        Fixture {
            format: Format::Speedscope,
            bytes: speedscope,
            metric: "weight",
            scale: 1.0,
        },
        Fixture {
            format: Format::Pprof,
            bytes: pprof,
            metric: "samples",
            scale: 1.0,
        },
    ]
}

#[test]
fn detection_is_unambiguous() {
    for fixture in fixtures() {
        assert_eq!(
            detect(&fixture.bytes),
            fixture.format,
            "misdetected {:?}",
            fixture.format
        );
    }
}

#[test]
fn all_formats_agree_on_the_workload() {
    for fixture in fixtures() {
        let profile = parse_auto(&fixture.bytes)
            .unwrap_or_else(|e| panic!("{:?}: {e}", fixture.format));
        profile.validate().expect("valid");
        let metric = profile
            .metric_by_name(fixture.metric)
            .unwrap_or_else(|| panic!("{:?}: metric missing", fixture.format));
        // Total is 100 units (scaled).
        let total = profile.total(metric);
        assert!(
            (total - 100.0 * fixture.scale).abs() < 1e-6,
            "{:?}: total {total}",
            fixture.format
        );
        // compute carries 70% of the exclusive mass.
        let compute = profile
            .node_ids()
            .find(|&id| profile.resolve_frame(id).name == "compute")
            .unwrap_or_else(|| panic!("{:?}: compute missing", fixture.format));
        assert!(
            (profile.value(compute, metric) - 70.0 * fixture.scale).abs() < 1e-6,
            "{:?}",
            fixture.format
        );
        // compute's caller chain reaches main.
        let parent_names: Vec<String> = profile
            .path(compute)
            .iter()
            .map(|&id| profile.resolve_frame(id).name)
            .collect();
        assert!(
            parent_names.contains(&"main".to_owned()),
            "{:?}: {parent_names:?}",
            fixture.format
        );
    }
}

#[test]
fn hpctoolkit_and_perf_also_bind() {
    // These two formats express structure differently enough that a
    // shared fixture is awkward; bind them on their own inputs.
    let perf = "\
prog 1 1.0: 70 cpu-clock:
\taaaa compute+0x1 (prog)
\tbbbb main+0x2 (prog)

prog 1 1.1: 30 cpu-clock:
\tcccc io+0x3 (prog)
\tbbbb main+0x2 (prog)

";
    let p = ev_formats::perf_script::parse(perf).expect("perf");
    let m = p.metric_by_name("cpu-clock").expect("metric");
    assert_eq!(p.total(m), 100.0);

    let xml = r#"<HPCToolkitExperiment>
      <MetricTable><Metric i="0" n="samples" t="exclusive"/></MetricTable>
      <ProcedureTable>
        <Procedure i="1" n="main"/><Procedure i="2" n="compute"/><Procedure i="3" n="io"/>
      </ProcedureTable>
      <SecCallPathProfileData>
        <PF i="10" n="1">
          <PF i="11" n="2"><M n="0" v="70"/></PF>
          <PF i="12" n="3"><M n="0" v="30"/></PF>
        </PF>
      </SecCallPathProfileData>
    </HPCToolkitExperiment>"#;
    let p = ev_formats::hpctoolkit::parse(xml).expect("hpctoolkit");
    let m = p.metric_by_name("samples").expect("metric");
    assert_eq!(p.total(m), 100.0);
    let compute = p
        .node_ids()
        .find(|&id| p.resolve_frame(id).name == "compute")
        .expect("compute");
    assert_eq!(
        p.resolve_frame(p.node(compute).parent().unwrap()).name,
        "main"
    );
}

#[test]
fn gzip_wrapped_inputs_auto_decompress() {
    // pprof fixtures above are already gzip'd; also check a corrupted
    // member surfaces a container error, not a panic.
    let fixture = fixtures().pop().expect("pprof fixture");
    let mut corrupted = fixture.bytes.clone();
    let n = corrupted.len();
    corrupted[n / 2] ^= 0x55;
    assert!(parse_auto(&corrupted).is_err());
}
